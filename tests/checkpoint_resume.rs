//! Recovery contract of the crawl checkpoint subsystem: a study killed
//! after *any* checkpoint round and resumed from disk must be
//! bit-identical to one that never stopped — same record JSONL, same
//! scan outcomes, same health logs, same export JSON, same
//! deterministic counters (minus the `crawl.resume.*` bookkeeping that
//! deliberately records the recovery itself).
//!
//! The kill is `Study::run_to_checkpoint`, a deterministic stand-in for
//! `kill -9` between two checkpoint writes: the crawl abandons the
//! process after N rounds with only the on-disk checkpoint surviving.

use std::collections::BTreeMap;
use std::path::PathBuf;

use malware_slums::export;
use malware_slums::study::{Study, StudyConfig};
use slum_crawler::CrawlFaultProfile;

const SEED: u64 = 2016;
const CHECKPOINT_EVERY: u64 = 16;

fn config_with(workers: usize, profile: CrawlFaultProfile) -> StudyConfig {
    StudyConfig::builder()
        .seed(SEED)
        .crawl_scale(0.0003)
        .domain_scale(0.03)
        .scan_workers(workers)
        .crawl_fault_profile(profile)
        .checkpoint_every(CHECKPOINT_EVERY)
        .build()
        .expect("valid config")
}

/// Deterministic counters/gauges minus the worker-count echoes and the
/// `crawl.resume.*` / `ckpt.*` recovery bookkeeping — the intended
/// differences between a straight and a resumed run (the checkpoint
/// subsystem deliberately records its own activity).
fn comparable_metrics(study: &Study) -> BTreeMap<String, i128> {
    let mut m = study.metrics().deterministic_counters();
    m.remove("gauge:config.scan_workers");
    m.remove("gauge:scan.workers");
    m.retain(|k, _| !k.starts_with("crawl.resume.") && !k.starts_with("ckpt."));
    m
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "slum-resume-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Counts the checkpoint rounds a full run of `config` writes. The
/// store prunes old generations, so the count comes from the newest
/// checkpoint's header (its round number), not the surviving files.
fn rounds_for(config: &StudyConfig, tag: &str) -> u64 {
    let dir = scratch_dir(tag);
    Study::run_checkpointed(config, &dir).expect("checkpointed run");
    let store = malware_slums::CheckpointStore::open(&dir).expect("store");
    let (header, _) = store.load_latest().expect("latest checkpoint");
    std::fs::remove_dir_all(&dir).ok();
    assert!(header.round > 1, "scale must produce multiple checkpoint rounds");
    header.round
}

fn assert_resume_matches(straight: &Study, config: &StudyConfig, kill_after: u64, tag: &str) {
    let dir = scratch_dir(&format!("{tag}-k{kill_after}"));
    let killed = Study::run_to_checkpoint(config, &dir, kill_after)
        .expect("killed run does checkpoint I/O");
    assert!(killed.is_none(), "{tag}: kill at round {kill_after} must abandon the run");
    let resumed = Study::resume_from(config, &dir).expect("resume");
    std::fs::remove_dir_all(&dir).ok();

    assert_eq!(
        resumed.store.to_jsonl(),
        straight.store.to_jsonl(),
        "{tag}: corpus diverged after kill at round {kill_after}"
    );
    assert_eq!(resumed.outcomes, straight.outcomes, "{tag}: outcomes diverged");
    assert_eq!(resumed.health, straight.health, "{tag}: health logs diverged");
    assert_eq!(
        export::to_json(&resumed).expect("export"),
        export::to_json(straight).expect("export"),
        "{tag}: export JSON diverged"
    );
    assert_eq!(
        comparable_metrics(&resumed),
        comparable_metrics(straight),
        "{tag}: counters diverged"
    );
    // The resume itself is visible — and only there.
    let m = resumed.metrics();
    assert_eq!(m.counter("crawl.resume.segments_restored"), kill_after);
    assert!(m.counter("crawl.resume.records_restored") > 0);
    assert_eq!(straight.metrics().counter("crawl.resume.segments_restored"), 0);
}

#[test]
fn kill_at_every_round_resumes_bit_identical_fault_free() {
    let config = config_with(1, CrawlFaultProfile::none());
    let straight = Study::run(&config);
    let rounds = rounds_for(&config, "none-w1");
    for kill_after in 1..rounds {
        assert_resume_matches(&straight, &config, kill_after, "none-w1");
    }
}

#[test]
fn kill_at_every_round_resumes_bit_identical_under_faults() {
    // The adversarial combination: active fault windows (retries,
    // session drops, a possible shutdown) AND parallel scan workers.
    let config = config_with(4, CrawlFaultProfile::default_profile());
    let straight = Study::run(&config);
    let rounds = rounds_for(&config, "default-w4");
    for kill_after in 1..rounds {
        assert_resume_matches(&straight, &config, kill_after, "default-w4");
    }
}

#[test]
fn mid_crawl_kill_resumes_bit_identical_across_remaining_grid() {
    // The other two cells of the {none, default} x {1, 4} acceptance
    // grid, killed at a single mid-crawl round each.
    for (workers, profile, tag) in [
        (4usize, CrawlFaultProfile::none(), "none-w4"),
        (1usize, CrawlFaultProfile::default_profile(), "default-w1"),
    ] {
        let config = config_with(workers, profile);
        let straight = Study::run(&config);
        let rounds = rounds_for(&config, tag);
        assert_resume_matches(&straight, &config, rounds / 2, tag);
    }
}

#[test]
fn kill_past_the_last_round_just_completes() {
    // Asking to kill after more rounds than the crawl needs is not an
    // error: the run finishes first and returns the completed study.
    let config = config_with(1, CrawlFaultProfile::none());
    let dir = scratch_dir("overrun");
    let study = Study::run_to_checkpoint(&config, &dir, u64::MAX)
        .expect("checkpoint I/O")
        .expect("run completes before the kill fires");
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(study.store.to_jsonl(), Study::run(&config).store.to_jsonl());
}

#[test]
fn resume_rejects_a_mismatched_config() {
    // A checkpoint written under one seed must refuse to resume a study
    // configured with another — silent cross-seed resumption would
    // corrupt the corpus undetectably.
    let config = config_with(1, CrawlFaultProfile::none());
    let dir = scratch_dir("mismatch");
    let killed = Study::run_to_checkpoint(&config, &dir, 1).expect("killed run");
    assert!(killed.is_none());
    let other = StudyConfig::builder()
        .seed(SEED + 1)
        .crawl_scale(0.0003)
        .domain_scale(0.03)
        .scan_workers(1)
        .checkpoint_every(CHECKPOINT_EVERY)
        .build()
        .expect("valid config");
    let err = match Study::resume_from(&other, &dir) {
        Ok(_) => panic!("seed mismatch must be rejected"),
        Err(e) => e,
    };
    std::fs::remove_dir_all(&dir).ok();
    assert!(
        matches!(err, malware_slums::CheckpointError::ConfigMismatch { ref field, .. } if *field == "seed"),
        "unexpected error: {err}"
    );
}
