//! Observability determinism: the `MetricsSnapshot` counters and gauges
//! must be bit-identical for a fixed seed no matter how many scan
//! workers run, and the JSON form must round-trip losslessly (the
//! contract `repro --metrics` relies on).

use std::collections::BTreeMap;

use malware_slums::study::{Study, StudyConfig};
use slum_obs::MetricsSnapshot;

fn snapshot_for(workers: usize) -> MetricsSnapshot {
    let config = StudyConfig::builder()
        .seed(9001)
        .crawl_scale(0.0003)
        .domain_scale(0.03)
        .scan_workers(workers)
        .build()
        .expect("valid config");
    Study::run(&config).metrics()
}

#[test]
fn counters_identical_serial_vs_parallel() {
    let serial = snapshot_for(1).deterministic_counters();
    for workers in [2usize, 4] {
        let parallel = snapshot_for(workers).deterministic_counters();
        // The worker-count gauge is the one value that legitimately
        // differs between runs; everything else must match exactly.
        let strip = |mut m: BTreeMap<String, i128>| {
            m.remove("gauge:config.scan_workers");
            m.remove("gauge:scan.workers");
            m
        };
        assert_eq!(
            strip(serial.clone()),
            strip(parallel),
            "metrics diverged at {workers} workers"
        );
    }
}

#[test]
fn key_counters_are_nonzero_and_cross_consistent() {
    let m = snapshot_for(2);

    let pages = m.counter("crawl.pages");
    let regular = m.counter("filter.regular_out");
    assert!(pages > 0);
    assert!(regular > 0);
    assert_eq!(
        m.counter("filter.records_in"),
        m.counter("filter.self_referrals")
            + m.counter("filter.popular_referrals")
            + regular
    );
    assert_eq!(m.counter("filter.records_in"), pages);

    // One scan (and one URL-feature lookup) per regular record.
    assert_eq!(m.counter("scan.scans"), regular);
    assert_eq!(m.counter("scan.cache.url_features.lookups"), regular);
    for group in ["url_features", "content_features", "host_domains", "domain_blacklisted"] {
        let lookups = m.counter(&format!("scan.cache.{group}.lookups"));
        let entries = m.counter(&format!("scan.cache.{group}.entries"));
        let hits = m.counter(&format!("scan.cache.{group}.hits"));
        assert!(lookups > 0, "{group} never consulted");
        assert!(hits > 0, "{group} cache never hit — repeated URLs must hit");
        assert_eq!(lookups, entries + hits, "{group} stats must partition lookups");
    }

    // Verdicts partition the scans; the corpus always has both kinds of
    // labels at this scale.
    assert_eq!(
        m.counter("scan.verdict.malicious") + m.counter("scan.verdict.benign"),
        m.counter("scan.scans")
    );
    assert!(m.counter("scan.verdict.malicious") > 0);
    assert!(m.counter("scan.labels.vt.total") > 0);
    assert!(m.counters_with_prefix("scan.labels.vt.engine.").next().is_some());
    assert_eq!(m.counters_with_prefix("crawl.steps.").count(), 9);

    // Config echoes land as gauges.
    assert_eq!(m.gauge("config.seed"), 9001);
    assert_eq!(m.gauge("config.scan_workers"), 2);
}

#[test]
fn metrics_snapshot_round_trips_through_json() {
    let snapshot = snapshot_for(2);
    let json = snapshot.to_json();
    let parsed = MetricsSnapshot::from_json(&json).expect("valid metrics JSON");
    assert_eq!(parsed, snapshot);

    // The same document must also parse as plain JSON for external
    // tooling (this is what the ci.sh smoke test consumes).
    let value: serde_json::Value = serde_json::from_str(&json).expect("parses as JSON");
    assert!(value["counters"]["scan.scans"].as_u64().unwrap() > 0);
    assert!(value["spans"].as_array().is_some());
}
