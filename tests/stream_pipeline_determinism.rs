//! Streaming-pipeline determinism: the overlapped crawl→scan pipeline
//! must be bit-identical to the phase-barrier path — same export JSON,
//! same deterministic counters — for every scan worker count and chunk
//! size, with and without fault profiles. Also pins the small-corpus
//! serial fallback (8 requested workers must resolve to the serial
//! plan below the threshold) and the always-present-but-zero
//! `scan.pipeline.*` convention on the barrier path.

use std::collections::BTreeMap;

use malware_slums::study::{Study, StudyConfig, StudyConfigBuilder};
use slum_crawler::CrawlFaultProfile;
use slum_detect::fault::FaultProfile;

const SEED: u64 = 4242;
const SCALE: f64 = 0.0003;

fn base_builder() -> StudyConfigBuilder {
    StudyConfig::builder().seed(SEED).crawl_scale(SCALE).domain_scale(0.03)
}

/// Export JSON plus deterministic counters, with the keys that
/// legitimately vary between pipeline modes stripped: worker-count
/// echoes, chunk-size echoes, and the `scan.pipeline.*` bookkeeping
/// that *describes* the mode (chunk counts differ by chunk size; the
/// overlap gauge differs by definition).
fn fingerprint(study: &Study) -> (String, BTreeMap<String, i128>) {
    let json = malware_slums::export::to_json(study).expect("export JSON");
    let mut counters = study.metrics().deterministic_counters();
    for key in [
        "gauge:config.scan_workers",
        "gauge:scan.workers",
        "gauge:config.scan_chunk",
        "gauge:config.serial_scan_threshold",
        "gauge:config.overlap",
        "gauge:scan.pipeline.overlap",
        "scan.pipeline.chunks",
        "scan.pipeline.records_streamed",
        "scan.pipeline.fault_fallback",
    ] {
        counters.remove(key);
    }
    (json, counters)
}

#[test]
fn overlapped_matches_barrier_for_every_worker_count_and_chunk_size() {
    let barrier = Study::run(&base_builder().build().expect("barrier config"));
    let baseline = fingerprint(&barrier);

    // Barrier path: pipeline counters present but zero (the PR 4/5
    // always-register convention), overlap gauge off.
    let m = barrier.metrics();
    assert_eq!(m.counter("scan.pipeline.chunks"), 0);
    assert_eq!(m.counter("scan.pipeline.records_streamed"), 0);
    assert_eq!(m.counter("scan.pipeline.fault_fallback"), 0);
    assert_eq!(m.gauge("scan.pipeline.overlap"), 0);

    for workers in [1usize, 2, 4, 8] {
        for chunk in [1usize, 64, 4096] {
            let config = base_builder()
                .scan_workers(workers)
                .scan_chunk(chunk)
                .overlap_scan(true)
                .build()
                .expect("overlap config");
            let study = Study::run(&config);
            assert_eq!(
                fingerprint(&study),
                baseline,
                "overlap diverged from barrier at {workers} workers, chunk {chunk}"
            );

            // The overlapped path really streamed: every record arrived
            // in a chunk, none fell back.
            let m = study.metrics();
            assert_eq!(m.gauge("scan.pipeline.overlap"), 1);
            assert!(m.counter("scan.pipeline.chunks") > 0);
            assert_eq!(
                m.counter("scan.pipeline.records_streamed"),
                study.store.len() as u64
            );
            assert_eq!(m.counter("scan.pipeline.fault_fallback"), 0);
        }
    }
}

#[test]
fn overlapped_matches_barrier_under_crawl_faults() {
    // Lifecycle faults (outages, bans, shutdowns) perturb the record
    // stream itself — lost slots make chunks ragged — which is exactly
    // what the (exchange, sequence) reassembly has to absorb.
    let faulted = || base_builder().crawl_fault_profile(CrawlFaultProfile::default_profile());
    let barrier = Study::run(&faulted().build().expect("barrier config"));
    let baseline = fingerprint(&barrier);

    for (workers, chunk) in [(2usize, 1usize), (8, 64), (4, 4096)] {
        let config = faulted()
            .scan_workers(workers)
            .scan_chunk(chunk)
            .overlap_scan(true)
            .build()
            .expect("overlap config");
        let study = Study::run(&config);
        assert_eq!(
            fingerprint(&study),
            baseline,
            "faulted overlap diverged at {workers} workers, chunk {chunk}"
        );
        assert_eq!(study.metrics().gauge("scan.pipeline.overlap"), 1);
    }
}

#[test]
fn overlap_request_under_scan_faults_falls_back_to_barrier() {
    // A scan-fault plan is compiled from the complete corpus, so the
    // overlapped path cannot start scanning mid-crawl; the run must
    // take the barrier path, say so in the metrics, and still produce
    // identical results.
    let faulted = || base_builder().fault_profile(FaultProfile::default_profile());
    let barrier = Study::run(&faulted().build().expect("barrier config"));
    let overlap = Study::run(
        &faulted().overlap_scan(true).scan_workers(4).build().expect("overlap config"),
    );
    assert_eq!(fingerprint(&overlap), fingerprint(&barrier));

    let m = overlap.metrics();
    assert_eq!(m.gauge("scan.pipeline.overlap"), 0, "fault plans force the barrier path");
    assert_eq!(m.counter("scan.pipeline.fault_fallback"), 1);
    assert_eq!(m.counter("scan.pipeline.chunks"), 0);
}

#[test]
fn small_corpus_resolves_to_serial_regardless_of_requested_workers() {
    // The crawl_scale 0.001-class corpora sit far below the serial
    // threshold; requesting 8 workers must not spawn 8 threads (the
    // regression where parallel scans of tiny corpora ran slower than
    // serial). `scan.workers` reports the plan actually executed.
    let config = base_builder().scan_workers(8).build().expect("config");
    let study = Study::run(&config);
    let regular = study.metrics().counter("filter.regular_out");
    assert!(
        (regular as usize) < malware_slums::scanpipe::DEFAULT_SERIAL_SCAN_THRESHOLD,
        "test corpus must sit below the serial threshold"
    );
    assert_eq!(study.metrics().gauge("scan.workers"), 1);

    // Lowering the threshold re-enables parallelism (clamped to the
    // host), without changing results.
    let parallel = Study::run(
        &base_builder()
            .scan_workers(8)
            .serial_scan_threshold(0)
            .build()
            .expect("config"),
    );
    assert!(parallel.metrics().gauge("scan.workers") >= 1);
    assert_eq!(fingerprint(&parallel), fingerprint(&study));
}

#[test]
fn builder_rejects_invalid_pipeline_combinations() {
    assert!(base_builder().scan_chunk(0).build().is_err(), "zero chunk must be rejected");
    assert!(
        base_builder().overlap_scan(true).checkpoint_every(64).build().is_err(),
        "overlap + checkpointing must be rejected"
    );
    assert!(base_builder().overlap_scan(true).scan_chunk(128).build().is_ok());
}
