//! End-to-end integration test: the full study pipeline produces every
//! artifact the paper's evaluation section reports, with internally
//! consistent numbers.

use std::sync::OnceLock;

use malware_slums::study::{Study, StudyConfig};
use malware_slums::{Category, ReferralClass};

fn study() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(|| {
        let config = StudyConfig::builder()
            .seed(2016)
            .crawl_scale(0.002)
            .domain_scale(0.05)
            .build()
            .expect("valid config");
        Study::run(&config)
    })
}

#[test]
fn table1_partitions_are_consistent() {
    let t1 = study().table1();
    assert_eq!(t1.rows.len(), 9);
    let mut total_crawled = 0;
    for row in &t1.rows {
        assert_eq!(
            row.crawled,
            row.self_referrals + row.popular_referrals + row.regular,
            "{}: crawled must partition into self + popular + regular",
            row.exchange
        );
        assert!(row.malicious <= row.regular);
        total_crawled += row.crawled;
    }
    assert_eq!(total_crawled as usize, study().store.len());
}

#[test]
fn referral_classes_cover_every_record() {
    let s = study();
    assert_eq!(s.referrals.len(), s.store.len());
    let selfs = s.referrals.iter().filter(|c| **c == ReferralClass::SelfReferral).count();
    let pops = s.referrals.iter().filter(|c| **c == ReferralClass::PopularReferral).count();
    let regs = s.referrals.iter().filter(|c| **c == ReferralClass::Regular).count();
    assert_eq!(selfs + pops + regs, s.store.len());
    assert!(selfs > 0, "self-referrals must occur");
    assert!(pops > 0, "popular referrals must occur");
    assert!(regs > selfs + pops, "regular URLs dominate");
}

#[test]
fn table2_has_rows_for_every_exchange_with_regular_urls() {
    let t2 = study().table2();
    assert_eq!(t2.len(), 9, "all nine exchanges have regular URLs at this scale");
    for row in &t2 {
        assert!(row.domains > 0);
        assert!(row.malware_domains <= row.domains);
        assert!(row.malware_fraction() <= 1.0);
    }
}

#[test]
fn table3_categories_partition_malicious_total() {
    let counts = study().table3();
    assert!(counts.total_malicious > 0);
    let sum: u64 = Category::ALL.iter().map(|c| counts.count(*c)).sum();
    assert_eq!(sum, counts.total_malicious, "every malicious URL gets exactly one category");
}

#[test]
fn table4_rows_reference_real_services() {
    let s = study();
    for row in s.table4() {
        assert!(s.web.shorteners().is_shortener_host(row.short_url.host()));
        assert!(row.long_url_hits >= row.short_hits);
        assert!(!row.top_country.is_empty());
    }
}

#[test]
fn fig2_and_fig3_are_consistent_with_table1() {
    let s = study();
    let t1 = s.table1();
    for (bar, row) in s.fig2().iter().zip(&t1.rows) {
        assert_eq!(bar.benign + bar.malicious, row.regular);
    }
    for (series, row) in s.fig3().iter().zip(&t1.rows) {
        assert_eq!(series.total_malicious(), row.malicious);
    }
}

#[test]
fn fig5_histogram_is_populated_and_bounded() {
    let hist = study().fig5();
    assert!(hist.total() > 0, "redirect-chain sites exist in every pool");
    assert!(hist.max_hops() <= 8, "browser hop cap bounds the histogram");
    // Short chains dominate Figure 5; at small scales the exact mode is
    // noisy, but some chain of ≤3 hops must appear.
    assert!(
        (1..=3).any(|h| hist.at(h) > 0),
        "short redirect chains exist: {:?}",
        hist.counts
    );
}

#[test]
fn fig4_exhibit_is_a_real_chain() {
    let exhibit = study().fig4().expect("at least one malicious redirect chain");
    assert!(exhibit.hops >= 1);
    assert!(exhibit.hosts.len() as u32 >= exhibit.hops);
}

#[test]
fn fig6_and_fig7_cover_all_malicious() {
    let s = study();
    let total_malicious: u64 = s.table1().rows.iter().map(|r| r.malicious).sum();
    assert_eq!(s.fig6().total(), total_malicious);
    assert_eq!(s.fig7().total(), total_malicious);
}

#[test]
fn case_studies_surface_expected_classes() {
    let s = study();
    assert!(!s.iframe_case_studies().is_empty(), "iframe injections present");
    assert!(!s.download_case_studies().is_empty(), "deceptive downloads present");
    // Flash is only 0.1% of malware; at small scales it may be absent —
    // only assert the extractors run without panicking.
    let _ = s.flash_case_studies();
    let _ = s.false_positive_case_studies();
}

#[test]
fn content_upload_path_exercised_by_cloaked_pages() {
    let s = study();
    let uploads = s.outcomes.iter().filter(|o| o.needed_content_upload).count();
    assert!(uploads > 0, "cloaked pages force the content-upload path");
}

#[test]
fn store_statistics_are_plausible() {
    let s = study();
    assert!(s.store.distinct_urls() > s.store.distinct_domains());
    assert!(s.store.distinct_urls() <= s.store.len());
    assert_eq!(s.store.exchanges().len(), 9);
}

#[test]
fn study_is_reproducible() {
    let config = StudyConfig::builder()
        .seed(424242)
        .crawl_scale(0.0002)
        .domain_scale(0.03)
        .build()
        .expect("valid config");
    let a = Study::run(&config);
    let b = Study::run(&config);
    assert_eq!(a.store.len(), b.store.len());
    assert_eq!(
        a.table1().overall_malicious_fraction(),
        b.table1().overall_malicious_fraction()
    );
    let urls_a: Vec<String> = a.store.records().iter().map(|r| r.url.canonical()).collect();
    let urls_b: Vec<String> = b.store.records().iter().map(|r| r.url.canonical()).collect();
    assert_eq!(urls_a, urls_b);
}
