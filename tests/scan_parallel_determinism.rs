//! Determinism contract of the parallel scan phase: for any worker
//! count, `scan_all_parallel` must return outcomes identical to the
//! serial `scan_all` — same order, same verdicts, same reports. The
//! scan engines are pure hash-based functions of each record, and the
//! shared caches only memoize those pure computations, so splitting the
//! corpus across threads may never change a single bit of the result.

use slum_crawler::RecordStore;
use slum_crawler::drive::{crawl_exchange, CrawlConfig};
use slum_exchange::build_exchange;
use slum_exchange::params::profile;
use slum_websim::build::WebBuilder;
use slum_websim::SyntheticWeb;

use malware_slums::scanpipe::ScanPipeline;
use malware_slums::study::{Study, StudyConfig};

/// Crawls one exchange into a record corpus big enough to split across
/// every tested worker count unevenly.
fn corpus(seed: u64, steps: u64) -> (SyntheticWeb, RecordStore) {
    let mut builder = WebBuilder::new(seed);
    let p = profile("SendSurf").expect("profile exists");
    let mut exchange = build_exchange(&mut builder, p, 0.04, 50_000);
    let web = builder.finish();
    let mut store = RecordStore::new();
    crawl_exchange(
        &web,
        &mut exchange,
        &CrawlConfig { steps, seed, ..Default::default() },
        &mut store,
    );
    (web, store)
}

#[test]
fn parallel_scan_is_bit_identical_to_serial_for_all_worker_counts() {
    let (web, store) = corpus(7100, 90);
    let pipeline = ScanPipeline::new(&web);
    let baseline = pipeline.scan_all(store.records());
    assert_eq!(baseline.len(), store.len());

    for workers in [1usize, 2, 4, 7] {
        pipeline.clear_caches();
        let parallel = pipeline.scan_all_parallel(store.records(), workers);
        assert_eq!(parallel, baseline, "{workers} workers diverged from serial");
    }
}

#[test]
fn parallel_scan_handles_empty_and_singleton_corpora() {
    let (web, store) = corpus(7101, 40);
    let pipeline = ScanPipeline::new(&web);

    for workers in [1usize, 2, 4, 7] {
        assert!(pipeline.scan_all_parallel(&[], workers).is_empty());
    }

    let single = &store.records()[..1];
    let baseline = pipeline.scan_all(single);
    for workers in [1usize, 2, 4, 7] {
        pipeline.clear_caches();
        assert_eq!(pipeline.scan_all_parallel(single, workers), baseline);
    }
}

#[test]
fn warm_caches_do_not_change_outcomes() {
    // Re-scanning without clearing must hit the caches and still agree.
    let (web, store) = corpus(7102, 60);
    let pipeline = ScanPipeline::new(&web);
    let cold = pipeline.scan_all_parallel(store.records(), 4);
    assert!(pipeline.cached_urls() > 0, "scan must populate the feature cache");
    let warm = pipeline.scan_all_parallel(store.records(), 4);
    assert_eq!(warm, cold);
}

#[test]
fn study_outcomes_identical_across_worker_counts() {
    // The full study path: referral filtering, splicing of clean
    // outcomes for self/popular referrals, index alignment.
    let run = |scan_workers: usize| {
        let config = StudyConfig::builder()
            .seed(31)
            .crawl_scale(0.0003)
            .domain_scale(0.03)
            .scan_workers(scan_workers)
            .build()
            .expect("valid config");
        Study::run(&config)
    };
    let serial = run(1);
    for workers in [2usize, 4, 7] {
        let parallel = run(workers);
        assert_eq!(
            parallel.outcomes, serial.outcomes,
            "study outcomes diverged at {workers} workers"
        );
        assert_eq!(parallel.store.len(), serial.store.len());
    }
}
