//! Pins the exchange substrate byte-identical to its pre-refactor
//! output at the default seed.
//!
//! The `TrafficSource` refactor (pluggable substrates) must not perturb
//! a single byte of the exchange substrate's corpus or rendered
//! artifacts: the crawl loop performs the same RNG draws in the same
//! order, the filter sees the same host sets, and the artifact builders
//! walk the same per-source rows. The FNV-1a hashes below were captured
//! on the pre-refactor tree at the same seed/scale; any drift here means
//! the abstraction leaked into behaviour.

use std::sync::OnceLock;

use malware_slums::artifact::ArtifactKind;
use malware_slums::report::Render;
use malware_slums::study::{Study, StudyConfig};

/// FNV-1a, 64-bit. Inline so the pin depends on nothing that the
/// refactor itself touches.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Same shape as the `scripts/ci.sh` golden run: default seed, tiny
/// scale, default (serial-capable) worker count.
fn study() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(|| {
        let config = StudyConfig::builder()
            .seed(2016)
            .crawl_scale(0.0005)
            .domain_scale(0.03)
            .build()
            .expect("valid config");
        Study::run(&config)
    })
}

/// The ten artifact kinds that existed before the substrate refactor,
/// in their pre-refactor `ArtifactKind::ALL` order. SubstrateComparison
/// is deliberately absent: the pin covers exactly the old surface.
const PRE_REFACTOR_KINDS: [ArtifactKind; 10] = [
    ArtifactKind::Table1,
    ArtifactKind::Table2,
    ArtifactKind::Table3,
    ArtifactKind::Table4,
    ArtifactKind::Fig2,
    ArtifactKind::Fig3,
    ArtifactKind::Fig4,
    ArtifactKind::Fig5,
    ArtifactKind::Fig6,
    ArtifactKind::Fig7,
];

/// Captured on pre-refactor `main` (commit 65b6b6f) at seed 2016,
/// crawl_scale 0.0005, domain_scale 0.03.
const GOLDEN_CORPUS_FNV: u64 = 0x9a5b_5812_015f_b382;
const GOLDEN_ARTIFACTS_FNV: u64 = 0x048d_134a_82de_e248;

#[test]
fn corpus_matches_pre_refactor_golden() {
    let got = fnv1a(study().store.to_jsonl().expect("serializable corpus").as_bytes());
    assert_eq!(
        got, GOLDEN_CORPUS_FNV,
        "exchange corpus drifted from pre-refactor golden: fnv1a = {got:#018x}"
    );
}

#[test]
fn artifacts_match_pre_refactor_golden() {
    let mut rendered = String::new();
    for kind in PRE_REFACTOR_KINDS {
        rendered.push_str(&study().artifact(kind).render());
        rendered.push('\n');
    }
    let got = fnv1a(rendered.as_bytes());
    assert_eq!(
        got, GOLDEN_ARTIFACTS_FNV,
        "exchange artifacts drifted from pre-refactor golden: fnv1a = {got:#018x}"
    );
}
