//! Determinism contract of the fault-injection layer: for a fixed seed
//! and fault profile, verdicts, provenance (`VerdictSource`), per-record
//! fault logs and the aggregated fault counters must be bit-identical
//! across `scan_workers ∈ {1, 2, 4}`. The fault schedule is compiled
//! from the corpus in virtual-time order before any scan worker runs,
//! so worker chunking may never move a single fault.
//!
//! Also pins the opt-in contract (an inert profile is indistinguishable
//! from no profile at all) and the `RetryPolicy` properties the plan
//! compiler relies on (bounded termination, monotone backoff).

use std::collections::BTreeMap;

use proptest::prelude::*;

use malware_slums::scanpipe::VerdictSource;
use malware_slums::study::{Study, StudyConfig};
use slum_detect::fault::FaultProfile;
use slum_detect::retry::RetryPolicy;

fn faulted_study(workers: usize, profile: FaultProfile) -> Study {
    let config = StudyConfig::builder()
        .seed(4242)
        .crawl_scale(0.0003)
        .domain_scale(0.03)
        .scan_workers(workers)
        .fault_profile(profile)
        .build()
        .expect("valid config");
    Study::run(&config)
}

/// Deterministic counters/gauges minus the two values that legitimately
/// depend on the worker count (same strip as metrics_determinism.rs).
fn stripped_metrics(study: &Study) -> BTreeMap<String, i128> {
    let mut m = study.metrics().deterministic_counters();
    m.remove("gauge:config.scan_workers");
    m.remove("gauge:scan.workers");
    m
}

#[test]
fn verdicts_and_fault_counters_identical_across_workers() {
    let serial = faulted_study(1, FaultProfile::default_profile());
    let baseline_metrics = stripped_metrics(&serial);
    for workers in [2usize, 4] {
        let parallel = faulted_study(workers, FaultProfile::default_profile());
        // Bit-identical ScanOutcomes — verdict, reports, VerdictSource
        // and the per-record FaultLog all participate in PartialEq.
        assert_eq!(
            parallel.outcomes, serial.outcomes,
            "faulted outcomes diverged at {workers} workers"
        );
        assert_eq!(
            stripped_metrics(&parallel),
            baseline_metrics,
            "fault counters diverged at {workers} workers"
        );
    }
    // The run actually exercised the fault machinery.
    let m = serial.metrics();
    assert!(m.counter("scan.faults.injected") > 0, "profile must inject");
    assert!(m.counter("scan.retries") > 0);
    assert!(m.counter("scan.degraded_verdicts") > 0);
    assert!(
        serial.outcomes.iter().any(|o| o.source != VerdictSource::Full),
        "some verdict must carry degraded provenance"
    );
}

#[test]
fn inert_profile_is_indistinguishable_from_no_profile() {
    // Fault injection is strictly opt-in: a study configured with the
    // explicit `none` profile must match one that never mentions faults,
    // outcome for outcome and counter for counter.
    let untouched = faulted_study(2, FaultProfile::none());
    let config = StudyConfig::builder()
        .seed(4242)
        .crawl_scale(0.0003)
        .domain_scale(0.03)
        .scan_workers(2)
        .build()
        .expect("valid config");
    let implicit = Study::run(&config);
    assert_eq!(untouched.outcomes, implicit.outcomes);
    assert_eq!(stripped_metrics(&untouched), stripped_metrics(&implicit));
    assert_eq!(untouched.metrics().counter("scan.faults.injected"), 0);
}

#[test]
fn fault_schedule_is_a_pure_function_of_seed_and_profile() {
    let a = faulted_study(2, FaultProfile::harsh());
    let b = faulted_study(4, FaultProfile::harsh());
    assert_eq!(a.outcomes, b.outcomes);
    // And a different profile on the same corpus faults differently.
    let c = faulted_study(2, FaultProfile::default_profile());
    assert_eq!(a.store.len(), c.store.len(), "corpus is seed-determined");
    assert_ne!(a.outcomes, c.outcomes, "profile must steer the schedule");
}

proptest! {
    /// `resolve` always terminates within the retry budget: at most
    /// `max_retries` retries and `max_retries + 1` failed attempts, for
    /// any key, arrival time and fault horizon.
    #[test]
    fn retry_resolution_bounded_by_budget(
        key in "[a-zA-Z0-9#/._-]{1,40}",
        max_retries in 0u32..12,
        at_secs in 0u64..1_000_000,
        clears_delta_secs in 0u64..100_000,
    ) {
        let policy = RetryPolicy { max_retries, ..RetryPolicy::default() };
        let at = at_secs * 1_000_000_000;
        let clears = at.saturating_add(clears_delta_secs * 1_000_000_000);
        let r = policy.resolve(&key, at, clears);
        prop_assert!(r.retries <= policy.max_retries);
        prop_assert!(r.failed_attempts <= policy.max_retries + 1);
        if r.resolved {
            prop_assert_eq!(r.failed_attempts, r.retries);
        } else {
            prop_assert_eq!(r.retries, policy.max_retries);
            prop_assert_eq!(r.failed_attempts, policy.max_retries + 1);
        }
        // Total backoff is the sum of a bounded, monotone schedule.
        prop_assert!(
            r.backoff_nanos
                <= u64::from(policy.max_retries)
                    * (policy.max_backoff_nanos * 3 / 2 + 1)
        );
    }

    /// The jittered backoff schedule is monotone non-decreasing in the
    /// attempt number and bounded by 1.5x the cap, for any key.
    #[test]
    fn backoff_monotone_and_bounded(key in ".{0,60}", attempts in 1u32..16) {
        let policy = RetryPolicy::default();
        let mut prev = 0u64;
        for attempt in 0..attempts {
            let b = policy.backoff_nanos(&key, attempt);
            prop_assert!(b >= prev, "attempt {}: {} < {}", attempt, b, prev);
            prop_assert!(b <= policy.max_backoff_nanos * 3 / 2 + 1);
            prev = b;
        }
    }

    /// Resolution is a pure function of (policy, key, times): replaying
    /// it — as every scan worker does — can never change the answer.
    #[test]
    fn retry_resolution_is_replayable(
        key in "[a-z0-9#]{1,30}",
        at in 0u64..u64::MAX / 2,
        clears in 0u64..u64::MAX / 2,
    ) {
        let policy = RetryPolicy::default();
        prop_assert_eq!(policy.resolve(&key, at, clears), policy.resolve(&key, at, clears));
    }
}
