//! Equivalence contract of the two JS engines: a study configured with
//! `JsEngine::Vm` (compile → cached bytecode → stack dispatch) must
//! produce byte-identical scan output to one configured with
//! `JsEngine::TreeWalk` (the original AST interpreter). Verdicts,
//! outcomes, health logs and export JSON may not differ by a single
//! bit, for every worker count and fault profile — the only permitted
//! differences are the `js.vm.*` instrumentation and the
//! `config.js_engine_vm` gauge that record which engine ran.
//!
//! This is the regression net under the interpreter's new role as
//! differential-testing oracle: if the VM ever drifts semantically,
//! these studies diverge before any proptest shrinks a counterexample.

use std::collections::BTreeMap;

use malware_slums::export;
use malware_slums::scanpipe::ScanPipeline;
use malware_slums::study::{Study, StudyConfig};
use slum_crawler::drive::{crawl_exchange, CrawlConfig};
use slum_crawler::RecordStore;
use slum_detect::fault::FaultProfile;
use slum_exchange::build_exchange;
use slum_exchange::params::profile;
use slum_js::sandbox::JsEngine;
use slum_websim::build::WebBuilder;
use slum_websim::{payload, SyntheticWeb, Url};

const SEED: u64 = 2016;

fn study_with(engine: JsEngine, workers: usize, profile: FaultProfile) -> Study {
    let config = StudyConfig::builder()
        .seed(SEED)
        .crawl_scale(0.0003)
        .domain_scale(0.03)
        .scan_workers(workers)
        .fault_profile(profile)
        .js_engine(engine)
        .build()
        .expect("valid config");
    Study::run(&config)
}

/// Deterministic counters minus the engine-identifying instrumentation
/// and the worker-count echoes: `js.vm.*` legitimately differs between
/// engines (the tree-walker reports zeros), `config.js_engine_vm`
/// records the switch itself, and the worker gauges echo the sweep.
fn engine_neutral_metrics(study: &Study) -> BTreeMap<String, i128> {
    let mut m = study.metrics().deterministic_counters();
    m.remove("gauge:config.scan_workers");
    m.remove("gauge:scan.workers");
    m.retain(|k, _| !k.starts_with("js.vm.") && k != "gauge:config.js_engine_vm");
    m
}

fn assert_studies_agree(vm: &Study, interp: &Study, tag: &str) {
    assert_eq!(
        vm.store.to_jsonl(),
        interp.store.to_jsonl(),
        "{tag}: crawl corpus diverged between engines"
    );
    assert_eq!(vm.outcomes, interp.outcomes, "{tag}: scan outcomes diverged");
    assert_eq!(vm.health, interp.health, "{tag}: health logs diverged");
    assert_eq!(
        export::to_json(vm).expect("export"),
        export::to_json(interp).expect("export"),
        "{tag}: export JSON diverged"
    );
    assert_eq!(
        engine_neutral_metrics(vm),
        engine_neutral_metrics(interp),
        "{tag}: engine-neutral counters diverged"
    );
}

#[test]
fn scan_output_bit_identical_across_engines_and_worker_counts() {
    let interp = study_with(JsEngine::TreeWalk, 1, FaultProfile::none());
    for workers in [1usize, 2, 4, 8] {
        let vm = study_with(JsEngine::Vm, workers, FaultProfile::none());
        assert_studies_agree(&vm, &interp, &format!("none-w{workers}"));
    }
}

#[test]
fn scan_output_bit_identical_across_engines_under_faults() {
    // Fault injection replays retries through the sandbox; the verdict
    // splice must land identically whichever engine ran the scripts.
    for profile in [FaultProfile::default_profile(), FaultProfile::harsh()] {
        let interp = study_with(JsEngine::TreeWalk, 1, profile.clone());
        for workers in [1usize, 2, 4, 8] {
            let vm = study_with(JsEngine::Vm, workers, profile.clone());
            assert_studies_agree(&vm, &interp, &format!("{profile:?}-w{workers}"));
        }
    }
}

#[test]
fn vm_metrics_always_registered_and_deterministic() {
    // `js.vm.*` counters exist under both engines (zeros for the
    // tree-walker, no absent keys) and are bit-identical across worker
    // counts under the VM despite the shared module cache.
    let interp = study_with(JsEngine::TreeWalk, 2, FaultProfile::none());
    let m = interp.metrics();
    for key in [
        "js.vm.compiles",
        "js.vm.module_cache.lookups",
        "js.vm.module_cache.hits",
        "js.vm.instructions",
        "js.vm.budget_exhaustions",
    ] {
        assert!(
            m.deterministic_counters().contains_key(key),
            "{key} must be registered under the tree-walker"
        );
        assert_eq!(m.counter(key), 0, "{key} must be zero under the tree-walker");
    }

    let baseline = study_with(JsEngine::Vm, 1, FaultProfile::none());
    let vm_counters = |s: &Study| -> BTreeMap<String, i128> {
        let mut m = s.metrics().deterministic_counters();
        m.retain(|k, _| k.starts_with("js.vm."));
        m
    };
    let serial = vm_counters(&baseline);
    // The synthetic web cloaks against the scanner context (benign HTML,
    // few scripts), so scan-phase volume is small — but never absent,
    // and always at least one lookup per compile.
    assert!(serial["js.vm.compiles"] > 0, "the corpus must carry scripts to compile");
    assert!(
        serial["js.vm.module_cache.lookups"] >= serial["js.vm.compiles"],
        "every compile implies a lookup"
    );
    assert!(serial["js.vm.instructions"] > 0);
    for workers in [2usize, 4, 8] {
        let parallel = study_with(JsEngine::Vm, workers, FaultProfile::none());
        assert_eq!(
            vm_counters(&parallel),
            serial,
            "js.vm.* counters diverged at {workers} workers"
        );
    }
}

#[test]
fn pipeline_reports_identical_under_both_engines() {
    // One level below the study: raw ScanOutcomes from the pipeline on
    // a crawled corpus whose records share one packed campaign payload
    // as uploaded content — the paper's cloaking defeat (§III fn. 1):
    // the exchange-facing page is malicious, the scanner-facing fetch
    // benign, so the *browser-captured* content carries the scripts.
    // The shared payload is exactly what the module cache exists for.
    let mut builder = WebBuilder::new(4242);
    let p = profile("SendSurf").expect("profile exists");
    let mut exchange = build_exchange(&mut builder, p, 0.04, 50_000);
    let web: SyntheticWeb = builder.finish();
    let mut store = RecordStore::new();
    crawl_exchange(
        &web,
        &mut exchange,
        &CrawlConfig { steps: 80, seed: 4242, ..Default::default() },
        &mut store,
    );
    let sink = Url::http("sink.campaign-cdn.example", "/drop");
    let payload = payload::js_injected_iframe_page("Campaign", &sink, 2);
    let mut records = store.records().to_vec();
    for record in records.iter_mut().filter(|r| !r.failed && r.content.is_some()) {
        record.content = Some(payload.clone());
    }

    let interp = ScanPipeline::new(&web).with_js_engine(JsEngine::TreeWalk);
    let baseline = interp.scan_all(&records);
    let vm = ScanPipeline::new(&web).with_js_engine(JsEngine::Vm);
    for workers in [1usize, 2, 4, 8] {
        vm.clear_caches();
        let got = vm.scan_all_parallel(&records, workers);
        assert_eq!(got, baseline, "vm pipeline diverged at {workers} workers");
    }
    // Warm module cache (clear_caches keeps compiled modules): still equal.
    let warm = vm.scan_all_parallel(&records, 4);
    assert_eq!(warm, baseline, "warm module cache changed outcomes");
    let stats = vm.js_vm_stats();
    assert!(stats.compiles > 0, "the campaign payload must compile");
    assert!(
        stats.module_hits > stats.compiles,
        "payload reuse must make warm hits dominate compiles (hits {} vs compiles {})",
        stats.module_hits,
        stats.compiles
    );
}
