//! Determinism contract of the pluggable traffic substrates: for every
//! substrate (`exchange`, `adnet`, `torrent`) the seeded study must be
//! a pure function of its configuration — identical corpus JSONL, scan
//! outcomes and export JSON across scan-worker counts {1, 2, 4, 8},
//! with the streaming (overlap) pipeline bit-identical to the
//! phase-barrier one, and a crawl killed between checkpoint rounds and
//! resumed from disk bit-identical to one that never stopped.
//!
//! The exchange substrate additionally carries a byte-level golden pin
//! in `exchange_golden_regression.rs`; this suite holds the invariants
//! the goldens cannot: cross-worker, cross-pipeline and kill/resume
//! equality for the substrates that have no published table to pin.

use std::path::PathBuf;

use malware_slums::export;
use malware_slums::study::{Study, StudyConfig};
use malware_slums::substrate::Substrate;

const SEED: u64 = 2016;

fn config_for(substrate: Substrate, workers: usize, overlap: bool) -> StudyConfig {
    StudyConfig::builder()
        .seed(SEED)
        .crawl_scale(0.0005)
        .domain_scale(0.03)
        .scan_workers(workers)
        .overlap_scan(overlap)
        .substrate(substrate)
        .build()
        .expect("valid config")
}

/// The full observable output of a study, as comparable strings.
fn fingerprint(study: &Study) -> (String, String) {
    (
        study.store.to_jsonl().expect("serializable corpus"),
        export::to_json(study).expect("export JSON"),
    )
}

#[test]
fn every_substrate_is_identical_across_worker_counts() {
    for substrate in Substrate::ALL {
        let baseline = Study::run(&config_for(substrate, 1, false));
        let (base_jsonl, base_export) = fingerprint(&baseline);
        assert!(baseline.store.len() > 0, "{}: empty corpus", substrate.name());
        for workers in [2usize, 4, 8] {
            let study = Study::run(&config_for(substrate, workers, false));
            assert_eq!(
                study.outcomes,
                baseline.outcomes,
                "{}: outcomes diverged at {workers} workers",
                substrate.name()
            );
            let (jsonl, export_json) = fingerprint(&study);
            assert_eq!(
                jsonl,
                base_jsonl,
                "{}: corpus diverged at {workers} workers",
                substrate.name()
            );
            // The export echoes config.scan_workers nowhere, so it must
            // be byte-identical too.
            assert_eq!(
                export_json,
                base_export,
                "{}: export diverged at {workers} workers",
                substrate.name()
            );
        }
    }
}

#[test]
fn every_substrate_streams_bit_identical_to_the_barrier_pipeline() {
    for substrate in Substrate::ALL {
        let barrier = Study::run(&config_for(substrate, 4, false));
        let overlap = Study::run(&config_for(substrate, 4, true));
        assert_eq!(
            overlap.outcomes,
            barrier.outcomes,
            "{}: overlap outcomes diverged",
            substrate.name()
        );
        assert_eq!(
            fingerprint(&overlap),
            fingerprint(&barrier),
            "{}: overlap corpus/export diverged",
            substrate.name()
        );
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("slum-substrate-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn new_substrates_survive_kill_and_resume_bit_identical() {
    for substrate in [Substrate::AdNet, Substrate::Torrent] {
        let config = StudyConfig::builder()
            .seed(SEED)
            .crawl_scale(0.0005)
            .domain_scale(0.03)
            .substrate(substrate)
            .checkpoint_every(16)
            .build()
            .expect("valid config");
        let straight = Study::run(&config);
        let dir = scratch_dir(substrate.name());
        let killed = Study::run_to_checkpoint(&config, &dir, 1)
            .expect("killed run does checkpoint I/O");
        assert!(killed.is_none(), "{}: kill must abandon the run", substrate.name());
        let resumed = Study::resume_from(&config, &dir).expect("resume");
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(
            fingerprint(&resumed),
            fingerprint(&straight),
            "{}: resumed run diverged from the uninterrupted one",
            substrate.name()
        );
        assert_eq!(resumed.outcomes, straight.outcomes, "{}: outcomes", substrate.name());
        assert!(resumed.metrics().counter("crawl.resume.records_restored") > 0);
    }
}

#[test]
fn resume_rejects_a_checkpoint_from_another_substrate() {
    // An adnet checkpoint must refuse to seed a torrent study: the RNG
    // streams are substrate-specific, so a silent cross-substrate
    // resume would corrupt the corpus undetectably.
    let write_config = |substrate| {
        StudyConfig::builder()
            .seed(SEED)
            .crawl_scale(0.0005)
            .domain_scale(0.03)
            .substrate(substrate)
            .checkpoint_every(16)
            .build()
            .expect("valid config")
    };
    let dir = scratch_dir("mismatch");
    let killed = Study::run_to_checkpoint(&write_config(Substrate::AdNet), &dir, 1)
        .expect("killed run");
    assert!(killed.is_none());
    let err = match Study::resume_from(&write_config(Substrate::Torrent), &dir) {
        Ok(_) => panic!("cross-substrate resume must be rejected"),
        Err(e) => e,
    };
    std::fs::remove_dir_all(&dir).ok();
    assert!(
        matches!(
            err,
            malware_slums::CheckpointError::ConfigMismatch { ref field, .. } if *field == "substrate"
        ),
        "unexpected error: {err}"
    );
}
