//! The storm test: a seeded chaos schedule (the [`slum_serve::chaos`]
//! harness) interleaves daemon kills, checkpoint corruption, harsh
//! storage-fault injection and tenant panics against a multi-tenant
//! service — and every surviving tenant's export JSON must still be
//! bit-identical to a fault-free batch run of the same config.
//!
//! One xorshift RNG drives the whole schedule, so a failure reproduces
//! exactly. The storm runs under two different chaos seeds (two
//! scheduling orders) to pin that the *order* of faults never leaks
//! into artifacts. The harness panics on containment failures; this
//! test owns the artifact comparison against its own batch references.

use std::path::PathBuf;

use malware_slums::export;
use malware_slums::study::Study;
use slum_serve::chaos::{run_storm, StormConfig};

/// The fault-free reference: same config through batch `Study::run`,
/// no service, no checkpoints, no injected faults.
fn batch_export(config: &StormConfig, tenant: usize) -> String {
    export::to_json(&Study::run(&config.batch_config(tenant))).expect("batch export")
}

fn scratch_root(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("slum-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn storm_survivors_export_bit_identical_to_fault_free_batch() {
    let base = StormConfig::default();
    let batches: Vec<String> =
        (0..base.tenants).map(|t| batch_export(&base, t)).collect();
    // Two chaos seeds = two completely different fault/scheduling
    // orders over the same tenants.
    for (chaos_seed, tag) in [(0xbad5eed0u64, "order-a"), (0x5ca1ab1eu64, "order-b")] {
        let root = scratch_root(tag);
        let report = run_storm(&root, &StormConfig { chaos_seed, ..base.clone() });
        assert!(report.kills >= 1 && report.corruptions >= 1 && report.panics >= 1);
        assert!(report.quarantined >= 1, "corruption must leave quarantine scars");
        for (t, export) in report.exports.iter().enumerate() {
            assert_eq!(
                export, &batches[t],
                "tenant t{t} diverged from the fault-free batch under chaos seed {chaos_seed:#x}"
            );
        }
        std::fs::remove_dir_all(&root).ok();
    }
}
