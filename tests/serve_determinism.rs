//! Determinism contract of the resident study service: a study
//! submitted to `slum_serve::Service` must produce export JSON
//! bit-identical to the same config run through the batch `Study`
//! entry points, no matter
//!
//! - how its scheduling slices interleave with other tenants' studies
//!   (round-robin, reversed, run-to-completion one at a time),
//! - whether the daemon was killed and a fresh service re-attached to
//!   the same root mid-crawl (kill-and-resume), or
//! - whether another tenant's identical study warmed the shared scan
//!   caches first (cache sharing is artifact-invisible; only
//!   `scan.cache.*` metrics observe it).
//!
//! The contract holds for every traffic substrate.

use std::path::PathBuf;

use malware_slums::export;
use malware_slums::study::{Study, StudyConfig};
use malware_slums::substrate::Substrate;
use slum_serve::Service;

const SEED: u64 = 2016;

fn config_for(substrate: Substrate) -> StudyConfig {
    StudyConfig::builder()
        .seed(SEED)
        .crawl_scale(0.0002)
        .domain_scale(0.03)
        .checkpoint_every(7)
        .substrate(substrate)
        .build()
        .expect("valid config")
}

fn scratch_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("slum-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The batch reference: same config through `Study::run` (no service,
/// no checkpoints, no sharing).
fn batch_study(substrate: Substrate) -> Study {
    let mut config = config_for(substrate);
    config.checkpoint_every = None;
    Study::run(&config)
}

fn batch_export(substrate: Substrate) -> String {
    export::to_json(&batch_study(substrate)).expect("batch export")
}

fn completed_export(service: &Service, id: u64) -> String {
    let status = service.status(id).expect("known study");
    assert_eq!(status.state, "done", "study {id} did not finish: {:?}", status.error);
    service.export(id).expect("known study").expect("done study has export")
}

#[test]
fn interleaved_tenants_match_batch_for_every_substrate() {
    let root = scratch_root("interleave");
    let service = Service::open(&root).expect("service root");
    let mut ids = Vec::new();
    for (i, substrate) in Substrate::ALL.into_iter().enumerate() {
        let id = service
            .submit(&format!("tenant-{i}"), config_for(substrate))
            .expect("submit");
        ids.push((id, substrate));
    }
    // Round-robin all three substrates' studies to completion.
    service.run_to_completion().expect("scheduler");
    for (id, substrate) in &ids {
        assert_eq!(
            completed_export(&service, *id),
            batch_export(*substrate),
            "{}: interleaved service run diverged from batch",
            substrate.name()
        );
    }
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn scheduling_order_never_affects_artifacts() {
    let substrate = Substrate::ALL[0];
    let batch = batch_export(substrate);

    // Reversed round-robin: advance the later study first each pass.
    let root = scratch_root("reversed");
    let service = Service::open(&root).expect("service root");
    let a = service.submit("alpha", config_for(substrate)).expect("submit");
    let b = service.submit("beta", config_for(substrate)).expect("submit");
    loop {
        let mut progressed = false;
        for id in [b, a] {
            let status = service.advance(id).expect("advance");
            progressed |= status.state == "running";
        }
        if !progressed {
            break;
        }
    }
    assert_eq!(completed_export(&service, a), batch, "reversed order diverged (alpha)");
    assert_eq!(completed_export(&service, b), batch, "reversed order diverged (beta)");
    std::fs::remove_dir_all(&root).ok();

    // One at a time: drain study A fully before B starts.
    let root = scratch_root("serial");
    let service = Service::open(&root).expect("service root");
    let a = service.submit("alpha", config_for(substrate)).expect("submit");
    while service.status(a).expect("status").state == "running" {
        service.advance(a).expect("advance");
    }
    let b = service.submit("beta", config_for(substrate)).expect("submit");
    service.run_to_completion().expect("scheduler");
    assert_eq!(completed_export(&service, a), batch, "serial order diverged (alpha)");
    assert_eq!(completed_export(&service, b), batch, "serial order diverged (beta)");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn killed_daemon_resumes_bit_identically() {
    for substrate in Substrate::ALL {
        let batch = batch_export(substrate);
        let root = scratch_root(&format!("kill-{}", substrate.name()));

        // First service incarnation: advance a few slices, then die.
        {
            let service = Service::open(&root).expect("service root");
            let id = service.submit("phoenix", config_for(substrate)).expect("submit");
            for _ in 0..3 {
                let status = service.advance(id).expect("advance");
                if status.state != "running" {
                    break;
                }
            }
        } // service dropped: the "daemon" is gone, checkpoints survive

        // Second incarnation over the same root: same tenant + config
        // resolves to the same checkpoint directory, so the study
        // resumes where the dead daemon left it.
        let service = Service::open(&root).expect("service root");
        let id = service.submit("phoenix", config_for(substrate)).expect("resubmit");
        service.run_to_completion().expect("scheduler");
        assert_eq!(
            completed_export(&service, id),
            batch,
            "{}: kill-and-resume diverged from batch",
            substrate.name()
        );
        std::fs::remove_dir_all(&root).ok();
    }
}

#[test]
fn cache_sharing_is_artifact_invisible_and_actually_shares() {
    let substrate = Substrate::ALL[0];
    let reference = batch_study(substrate);
    let batch = export::to_json(&reference).expect("batch export");
    let root = scratch_root("sharing");
    let service = Service::open(&root).expect("service root");
    let config = config_for(substrate);
    let fingerprint = config.cache_fingerprint();

    // Tenant alpha runs alone and warms the shared caches.
    let a = service.submit("alpha", config.clone()).expect("submit");
    service.run_to_completion().expect("scheduler");
    let warm = service.cache_group_stats(&fingerprint).expect("cache group exists");
    let (warm_lookups, warm_entries): (u64, u64) =
        warm.iter().fold((0, 0), |(l, e), (_, s)| (l + s.lookups, e + s.entries));
    assert!(warm_lookups > 0, "alpha's scan must populate the shared caches");

    // Tenant beta scans the same web through the warmed caches.
    let b = service.submit("beta", config).expect("submit");
    service.run_to_completion().expect("scheduler");
    let shared = service.cache_group_stats(&fingerprint).expect("cache group exists");
    let (shared_lookups, shared_entries): (u64, u64) =
        shared.iter().fold((0, 0), |(l, e), (_, s)| (l + s.lookups, e + s.entries));

    let beta_lookups = shared_lookups - warm_lookups;
    let beta_inserts = shared_entries - warm_entries;
    assert!(beta_lookups > 0, "beta's scan must consult the shared caches");
    assert!(
        beta_inserts < beta_lookups,
        "an identical second tenant must hit alpha's cached entries, \
         not recompute everything ({beta_inserts} inserts / {beta_lookups} lookups)"
    );

    // Sharing never leaks into artifacts: both tenants equal batch.
    assert_eq!(completed_export(&service, a), batch, "warming tenant diverged");
    assert_eq!(completed_export(&service, b), batch, "warmed tenant diverged");

    // The shared verdict index answers beta's queries from URLs only
    // alpha-and-batch scanned: every regular URL of the study is known.
    let mut hits = 0u64;
    for (record, outcome) in reference.regular_pairs().into_iter().take(32) {
        let verdict = service
            .query_verdict(b, &record.url.canonical())
            .expect("known study");
        assert_eq!(
            verdict,
            Some(outcome.malicious),
            "shared verdict index disagrees with batch for {}",
            record.url.canonical()
        );
        hits += 1;
    }
    assert!(hits > 0, "study must yield regular records to query");
    assert_eq!(
        service.query_verdict(b, "http://never-crawled.example/").expect("known study"),
        None,
        "uncrawled URLs must be unknown"
    );
    std::fs::remove_dir_all(&root).ok();
}
