//! Shape assertions against the paper's published results: who wins, by
//! roughly what factor, and where the qualitative boundaries fall. These
//! are the reproduction's acceptance tests — absolute numbers are
//! allowed to drift (our substrate is a simulator), the *shape* is not.

use std::sync::OnceLock;

use malware_slums::study::{Study, StudyConfig};
use malware_slums::Category;
use slum_exchange::params::profile;
use slum_exchange::ExchangeKind;

fn study() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(|| {
        let config = StudyConfig::builder()
            .seed(1337)
            .crawl_scale(0.003)
            .domain_scale(0.06)
            .build()
            .expect("valid config");
        Study::run(&config)
    })
}

/// Headline result: "more than 26% of URLs encountered on traffic
/// exchanges are malicious". Small crawls are noisy; assert a band
/// around the paper's 26.7%.
#[test]
fn headline_overall_malice_rate() {
    let rate = study().table1().overall_malicious_fraction();
    assert!((0.20..0.35).contains(&rate), "overall malice rate {rate:.3} vs paper 0.267");
}

/// Table I shape: SendSurf is the most-infested exchange; one exchange
/// has over half its URLs malicious.
#[test]
fn sendsurf_leads_table1() {
    let t1 = study().table1();
    let sendsurf = t1.rows.iter().find(|r| r.exchange == "SendSurf").expect("row");
    for row in &t1.rows {
        assert!(
            sendsurf.malicious_fraction() >= row.malicious_fraction(),
            "SendSurf ({:.3}) must lead; {} has {:.3}",
            sendsurf.malicious_fraction(),
            row.exchange,
            row.malicious_fraction()
        );
    }
    assert!(sendsurf.malicious_fraction() > 0.40, "paper: 51.9%");
}

/// Table I shape: auto-surf volumes dwarf manual-surf volumes, and
/// Otohits is dominated by self-referrals (54% in the paper).
#[test]
fn crawl_volume_and_self_referral_shape() {
    let t1 = study().table1();
    let min_auto = t1
        .rows
        .iter()
        .filter(|r| r.kind == "Auto-surf")
        .map(|r| r.crawled)
        .min()
        .expect("auto rows");
    let max_manual = t1
        .rows
        .iter()
        .filter(|r| r.kind == "Manual-surf")
        .map(|r| r.crawled)
        .max()
        .expect("manual rows");
    assert!(min_auto > max_manual, "auto crawls ({min_auto}) must exceed manual ({max_manual})");

    let otohits = t1.rows.iter().find(|r| r.exchange == "Otohits").expect("row");
    let self_frac = otohits.self_referrals as f64 / otohits.crawled as f64;
    assert!(self_frac > 0.40, "Otohits self-referral fraction {self_frac:.3} vs paper 0.54");
}

/// Table II shape: SendSurf pairs the highest URL-malice rate with the
/// lowest domain-malice rate (few malicious domains, surfed heavily).
#[test]
fn sendsurf_domain_paradox() {
    let t2 = study().table2();
    let sendsurf = t2.iter().find(|r| r.exchange == "SendSurf").expect("row");
    let others_min = t2
        .iter()
        .filter(|r| r.exchange != "SendSurf")
        .map(|r| r.malware_fraction())
        .fold(f64::INFINITY, f64::min);
    assert!(
        sendsurf.malware_fraction() <= others_min + 0.05,
        "SendSurf domain malice {:.3} should be (near-)lowest; others' min {:.3}",
        sendsurf.malware_fraction(),
        others_min
    );
}

/// Table III shape: blacklisted is the largest categorized class, then
/// JavaScript, then redirections; shortened and Flash are rare; and the
/// miscellaneous bucket holds the majority of all malicious URLs.
#[test]
fn table3_category_ordering() {
    let counts = study().table3();
    let share = |c| counts.categorized_share(c);
    assert!(
        share(Category::Blacklisted) > share(Category::MaliciousJs),
        "blacklisted {:.3} vs js {:.3}",
        share(Category::Blacklisted),
        share(Category::MaliciousJs)
    );
    assert!(
        share(Category::MaliciousJs) > share(Category::SuspiciousRedirect),
        "js {:.3} vs redirect {:.3}",
        share(Category::MaliciousJs),
        share(Category::SuspiciousRedirect)
    );
    // Shortened and Flash are the two rarest classes; at small scales
    // either may be absent entirely, so the ordering is non-strict.
    assert!(share(Category::SuspiciousRedirect) >= share(Category::MaliciousFlash));
    assert!(share(Category::Blacklisted) > share(Category::MaliciousFlash));
    assert!(share(Category::Blacklisted) > 0.5, "paper: 74.8%");
    let misc = counts.misc_fraction();
    assert!((0.45..0.85).contains(&misc), "misc fraction {misc:.3} vs paper 0.664");
}

/// Figure 3 shape: manual-surf exchanges are burstier than auto-surf
/// exchanges (paid campaigns vs automated rotation).
#[test]
fn manual_exchanges_burstier_than_auto() {
    let series = study().fig3();
    let burstiness = |name: &str| {
        let s = series.iter().find(|s| s.exchange == name).expect("series");
        let window = (s.len() / 10).max(5);
        s.burstiness(window)
    };
    let auto_mean = ["10KHits", "ManyHits", "Smiley Traffic", "SendSurf", "Otohits"]
        .iter()
        .map(|n| burstiness(n))
        .sum::<f64>()
        / 5.0;
    let manual_mean = ["Cash N Hits", "Easyhits4u", "Hit2Hit", "Traffic Monsoon"]
        .iter()
        .map(|n| burstiness(n))
        .sum::<f64>()
        / 4.0;
    assert!(
        manual_mean > auto_mean,
        "manual burstiness {manual_mean:.2} must exceed auto {auto_mean:.2}"
    );
}

/// Figure 5 shape: redirect counts are mode-1 with a tail reaching
/// several hops ("up to 7 times"). The small-scale study's realized
/// histogram is noisy (few redirect sites per pool), so the mode-1 shape
/// is asserted on the generator's hop distribution with a large sample,
/// and the study artifact is checked for tail reach and bounds.
#[test]
fn redirect_histogram_shape() {
    // Full-scale driver: sample the redirect-hop distribution directly.
    use slum_websim::params::REDIRECT_COUNT_HISTOGRAM;
    use slum_websim::rng::{pick_weighted, seeded};
    let weights: Vec<f64> = REDIRECT_COUNT_HISTOGRAM.iter().map(|(_, w)| *w).collect();
    let mut rng = seeded(5);
    let mut counts = [0u64; 7];
    for _ in 0..20_000 {
        counts[pick_weighted(&mut rng, &weights)] += 1;
    }
    assert!(counts.windows(2).all(|w| w[0] > w[1]), "monotone decreasing: {counts:?}");
    assert!(counts[6] > 0, "tail reaches 7 hops");

    // Study artifact: populated and bounded by the hop cap. (The tail's
    // reach at small crawl scales depends on which few chain sites the
    // rotation happened to surf; the 20k-sample check above is the
    // authoritative shape assertion.)
    let hist = study().fig5();
    assert!(hist.total() > 0);
    assert!(hist.max_hops() >= 1);
    assert!(hist.max_hops() <= 8);
}

/// Figure 6 shape: .com dominates malicious URLs, .net second, the four
/// named TLDs cover ≥90%.
#[test]
fn tld_breakdown_shape() {
    let tld = study().fig6();
    assert!(tld.share("com") > 0.5, "com share {:.3} vs paper 0.70", tld.share("com"));
    assert!(tld.share("com") > tld.share("net"), "com must beat net");
    assert!(tld.share("net") > tld.share("de"), "net must beat de");
    let named = tld.share("com") + tld.share("net") + tld.share("de") + tld.share("org");
    assert!(named > 0.80, "named TLDs cover {named:.3}");
}

/// Figure 7 shape: business is the top infected category, advertisement
/// second.
#[test]
fn content_breakdown_shape() {
    let content = study().fig7();
    let business = content.share("Business");
    let ads = content.share("Advertisement");
    assert!(business > ads, "business {business:.3} must beat ads {ads:.3}");
    for label in ["Entertainment", "Information Technology", "Others"] {
        assert!(
            business > content.share(label),
            "business must beat {label} ({:.3})",
            content.share(label)
        );
    }
    assert!(business > 0.40, "paper: 58.6%");
}

/// Per-exchange Table I percentages stay within a tolerance of the
/// paper's column (the generator is calibrated; the crawl is stochastic).
#[test]
fn per_exchange_rates_near_paper() {
    let t1 = study().table1();
    for row in &t1.rows {
        let paper = profile(&row.exchange).expect("profile").malicious_fraction();
        let measured = row.malicious_fraction();
        let tolerance = if profile(&row.exchange).unwrap().kind == ExchangeKind::ManualSurf {
            // Manual crawls are tiny at this scale; allow wider noise.
            0.12
        } else {
            0.08
        };
        assert!(
            (measured - paper).abs() < tolerance,
            "{}: measured {measured:.3} vs paper {paper:.3}",
            row.exchange
        );
    }
}

/// Some malicious URLs are only caught via the content-upload path, and
/// none of the *detected* set should be self/popular referrals.
#[test]
fn detection_paths_shape() {
    let s = study();
    let uploads = s.outcomes.iter().filter(|o| o.needed_content_upload).count();
    let total_malicious = s.outcomes.iter().filter(|o| o.malicious).count();
    assert!(uploads > 0);
    assert!(uploads < total_malicious, "uploads are the minority path");
}
