//! Cross-crate integration: substrate pieces composed outside the
//! one-call `Study` runner — cloaking end to end, the vetting
//! experiment, the burst-validation experiment, and the crawl→scan
//! hand-off.

use slum_browser::Browser;
use slum_crawler::burst::run_burst_experiment;
use slum_crawler::drive::{crawl_exchange, CrawlConfig};
use slum_crawler::{CrawlRecord, RecordStore};
use slum_detect::quttera::Quttera;
use slum_detect::tools::ToolId;
use slum_detect::vetting::{build_gold_standard, run_vetting, select_tools};
use slum_detect::virustotal::VirusTotal;
use slum_exchange::params::profile;
use slum_exchange::{build_exchange, ExchangeKind};
use slum_websim::build::{MaliciousOptions, WebBuilder};
use slum_websim::rng::seeded;
use slum_websim::{MaliceKind, RequestContext};

use malware_slums::scanpipe::ScanPipeline;

#[test]
fn cloaking_lifecycle_url_scan_misses_upload_catches() {
    // Build one cloaked site; reproduce §III footnote 1 end to end.
    let mut builder = WebBuilder::new(300);
    let spec = builder.malicious_site(MaliciousOptions {
        kind: Some(MaliceKind::Misc),
        cloaked: Some(true),
        ..Default::default()
    });
    let web = builder.finish();

    // 1. Both scanners fetch by URL → cloak serves benign → miss.
    let vt = VirusTotal::new(&web);
    let quttera = Quttera::new(&web);
    assert!(!vt.scan_url(&spec.url).is_malicious());
    assert!(!quttera.scan_url(&spec.url).is_malicious());

    // 2. A crawler's browser captures the real content.
    let load = Browser::new(&web).load(&spec.url);
    let content = load.html.clone().expect("captured content");

    // 3. Uploading the capture defeats the cloak.
    assert!(vt.scan_content(&spec.url, &content).is_malicious());
    assert!(quttera.scan_content(&spec.url, &content).is_malicious());

    // 4. The pipeline does all of this automatically.
    let record = CrawlRecord::from_load("test", 0, 0, &load);
    let pipeline = ScanPipeline::new(&web);
    let outcome = pipeline.scan(&record);
    assert!(outcome.malicious);
    assert!(outcome.needed_content_upload);
}

#[test]
fn vetting_experiment_selects_vt_and_quttera() {
    let gold = build_gold_standard(2016, 30);
    let rows = run_vetting(&gold);
    assert_eq!(rows.len(), 8, "all eight candidate tools vetted");
    let selected = select_tools(&rows);
    assert_eq!(selected, vec![ToolId::VirusTotal, ToolId::Quttera]);
    // Weakest tools at 0%.
    for row in &rows {
        if matches!(row.tool, ToolId::Wepawet | ToolId::AvgThreatLab) {
            assert_eq!(row.detected, 0, "{:?}", row.tool);
        }
    }
}

#[test]
fn burst_experiment_end_to_end_on_manual_exchange() {
    let mut builder = WebBuilder::new(301);
    let dummy = builder.benign_site(Default::default());
    let p = profile("Traffic Monsoon").expect("profile exists");
    let mut exchange = build_exchange(&mut builder, p, 0.05, 500_000);
    let mut rng = seeded(5);

    let before = exchange.campaigns().len();
    let experiment =
        run_burst_experiment(&mut exchange, &dummy.url, 5, 50_000, &mut rng).expect("economy ok");

    assert_eq!(experiment.report.purchased, 2_500);
    assert!(experiment.report.delivered > experiment.report.purchased, "over-delivery");
    assert!(experiment.report.span_secs < 3_600, "visits land within the hour");
    assert_eq!(exchange.campaigns().len(), before + 1);
}

#[test]
fn crawl_then_scan_hand_off_preserves_alignment() {
    let mut builder = WebBuilder::new(302);
    let p = profile("SendSurf").expect("profile exists");
    let mut exchange = build_exchange(&mut builder, p, 0.04, 50_000);
    let web = builder.finish();

    let mut store = RecordStore::new();
    let stats = crawl_exchange(
        &web,
        &mut exchange,
        &CrawlConfig { steps: 120, seed: 9, ..Default::default() },
        &mut store,
    );
    assert_eq!(stats.pages, 120);

    let pipeline = ScanPipeline::new(&web);
    let outcomes = pipeline.scan_all(store.records());
    assert_eq!(outcomes.len(), store.len());

    // SendSurf is the paper's most-infested exchange; even a small crawl
    // must surface a sizeable malicious share among member sites.
    let malicious = outcomes.iter().filter(|o| o.malicious).count();
    assert!(malicious > 10, "SendSurf crawl found only {malicious} malicious of 120");
}

#[test]
fn auto_exchanges_log_faster_than_manual_in_wall_clock_model() {
    // Auto-surf exchanges produced ~50x the pages of manual-surf in the
    // paper (Table I). The simulator models this through CAPTCHA gates
    // and solve time: verify virtual time per page is higher for manual.
    let mut builder = WebBuilder::new(303);
    let auto_profile = profile("Otohits").expect("profile");
    let manual_profile = profile("Cash N Hits").expect("profile");
    let mut auto = build_exchange(&mut builder, auto_profile, 0.04, 50_000);
    let mut manual = build_exchange(&mut builder, manual_profile, 0.04, 50_000);
    assert_eq!(auto.kind(), ExchangeKind::AutoSurf);
    assert_eq!(manual.kind(), ExchangeKind::ManualSurf);
    let web = builder.finish();

    let steps = 60;
    let mut store_a = RecordStore::new();
    let mut store_m = RecordStore::new();
    crawl_exchange(
        &web,
        &mut auto,
        &CrawlConfig { steps, seed: 1, ..Default::default() },
        &mut store_a,
    );
    crawl_exchange(
        &web,
        &mut manual,
        &CrawlConfig { steps, seed: 1, ..Default::default() },
        &mut store_m,
    );
    let span = |s: &RecordStore| {
        let first = s.records().first().map(|r| r.at).unwrap_or(0);
        let last = s.records().last().map(|r| r.at).unwrap_or(0);
        last - first
    };
    // Per-page virtual cost: manual (30s surf + solving) > auto (10s surf).
    assert!(
        span(&store_m) > span(&store_a),
        "manual {} vs auto {}",
        span(&store_m),
        span(&store_a)
    );
}

#[test]
fn scanner_fetches_do_not_pollute_shortener_stats() {
    let mut builder = WebBuilder::new(304);
    let spec =
        builder.shortened_site(slum_websim::Tld::Com, slum_websim::ContentCategory::Business);
    let web = builder.finish();

    let code = spec.url.path().trim_start_matches('/').to_string();
    let service = web.shorteners().service(spec.url.host()).expect("shortener host");
    let before = service.stats(&code).expect("stats").hits;

    // Scanner resolutions must not count as organic hits.
    let vt = VirusTotal::new(&web);
    let _ = vt.scan_url(&spec.url);
    let quttera = Quttera::new(&web);
    let _ = quttera.scan_url(&spec.url);
    assert_eq!(service.stats(&code).expect("stats").hits, before);

    // A browser visit does count.
    let _ = web.fetch(&spec.url, &RequestContext::browser());
    assert_eq!(service.stats(&code).expect("stats").hits, before + 1);
}
