//! Determinism contract of the crawl-resilience layer: for a fixed seed
//! and crawl-fault profile, the crawled corpus, the scan outcomes, the
//! per-exchange health logs and the aggregated `crawl.*` counters must
//! be bit-identical across `scan_workers ∈ {1, 2, 4}` — and across
//! repeated runs — for every named profile. Exchange lifecycle faults
//! are compiled from stable hashes before the crawl starts and consume
//! zero RNG draws, so neither worker chunking nor fault windows may
//! move a single page.
//!
//! Also pins the opt-in contract (the explicit `none` profile is
//! indistinguishable from never mentioning crawl faults at all) and the
//! slot-conservation invariant `pages + lost_steps == planned steps`.

use std::collections::BTreeMap;

use malware_slums::study::{steps_for, Study, StudyConfig};
use slum_crawler::CrawlFaultProfile;
use slum_exchange::params::PROFILES;

const SEED: u64 = 7777;
const CRAWL_SCALE: f64 = 0.0003;

fn study_with(workers: usize, profile: CrawlFaultProfile) -> Study {
    let config = StudyConfig::builder()
        .seed(SEED)
        .crawl_scale(CRAWL_SCALE)
        .domain_scale(0.03)
        .scan_workers(workers)
        .crawl_fault_profile(profile)
        .build()
        .expect("valid config");
    Study::run(&config)
}

/// Deterministic counters/gauges minus the two values that legitimately
/// depend on the worker count (same strip as metrics_determinism.rs).
fn stripped_metrics(study: &Study) -> BTreeMap<String, i128> {
    let mut m = study.metrics().deterministic_counters();
    m.remove("gauge:config.scan_workers");
    m.remove("gauge:scan.workers");
    m
}

#[test]
fn corpus_and_counters_identical_across_workers_for_every_profile() {
    for name in CrawlFaultProfile::NAMES {
        let profile = CrawlFaultProfile::parse(name).expect("named profile");
        let serial = study_with(1, profile.clone());
        let base_records = serial.store.to_jsonl();
        let base_metrics = stripped_metrics(&serial);
        for workers in [2usize, 4] {
            let parallel = study_with(workers, profile.clone());
            assert_eq!(
                parallel.store.to_jsonl(),
                base_records,
                "profile '{name}': corpus diverged at {workers} workers"
            );
            assert_eq!(
                parallel.outcomes, serial.outcomes,
                "profile '{name}': outcomes diverged at {workers} workers"
            );
            assert_eq!(
                parallel.health, serial.health,
                "profile '{name}': health logs diverged at {workers} workers"
            );
            assert_eq!(
                stripped_metrics(&parallel),
                base_metrics,
                "profile '{name}': counters diverged at {workers} workers"
            );
        }
    }
}

#[test]
fn every_profile_conserves_surf_slots() {
    // Every planned surf slot is accounted for: it either produced a
    // logged page or was lost to a fault — per exchange and in total.
    for name in CrawlFaultProfile::NAMES {
        let profile = CrawlFaultProfile::parse(name).expect("named profile");
        let study = study_with(2, profile);
        let mut planned_total = 0u64;
        for health in &study.health {
            let exchange = PROFILES
                .iter()
                .find(|p| p.name == health.exchange)
                .expect("known exchange");
            let planned = steps_for(exchange, CRAWL_SCALE);
            planned_total += planned;
            assert_eq!(
                health.pages + health.lost_steps,
                planned,
                "profile '{name}', {}: slots must balance",
                health.exchange
            );
        }
        let m = study.metrics();
        assert_eq!(
            m.counter("crawl.pages") + m.counter("crawl.faults.lost_steps"),
            planned_total,
            "profile '{name}': aggregate slots must balance"
        );
    }
}

#[test]
fn inert_profile_is_indistinguishable_from_no_profile() {
    // Crawl resilience is strictly opt-in: a study configured with the
    // explicit `none` profile must match one that never mentions crawl
    // faults, page for page and counter for counter.
    let untouched = study_with(2, CrawlFaultProfile::none());
    let config = StudyConfig::builder()
        .seed(SEED)
        .crawl_scale(CRAWL_SCALE)
        .domain_scale(0.03)
        .scan_workers(2)
        .build()
        .expect("valid config");
    let implicit = Study::run(&config);
    assert_eq!(untouched.store.to_jsonl(), implicit.store.to_jsonl());
    assert_eq!(untouched.outcomes, implicit.outcomes);
    assert_eq!(untouched.health, implicit.health);
    assert_eq!(stripped_metrics(&untouched), stripped_metrics(&implicit));
    // The counters exist either way (dashboards can rely on them) but
    // stay pinned at zero without an active profile.
    let m = untouched.metrics();
    assert_eq!(m.counter("crawl.faults.injected"), 0);
    assert_eq!(m.counter("crawl.faults.lost_steps"), 0);
    assert!(untouched.health.iter().all(|h| h.is_clean()));
}

#[test]
fn active_profiles_steer_the_corpus() {
    let clean = study_with(1, CrawlFaultProfile::none());
    let default = study_with(1, CrawlFaultProfile::default_profile());
    let harsh = study_with(1, CrawlFaultProfile::harsh());

    let m = default.metrics();
    assert!(m.counter("crawl.faults.injected") > 0, "default profile must fault");
    assert!(m.counter("crawl.faults.lost_steps") > 0);
    assert!(default.store.len() < clean.store.len(), "faults must cost pages");
    assert!(
        harsh.metrics().counter("crawl.faults.lost_steps")
            > m.counter("crawl.faults.lost_steps"),
        "harsh must lose more slots than default"
    );
    // Degradation, not abortion: every exchange still reports health and
    // the pipeline still produces all nine Table I rows.
    assert_eq!(harsh.health.len(), 9);
    assert_eq!(harsh.table1().rows.len(), 9);
}
