#!/usr/bin/env bash
# CI entry point: build, test, then smoke-test the observability path
# end to end (repro --metrics must emit a parseable METRICS.json with
# nonzero key counters).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q

metrics_file="$(mktemp -t METRICS.XXXXXX.json)"
trap 'rm -f "$metrics_file"' EXIT

cargo run --release -p slum-bench --bin repro -- table1 \
    --scale 0.0005 --seed 2016 --metrics "$metrics_file" >/dev/null

python3 - "$metrics_file" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    snapshot = json.load(f)

counters = snapshot["counters"]
for key in ("crawl.pages", "filter.regular_out", "scan.scans",
            "scan.cache.url_features.lookups"):
    if counters.get(key, 0) <= 0:
        sys.exit(f"METRICS smoke test: counter {key!r} is zero or missing")

if snapshot["gauges"].get("config.seed") != 2016:
    sys.exit("METRICS smoke test: config.seed gauge mismatch")

print(f"METRICS smoke test OK: {len(counters)} counters, "
      f"{len(snapshot['spans'])} spans")
EOF

echo "ci.sh: all checks passed"
