#!/usr/bin/env bash
# CI entry point: build, test, then smoke-test the observability path
# end to end (repro --metrics must emit a parseable METRICS.json with
# nonzero key counters).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q

metrics_file="$(mktemp -t METRICS.XXXXXX.json)"
trap 'rm -f "$metrics_file"' EXIT

cargo run --release -p slum-bench --bin repro -- table1 \
    --scale 0.0005 --seed 2016 --metrics "$metrics_file" >/dev/null

python3 - "$metrics_file" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    snapshot = json.load(f)

counters = snapshot["counters"]
for key in ("crawl.pages", "filter.regular_out", "scan.scans",
            "scan.cache.url_features.lookups"):
    if counters.get(key, 0) <= 0:
        sys.exit(f"METRICS smoke test: counter {key!r} is zero or missing")

if snapshot["gauges"].get("config.seed") != 2016:
    sys.exit("METRICS smoke test: config.seed gauge mismatch")

# The fault layers (scan-service and exchange-side) are opt-in: a
# fault-free run must still register their counters (dashboards rely on
# their presence) and report zero faults.
for key in ("scan.faults.injected", "scan.retries", "scan.degraded_verdicts",
            "crawl.faults.injected", "crawl.faults.lost_steps",
            "crawl.faults.outages", "crawl.faults.shutdowns",
            "crawl.resume.segments_restored"):
    if key not in counters:
        sys.exit(f"METRICS smoke test: fault counter {key!r} missing")
    if counters[key] != 0:
        sys.exit(f"METRICS smoke test: fault-free run has {key!r} = "
                 f"{counters[key]}, expected 0")

print(f"METRICS smoke test OK: {len(counters)} counters, "
      f"{len(snapshot['spans'])} spans")
EOF

fault_metrics_file="$(mktemp -t METRICS_FAULT.XXXXXX.json)"
trap 'rm -f "$metrics_file" "$fault_metrics_file"' EXIT

cargo run --release -p slum-bench --bin repro -- table1 \
    --scale 0.0005 --seed 2016 --fault-profile default \
    --metrics "$fault_metrics_file" >/dev/null

python3 - "$fault_metrics_file" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    snapshot = json.load(f)

counters = snapshot["counters"]
for key in ("scan.faults.injected", "scan.retries", "scan.degraded_verdicts"):
    if counters.get(key, 0) <= 0:
        sys.exit(f"FAULT smoke test: counter {key!r} is zero or missing "
                 "under --fault-profile default")

print("FAULT smoke test OK: "
      f"{counters['scan.faults.injected']} injected, "
      f"{counters['scan.retries']} retries, "
      f"{counters['scan.degraded_verdicts']} degraded verdicts")
EOF

# Checkpoint/resume smoke test: a crawl killed between checkpoint
# rounds and resumed from disk must reproduce the uninterrupted run
# byte for byte — same table output, same counters (minus the
# crawl.resume.* bookkeeping that records the recovery itself).
ckpt_dir="$(mktemp -d -t SLUMCKPT.XXXXXX)"
straight_out="$(mktemp -t REPRO_STRAIGHT.XXXXXX.txt)"
resumed_out="$(mktemp -t REPRO_RESUMED.XXXXXX.txt)"
resumed_metrics_file="$(mktemp -t METRICS_RESUMED.XXXXXX.json)"
trap 'rm -rf "$metrics_file" "$fault_metrics_file" "$ckpt_dir" \
    "$straight_out" "$resumed_out" "$resumed_metrics_file"' EXIT

cargo run --release -p slum-bench --bin repro -- table1 \
    --scale 0.0005 --seed 2016 --crawl-fault-profile default \
    > "$straight_out" 2>/dev/null

cargo run --release -p slum-bench --bin repro -- table1 \
    --scale 0.0005 --seed 2016 --crawl-fault-profile default \
    --checkpoint "$ckpt_dir" --checkpoint-every 32 --kill-after-round 2 \
    >/dev/null 2>&1

ls "$ckpt_dir"/*.slumckpt >/dev/null \
    || { echo "RESUME smoke test: no checkpoint files written"; exit 1; }

cargo run --release -p slum-bench --bin repro -- table1 \
    --scale 0.0005 --seed 2016 --crawl-fault-profile default \
    --resume "$ckpt_dir" --checkpoint-every 32 \
    --metrics "$resumed_metrics_file" > "$resumed_out" 2>/dev/null

diff -u "$straight_out" "$resumed_out" \
    || { echo "RESUME smoke test: resumed table1 diverged from straight run"; exit 1; }

python3 - "$resumed_metrics_file" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    counters = json.load(f)["counters"]

if counters.get("crawl.resume.segments_restored", 0) != 2:
    sys.exit("RESUME smoke test: expected 2 restored segments, got "
             f"{counters.get('crawl.resume.segments_restored')}")
if counters.get("crawl.resume.records_restored", 0) <= 0:
    sys.exit("RESUME smoke test: no records restored from the checkpoint")
if counters.get("crawl.faults.injected", 0) <= 0:
    sys.exit("RESUME smoke test: --crawl-fault-profile default injected nothing")

print("RESUME smoke test OK: table1 identical after kill+resume, "
      f"{counters['crawl.resume.records_restored']} records restored, "
      f"{counters['crawl.faults.lost_steps']} slots lost to faults")
EOF

echo "ci.sh: all checks passed"
