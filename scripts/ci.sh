#!/usr/bin/env bash
# CI entry point: build, test, then smoke-test the observability path
# end to end (repro --metrics must emit a parseable METRICS.json with
# nonzero key counters).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q

metrics_file="$(mktemp -t METRICS.XXXXXX.json)"
trap 'rm -f "$metrics_file"' EXIT

cargo run --release -p slum-bench --bin repro -- table1 \
    --scale 0.0005 --seed 2016 --metrics "$metrics_file" >/dev/null

python3 - "$metrics_file" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    snapshot = json.load(f)

counters = snapshot["counters"]
for key in ("crawl.pages", "filter.regular_out", "scan.scans",
            "scan.cache.url_features.lookups"):
    if counters.get(key, 0) <= 0:
        sys.exit(f"METRICS smoke test: counter {key!r} is zero or missing")

if snapshot["gauges"].get("config.seed") != 2016:
    sys.exit("METRICS smoke test: config.seed gauge mismatch")

# The fault layers (scan-service and exchange-side) are opt-in: a
# fault-free run must still register their counters (dashboards rely on
# their presence) and report zero faults.
for key in ("scan.faults.injected", "scan.retries", "scan.degraded_verdicts",
            "crawl.faults.injected", "crawl.faults.lost_steps",
            "crawl.faults.outages", "crawl.faults.shutdowns",
            "crawl.resume.segments_restored"):
    if key not in counters:
        sys.exit(f"METRICS smoke test: fault counter {key!r} missing")
    if counters[key] != 0:
        sys.exit(f"METRICS smoke test: fault-free run has {key!r} = "
                 f"{counters[key]}, expected 0")

# Same convention for the streaming-pipeline bookkeeping: a barrier run
# must register the scan.pipeline.* counters at zero with the overlap
# gauge off.
for key in ("scan.pipeline.chunks", "scan.pipeline.records_streamed",
            "scan.pipeline.fault_fallback"):
    if key not in counters:
        sys.exit(f"METRICS smoke test: pipeline counter {key!r} missing")
    if counters[key] != 0:
        sys.exit(f"METRICS smoke test: barrier run has {key!r} = "
                 f"{counters[key]}, expected 0")
if snapshot["gauges"].get("scan.pipeline.overlap") != 0:
    sys.exit("METRICS smoke test: barrier run reports scan.pipeline.overlap != 0")

# The JS-VM counters are always registered (the default engine is the
# bytecode VM, so they are live here; a tree-walk run reports zeros —
# checked by the ENGINE smoke test below).
for key in ("js.vm.compiles", "js.vm.module_cache.lookups",
            "js.vm.module_cache.hits", "js.vm.instructions",
            "js.vm.budget_exhaustions"):
    if key not in counters:
        sys.exit(f"METRICS smoke test: JS-VM counter {key!r} missing")
if snapshot["gauges"].get("config.js_engine_vm") != 1:
    sys.exit("METRICS smoke test: default engine must be the bytecode VM")

print(f"METRICS smoke test OK: {len(counters)} counters, "
      f"{len(snapshot['spans'])} spans")
EOF

fault_metrics_file="$(mktemp -t METRICS_FAULT.XXXXXX.json)"
trap 'rm -f "$metrics_file" "$fault_metrics_file"' EXIT

cargo run --release -p slum-bench --bin repro -- table1 \
    --scale 0.0005 --seed 2016 --fault-profile default \
    --metrics "$fault_metrics_file" >/dev/null

python3 - "$fault_metrics_file" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    snapshot = json.load(f)

counters = snapshot["counters"]
for key in ("scan.faults.injected", "scan.retries", "scan.degraded_verdicts"):
    if counters.get(key, 0) <= 0:
        sys.exit(f"FAULT smoke test: counter {key!r} is zero or missing "
                 "under --fault-profile default")

print("FAULT smoke test OK: "
      f"{counters['scan.faults.injected']} injected, "
      f"{counters['scan.retries']} retries, "
      f"{counters['scan.degraded_verdicts']} degraded verdicts")
EOF

# Checkpoint/resume smoke test: a crawl killed between checkpoint
# rounds and resumed from disk must reproduce the uninterrupted run
# byte for byte — same table output, same counters (minus the
# crawl.resume.* bookkeeping that records the recovery itself).
ckpt_dir="$(mktemp -d -t SLUMCKPT.XXXXXX)"
straight_out="$(mktemp -t REPRO_STRAIGHT.XXXXXX.txt)"
resumed_out="$(mktemp -t REPRO_RESUMED.XXXXXX.txt)"
resumed_metrics_file="$(mktemp -t METRICS_RESUMED.XXXXXX.json)"
trap 'rm -rf "$metrics_file" "$fault_metrics_file" "$ckpt_dir" \
    "$straight_out" "$resumed_out" "$resumed_metrics_file"' EXIT

cargo run --release -p slum-bench --bin repro -- table1 \
    --scale 0.0005 --seed 2016 --crawl-fault-profile default \
    > "$straight_out" 2>/dev/null

cargo run --release -p slum-bench --bin repro -- table1 \
    --scale 0.0005 --seed 2016 --crawl-fault-profile default \
    --checkpoint "$ckpt_dir" --checkpoint-every 32 --kill-after-round 2 \
    >/dev/null 2>&1

ls "$ckpt_dir"/*.slumckpt >/dev/null \
    || { echo "RESUME smoke test: no checkpoint files written"; exit 1; }

cargo run --release -p slum-bench --bin repro -- table1 \
    --scale 0.0005 --seed 2016 --crawl-fault-profile default \
    --resume "$ckpt_dir" --checkpoint-every 32 \
    --metrics "$resumed_metrics_file" > "$resumed_out" 2>/dev/null

diff -u "$straight_out" "$resumed_out" \
    || { echo "RESUME smoke test: resumed table1 diverged from straight run"; exit 1; }

python3 - "$resumed_metrics_file" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    counters = json.load(f)["counters"]

if counters.get("crawl.resume.segments_restored", 0) != 2:
    sys.exit("RESUME smoke test: expected 2 restored segments, got "
             f"{counters.get('crawl.resume.segments_restored')}")
if counters.get("crawl.resume.records_restored", 0) <= 0:
    sys.exit("RESUME smoke test: no records restored from the checkpoint")
if counters.get("crawl.faults.injected", 0) <= 0:
    sys.exit("RESUME smoke test: --crawl-fault-profile default injected nothing")

print("RESUME smoke test OK: table1 identical after kill+resume, "
      f"{counters['crawl.resume.records_restored']} records restored, "
      f"{counters['crawl.faults.lost_steps']} slots lost to faults")
EOF

# Streaming-pipeline smoke test: the overlapped crawl→scan pipeline
# (scan workers consuming record chunks while the crawl runs) must
# export the exact same study as the phase-barrier path — byte for
# byte, including metrics-derived figures.
barrier_json="$(mktemp -t REPRO_BARRIER.XXXXXX.json)"
overlap_json="$(mktemp -t REPRO_OVERLAP.XXXXXX.json)"
overlap_metrics_file="$(mktemp -t METRICS_OVERLAP.XXXXXX.json)"
bench_dir="$(mktemp -d -t SLUMBENCH.XXXXXX)"
trap 'rm -rf "$metrics_file" "$fault_metrics_file" "$ckpt_dir" \
    "$straight_out" "$resumed_out" "$resumed_metrics_file" \
    "$barrier_json" "$overlap_json" "$overlap_metrics_file" "$bench_dir"' EXIT

cargo run --release -p slum-bench --bin repro -- json \
    --scale 0.001 --seed 2016 > "$barrier_json" 2>/dev/null

cargo run --release -p slum-bench --bin repro -- json \
    --scale 0.001 --seed 2016 --overlap --workers 8 \
    --metrics "$overlap_metrics_file" > "$overlap_json" 2>/dev/null

cmp "$barrier_json" "$overlap_json" \
    || { echo "OVERLAP smoke test: overlapped export diverged from barrier run"; exit 1; }

python3 - "$overlap_metrics_file" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    snapshot = json.load(f)

counters = snapshot["counters"]
if snapshot["gauges"].get("scan.pipeline.overlap") != 1:
    sys.exit("OVERLAP smoke test: --overlap run did not take the streaming path")
if counters.get("scan.pipeline.chunks", 0) <= 0:
    sys.exit("OVERLAP smoke test: no record chunks streamed")
if counters.get("scan.pipeline.records_streamed", 0) != counters.get("crawl.pages"):
    sys.exit("OVERLAP smoke test: streamed records != crawled pages")

print("OVERLAP smoke test OK: export byte-identical to barrier, "
      f"{counters['scan.pipeline.records_streamed']} records in "
      f"{counters['scan.pipeline.chunks']} chunks")
EOF

# Benchmark smoke test: bench-scan --quick (smallest scale only) must
# produce a BENCH_scanpipe.json carrying both the legacy flat schema
# and the per-scale scaling sections. Run from a scratch dir so the
# committed BENCH_scanpipe.json is untouched.
repro_bin="$(pwd)/target/release/repro"
(cd "$bench_dir" && "$repro_bin" bench-scan --quick --seed 2016 >/dev/null 2>&1)

python3 - "$bench_dir/BENCH_scanpipe.json" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

for key in ("benchmark", "seed", "crawl_scale", "records", "runs",
            "host", "scan_chunk", "serial_scan_threshold", "scales"):
    if key not in doc:
        sys.exit(f"BENCH smoke test: key {key!r} missing from BENCH_scanpipe.json")
if doc["benchmark"] != "scanpipe" or doc["host"].get("cpus", 0) < 1:
    sys.exit("BENCH smoke test: malformed benchmark/host fields")
if [r["workers"] for r in doc["runs"]] != [1, 2, 4, 8]:
    sys.exit("BENCH smoke test: legacy runs must cover workers 1/2/4/8")
for run in doc["runs"]:
    # Legacy rows must disclose what actually executed: on a host where
    # the serial-fallback clamp collapses multi-worker requests, four
    # byte-identical timings are honest only if flagged as such.
    for key in ("executed_workers", "serial_fallback"):
        if key not in run:
            sys.exit(f"BENCH smoke test: legacy run lacks {key!r}")
    if run["executed_workers"] > doc["host"]["cpus"]:
        sys.exit("BENCH smoke test: legacy executed_workers exceed host cpus")
    if run["workers"] > 1 and run["executed_workers"] == 1 \
            and not run["serial_fallback"]:
        sys.exit("BENCH smoke test: collapsed legacy row not flagged serial_fallback")
scale = doc["scales"][0]
for key in ("crawl_seconds", "scan_seconds", "overlap_total_seconds",
            "overlap_savings_seconds", "regular_records"):
    if key not in scale:
        sys.exit(f"BENCH smoke test: per-scale key {key!r} missing")
covered = set()
for run in scale["runs"]:
    if run["effective_workers"] > doc["host"]["cpus"]:
        sys.exit("BENCH smoke test: effective workers exceed host cpus")
    if run["seconds"] <= 0 or run["records_per_sec"] <= 0:
        sys.exit("BENCH smoke test: non-positive timing fields")
    covered.add(run["workers"])
    covered.update(run.get("covers_workers") or [])
    # A row may only repeat the serial timing when it says so.
    if run.get("duplicates_of") is not None and not run["serial_fallback"]:
        sys.exit("BENCH smoke test: duplicates_of set on a measured row")
if covered != {1, 2, 4, 8}:
    sys.exit(f"BENCH smoke test: per-scale rows cover workers {sorted(covered)}, "
             "expected 1/2/4/8")
dupes = [r for r in scale["runs"] if r.get("duplicates_of") is not None]
if len(dupes) > 1:
    sys.exit("BENCH smoke test: collapsed serial-fallback rows must fold into one")

print(f"BENCH smoke test OK: {doc['records']} records, "
      f"{len(doc['scales'])} scale(s), host cpus {doc['host']['cpus']}")
EOF

# Engine smoke test: the same seeded study under the bytecode VM and
# under the tree-walk interpreter must export byte-identical artifacts;
# the interpreter run must still register the js.vm.* counters (at
# zero).
vm_json="$(mktemp -t REPRO_VM.XXXXXX.json)"
interp_json="$(mktemp -t REPRO_INTERP.XXXXXX.json)"
interp_metrics_file="$(mktemp -t METRICS_INTERP.XXXXXX.json)"
trap 'rm -rf "$metrics_file" "$fault_metrics_file" "$ckpt_dir" \
    "$straight_out" "$resumed_out" "$resumed_metrics_file" \
    "$barrier_json" "$overlap_json" "$overlap_metrics_file" "$bench_dir" \
    "$vm_json" "$interp_json" "$interp_metrics_file"' EXIT

cargo run --release -p slum-bench --bin repro -- json \
    --scale 0.001 --seed 2016 --js-engine vm > "$vm_json" 2>/dev/null

cargo run --release -p slum-bench --bin repro -- json \
    --scale 0.001 --seed 2016 --js-engine interp --workers 4 \
    --metrics "$interp_metrics_file" > "$interp_json" 2>/dev/null

cmp "$vm_json" "$interp_json" \
    || { echo "ENGINE smoke test: vm export diverged from the interpreter's"; exit 1; }

python3 - "$interp_metrics_file" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    snapshot = json.load(f)

counters = snapshot["counters"]
for key in ("js.vm.compiles", "js.vm.module_cache.lookups",
            "js.vm.module_cache.hits", "js.vm.instructions",
            "js.vm.budget_exhaustions"):
    if key not in counters:
        sys.exit(f"ENGINE smoke test: counter {key!r} missing under --js-engine interp")
    if counters[key] != 0:
        sys.exit(f"ENGINE smoke test: tree-walk run has {key!r} = "
                 f"{counters[key]}, expected 0")
if snapshot["gauges"].get("config.js_engine_vm") != 0:
    sys.exit("ENGINE smoke test: interp run reports config.js_engine_vm != 0")

print("ENGINE smoke test OK: vm export byte-identical to the interpreter, "
      "js.vm.* registered at zero")
EOF

# JS-VM benchmark smoke test: bench-jsvm --quick must produce a
# BENCH_jsvm.json whose microbench rows cover all three engine
# configurations with sane timings, and whose warm cache actually
# out-runs the per-run-compile configurations.
(cd "$bench_dir" && "$repro_bin" bench-jsvm --quick --seed 2016 >/dev/null 2>&1)

python3 - "$bench_dir/BENCH_jsvm.json" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

for key in ("benchmark", "seed", "host", "microbench", "scales"):
    if key not in doc:
        sys.exit(f"JSVM smoke test: key {key!r} missing from BENCH_jsvm.json")
if doc["benchmark"] != "jsvm":
    sys.exit("JSVM smoke test: wrong benchmark tag")
micro = doc["microbench"]
engines = {run["engine"]: run for run in micro["engines"]}
if set(engines) != {"tree-walk", "vm-cold", "vm-warm"}:
    sys.exit(f"JSVM smoke test: engine rows {sorted(engines)} incomplete")
for run in engines.values():
    if run["seconds"] <= 0 or run["runs_per_sec"] <= 0:
        sys.exit("JSVM smoke test: non-positive timing fields")
warm = engines["vm-warm"]
if warm.get("compiles", 0) <= 0 or warm.get("module_hits", 0) <= warm["compiles"]:
    sys.exit("JSVM smoke test: warm cache did not serve repeated payloads")
if micro["warm_speedup_vs_treewalk"] <= 1.0:
    sys.exit(f"JSVM smoke test: warm cache slower than the tree-walker "
             f"({micro['warm_speedup_vs_treewalk']:.2f}x)")
for scale in doc["scales"]:
    if scale["treewalk_scan_seconds"] <= 0 or scale["vm_scan_seconds"] <= 0:
        sys.exit("JSVM smoke test: non-positive scan timings")
    if scale["js_vm"]["compiles"] <= 0:
        sys.exit("JSVM smoke test: scan phase compiled nothing under the VM")

print(f"JSVM smoke test OK: {micro['executions']} executions/engine, "
      f"warm cache {micro['warm_speedup_vs_treewalk']:.2f}x tree-walk, "
      f"{len(doc['scales'])} scan scale(s)")
EOF

# Substrate smoke test: the pluggable-substrate dispatch must run the
# same pipeline end to end over all three ecosystems, each reporting
# its own sources in the SubstrateComparison artifact, with the
# always-registered crawl.substrate.* counters tallying only the
# active substrate.
substrate_out="$(mktemp -t REPRO_SUBSTRATE.XXXXXX.txt)"
substrate_metrics_file="$(mktemp -t METRICS_SUBSTRATE.XXXXXX.json)"
golden_out="$(mktemp -t REPRO_GOLDEN.XXXXXX.txt)"
trap 'rm -rf "$metrics_file" "$fault_metrics_file" "$ckpt_dir" \
    "$straight_out" "$resumed_out" "$resumed_metrics_file" \
    "$barrier_json" "$overlap_json" "$overlap_metrics_file" "$bench_dir" \
    "$vm_json" "$interp_json" "$interp_metrics_file" \
    "$substrate_out" "$substrate_metrics_file" "$golden_out"' EXIT

for substrate in exchange adnet torrent; do
    cargo run --release -p slum-bench --bin repro -- substrates \
        --scale 0.0005 --seed 2016 --substrate "$substrate" \
        --metrics "$substrate_metrics_file" > "$substrate_out" 2>/dev/null

    python3 - "$substrate" "$substrate_out" "$substrate_metrics_file" <<'EOF'
import json
import sys

substrate = sys.argv[1]
with open(sys.argv[2]) as f:
    rendered = f.read()
with open(sys.argv[3]) as f:
    snapshot = json.load(f)

expected_sources = {
    "exchange": ["10KHits", "SendSurf", "Easyhits4u"],
    "adnet": ["AdRotor", "ClickNimbus", "PopMatrix", "BannerBloom"],
    "torrent": ["OpenBay", "SeedNest", "RssLeech"],
}[substrate]

if f"substrate: {substrate}" not in rendered:
    sys.exit(f"SUBSTRATE smoke test: render lacks 'substrate: {substrate}' line")
for source in expected_sources:
    if source not in rendered:
        sys.exit(f"SUBSTRATE smoke test: {substrate} render lacks source {source!r}")
if "overall:" not in rendered or "malicious /" not in rendered:
    sys.exit(f"SUBSTRATE smoke test: {substrate} render lacks the overall summary row")

counters = snapshot["counters"]
# Every substrate's counters are always registered; only the active
# one may be nonzero.
for name in ("exchange", "adnet", "torrent"):
    for suffix in ("pages", "sources"):
        key = f"crawl.substrate.{name}.{suffix}"
        if key not in counters:
            sys.exit(f"SUBSTRATE smoke test: counter {key!r} missing")
        if name != substrate and counters[key] != 0:
            sys.exit(f"SUBSTRATE smoke test: inactive counter {key!r} = "
                     f"{counters[key]}, expected 0")
if counters[f"crawl.substrate.{substrate}.pages"] <= 0:
    sys.exit(f"SUBSTRATE smoke test: {substrate} crawled no pages")
if counters[f"crawl.substrate.{substrate}.sources"] != len(
        {"exchange": range(9), "adnet": range(4), "torrent": range(3)}[substrate]):
    sys.exit(f"SUBSTRATE smoke test: {substrate} reports wrong source count")

print(f"SUBSTRATE smoke test OK ({substrate}): "
      f"{counters[f'crawl.substrate.{substrate}.pages']} pages over "
      f"{counters[f'crawl.substrate.{substrate}.sources']} sources")
EOF
done

# Exchange golden byte-diff: the default substrate must stay
# byte-identical to the pre-substrate pipeline at the pinned
# seed/scale (the same pin tests/exchange_golden_regression.rs holds).
cargo run --release -p slum-bench --bin repro -- \
    table1 table2 table3 table4 fig2 fig3 fig4 fig5 fig6 fig7 \
    --scale 0.0005 --seed 2016 > "$golden_out" 2>/dev/null

diff -u scripts/golden/exchange_artifacts.golden.txt "$golden_out" \
    || { echo "GOLDEN smoke test: exchange artifacts diverged from the golden pin"; exit 1; }
echo "GOLDEN smoke test OK: exchange artifacts byte-identical to the pin"

# Study-service smoke test: the resident daemon must accept two
# tenants' studies on different substrates, schedule them concurrently,
# answer a verdict query for a URL one study scanned, stream a metrics
# snapshot, and shut down cleanly — and a daemon-run study's export
# must be byte-identical to the batch path's for the same config.
serve_root="$(mktemp -d -t SLUMSERVE.XXXXXX)"
serve_log="$(mktemp -t SERVE_LOG.XXXXXX.txt)"
serve_export="$(mktemp -t SERVE_EXPORT.XXXXXX.json)"
serve_batch="$(mktemp -t SERVE_BATCH.XXXXXX.json)"
chaos_root="$(mktemp -d -t SLUMCHAOS.XXXXXX)"
chaos_log="$(mktemp -t CHAOS_LOG.XXXXXX.txt)"
chaos_export="$(mktemp -t CHAOS_EXPORT.XXXXXX.json)"
trap 'rm -rf "$metrics_file" "$fault_metrics_file" "$ckpt_dir" \
    "$straight_out" "$resumed_out" "$resumed_metrics_file" \
    "$barrier_json" "$overlap_json" "$overlap_metrics_file" "$bench_dir" \
    "$vm_json" "$interp_json" "$interp_metrics_file" \
    "$substrate_out" "$substrate_metrics_file" "$golden_out" \
    "$serve_root" "$serve_log" "$serve_export" "$serve_batch" \
    "$chaos_root" "$chaos_log" "$chaos_export"' EXIT

"$repro_bin" serve --port 0 --root "$serve_root" > "$serve_log" 2>/dev/null &
serve_pid=$!
for _ in $(seq 1 100); do
    grep -q '^SERVE_ADDR ' "$serve_log" 2>/dev/null && break
    kill -0 "$serve_pid" 2>/dev/null \
        || { echo "SERVE smoke test: daemon exited before binding"; exit 1; }
    sleep 0.1
done
serve_addr="$(awk '/^SERVE_ADDR /{print $2; exit}' "$serve_log")"
[ -n "$serve_addr" ] \
    || { echo "SERVE smoke test: daemon never printed SERVE_ADDR"; exit 1; }

python3 - "$serve_addr" "$serve_export" <<'EOF'
import json
import socket
import sys
import time

host, port = sys.argv[1].rsplit(":", 1)
sock = socket.create_connection((host, int(port)), timeout=30)
stream = sock.makefile("rw", encoding="utf-8", newline="\n")

def rpc(**request):
    stream.write(json.dumps(request) + "\n")
    stream.flush()
    response = json.loads(stream.readline())
    if not response.get("ok"):
        sys.exit(f"SERVE smoke test: {request.get('op')} failed: "
                 f"{response.get('error')}")
    return response

study_config = dict(seed=2016, crawl_scale=0.0002, domain_scale=0.03,
                    checkpoint_every=7)
# Both submissions land before either study finishes, so the scheduler
# interleaves their crawl segments.
alpha = rpc(op="submit-study", tenant="alpha", substrate="exchange",
            **study_config)["study"]
beta = rpc(op="submit-study", tenant="beta", substrate="adnet",
           **study_config)["study"]

deadline = time.time() + 120
while True:
    states = {i: rpc(op="study-status", study=i) for i in (alpha, beta)}
    if all(s["state"] == "done" for s in states.values()):
        break
    if any(s["state"] == "failed" for s in states.values()):
        sys.exit(f"SERVE smoke test: a study failed: {states}")
    if time.time() > deadline:
        sys.exit("SERVE smoke test: studies did not finish in time")
    time.sleep(0.05)

# Verdict query against a URL the exchange study scanned: the done
# status carries a guaranteed-known probe URL.
probe = states[alpha].get("sample_url")
if not probe:
    sys.exit("SERVE smoke test: done study reported no sample_url")
verdict = rpc(op="query-verdict", study=alpha, url=probe)
if verdict.get("known") is not True or verdict.get("malicious") is None:
    sys.exit(f"SERVE smoke test: probe URL {probe!r} has no verdict: {verdict}")
miss = rpc(op="query-verdict", study=alpha, url="http://never-crawled.example/")
if miss.get("known") is not False:
    sys.exit("SERVE smoke test: uncrawled URL reported as known")

# One metrics stream: both tenants namespaced, service counters live.
metrics = json.loads(rpc(op="stream-metrics")["metrics"])
counters = metrics["counters"]
for tenant in ("alpha", "beta"):
    if counters.get(f"tenant.{tenant}.crawl.pages", 0) <= 0:
        sys.exit(f"SERVE smoke test: no crawl.pages rollup for tenant {tenant}")
if counters.get("serve.studies.completed", 0) < 2:
    sys.exit("SERVE smoke test: completion counter below 2")

# Resilience counters are always registered: a clean run must export
# explicit zeros, not absent keys — an absent key would make "no
# shedding happened" indistinguishable from "shedding isn't counted".
for name in ("serve.shed.requests", "serve.shed.connections",
             "serve.tenants.poisoned", "serve.tenants.stalled",
             "ckpt.quarantined"):
    if name not in counters:
        sys.exit(f"SERVE smoke test: resilience counter {name!r} missing")
    if counters[name] != 0:
        sys.exit(f"SERVE smoke test: clean run has nonzero {name!r} = "
                 f"{counters[name]}")

# The exchange tenant's artifacts, for the batch diff below.
status = rpc(op="study-status", study=alpha, include_export=True)
export = status.get("export")
if not export:
    sys.exit("SERVE smoke test: include_export returned nothing")
with open(sys.argv[2], "w") as out:
    # `repro json` prints the document with a trailing newline.
    out.write(export + "\n")

rpc(op="shutdown")
print(f"SERVE smoke test OK: 2 concurrent studies on {sys.argv[1]}, "
      f"verdict known for {probe}, metrics streamed, clean shutdown")
EOF

wait "$serve_pid" \
    || { echo "SERVE smoke test: daemon exited non-zero"; exit 1; }

# Batch diff: the daemon-run exchange study must export byte-identical
# JSON to the plain batch path at the same config.
"$repro_bin" json --scale 0.0002 --seed 2016 --substrate exchange \
    > "$serve_batch" 2>/dev/null
cmp "$serve_export" "$serve_batch" \
    || { echo "SERVE smoke test: daemon export diverged from the batch path"; exit 1; }
echo "SERVE smoke test OK: daemon export byte-identical to the batch path"

# Chaos smoke test: the daemon, running with harsh injected storage
# faults, survives a kill -9 mid-study plus on-disk corruption of its
# newest checkpoint generation — and the recovered tenant's export is
# still byte-identical to the batch path computed above. The corrupted
# generation must show up quarantined, never silently read.
"$repro_bin" serve --port 0 --root "$chaos_root" --disk-fault-profile harsh \
    > "$chaos_log" 2>/dev/null &
chaos_pid=$!
for _ in $(seq 1 100); do
    grep -q '^SERVE_ADDR ' "$chaos_log" 2>/dev/null && break
    kill -0 "$chaos_pid" 2>/dev/null \
        || { echo "CHAOS smoke test: daemon exited before binding"; exit 1; }
    sleep 0.1
done
chaos_addr="$(awk '/^SERVE_ADDR /{print $2; exit}' "$chaos_log")"
[ -n "$chaos_addr" ] \
    || { echo "CHAOS smoke test: daemon never printed SERVE_ADDR"; exit 1; }

# Submit one tenant (same config as the batch reference) and leave the
# study in flight.
python3 - "$chaos_addr" <<'EOF'
import json
import socket
import sys

host, port = sys.argv[1].rsplit(":", 1)
sock = socket.create_connection((host, int(port)), timeout=30)
stream = sock.makefile("rw", encoding="utf-8", newline="\n")
stream.write(json.dumps(dict(op="submit-study", tenant="storm",
                             substrate="exchange", seed=2016,
                             crawl_scale=0.0002, domain_scale=0.03,
                             checkpoint_every=7)) + "\n")
stream.flush()
response = json.loads(stream.readline())
if not response.get("ok"):
    sys.exit(f"CHAOS smoke test: submit failed: {response.get('error')}")
EOF

# Wait for the first checkpoint generation to land, then kill -9 the
# daemon and flip a byte in the middle of the newest generation.
for _ in $(seq 1 200); do
    find "$chaos_root" -name 'ckpt-*.slumckpt' 2>/dev/null | grep -q . && break
    kill -0 "$chaos_pid" 2>/dev/null \
        || { echo "CHAOS smoke test: daemon died before checkpointing"; exit 1; }
    sleep 0.05
done
find "$chaos_root" -name 'ckpt-*.slumckpt' 2>/dev/null | grep -q . \
    || { echo "CHAOS smoke test: no checkpoint landed before the kill"; exit 1; }
kill -9 "$chaos_pid" 2>/dev/null || true
wait "$chaos_pid" 2>/dev/null || true

python3 - "$chaos_root" <<'EOF'
import pathlib
import sys

ckpts = sorted(pathlib.Path(sys.argv[1]).rglob("ckpt-*.slumckpt"))
if not ckpts:
    sys.exit("CHAOS smoke test: checkpoints vanished after the kill")
blob = bytearray(ckpts[-1].read_bytes())
blob[len(blob) // 2] ^= 0xFF
ckpts[-1].write_bytes(blob)
print(f"CHAOS smoke test: killed the daemon, corrupted {ckpts[-1].name}")
EOF

# Restart over the same root (faults still armed). Resubmitting the
# same (tenant, config) resumes past the quarantined generation.
: > "$chaos_log"
"$repro_bin" serve --port 0 --root "$chaos_root" --disk-fault-profile harsh \
    > "$chaos_log" 2>/dev/null &
chaos_pid=$!
for _ in $(seq 1 100); do
    grep -q '^SERVE_ADDR ' "$chaos_log" 2>/dev/null && break
    kill -0 "$chaos_pid" 2>/dev/null \
        || { echo "CHAOS smoke test: daemon did not survive the restart"; exit 1; }
    sleep 0.1
done
chaos_addr="$(awk '/^SERVE_ADDR /{print $2; exit}' "$chaos_log")"
[ -n "$chaos_addr" ] \
    || { echo "CHAOS smoke test: restarted daemon never printed SERVE_ADDR"; exit 1; }

python3 - "$chaos_addr" "$chaos_export" <<'EOF'
import json
import socket
import sys
import time

host, port = sys.argv[1].rsplit(":", 1)
sock = socket.create_connection((host, int(port)), timeout=30)
stream = sock.makefile("rw", encoding="utf-8", newline="\n")

def rpc(**request):
    stream.write(json.dumps(request) + "\n")
    stream.flush()
    response = json.loads(stream.readline())
    if not response.get("ok"):
        sys.exit(f"CHAOS smoke test: {request.get('op')} failed: "
                 f"{response.get('error')}")
    return response

config = dict(op="submit-study", tenant="storm", substrate="exchange",
              seed=2016, crawl_scale=0.0002, domain_scale=0.03,
              checkpoint_every=7)
study = rpc(**config)["study"]
deadline = time.time() + 120
while True:
    status = rpc(op="study-status", study=study)
    if status["state"] == "done":
        break
    if status["state"] != "running":
        # Injected storage faults can fail a slice; resubmitting the
        # same (tenant, config) resumes from the newest intact
        # generation — the same loop the chaos harness drains with.
        study = rpc(**config)["study"]
    if time.time() > deadline:
        sys.exit("CHAOS smoke test: study did not recover in time")
    time.sleep(0.05)

# The corruption must have left a quarantine scar, not a silent read.
metrics = json.loads(rpc(op="stream-metrics")["metrics"])
quarantined = metrics["counters"].get("ckpt.quarantined", 0)
if quarantined < 1:
    sys.exit("CHAOS smoke test: corrupted generation was never quarantined")

status = rpc(op="study-status", study=study, include_export=True)
export = status.get("export")
if not export:
    sys.exit("CHAOS smoke test: recovered study returned no export")
with open(sys.argv[2], "w") as out:
    out.write(export + "\n")

rpc(op="shutdown")
print(f"CHAOS smoke test: recovered on {sys.argv[1]}, "
      f"{quarantined} generation(s) quarantined")
EOF

wait "$chaos_pid" \
    || { echo "CHAOS smoke test: daemon exited non-zero"; exit 1; }
cmp "$chaos_export" "$serve_batch" \
    || { echo "CHAOS smoke test: recovered export diverged from the batch path"; exit 1; }
echo "CHAOS smoke test OK: kill -9 + corruption + harsh disk faults, recovered export byte-identical"

echo "ci.sh: all checks passed"
