#!/usr/bin/env bash
# CI entry point: build, test, then smoke-test the observability path
# end to end (repro --metrics must emit a parseable METRICS.json with
# nonzero key counters).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q

metrics_file="$(mktemp -t METRICS.XXXXXX.json)"
trap 'rm -f "$metrics_file"' EXIT

cargo run --release -p slum-bench --bin repro -- table1 \
    --scale 0.0005 --seed 2016 --metrics "$metrics_file" >/dev/null

python3 - "$metrics_file" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    snapshot = json.load(f)

counters = snapshot["counters"]
for key in ("crawl.pages", "filter.regular_out", "scan.scans",
            "scan.cache.url_features.lookups"):
    if counters.get(key, 0) <= 0:
        sys.exit(f"METRICS smoke test: counter {key!r} is zero or missing")

if snapshot["gauges"].get("config.seed") != 2016:
    sys.exit("METRICS smoke test: config.seed gauge mismatch")

# The fault layer is opt-in: a fault-free run must still register its
# counters (dashboards rely on their presence) and report zero faults.
for key in ("scan.faults.injected", "scan.retries", "scan.degraded_verdicts"):
    if key not in counters:
        sys.exit(f"METRICS smoke test: fault counter {key!r} missing")
    if counters[key] != 0:
        sys.exit(f"METRICS smoke test: fault-free run has {key!r} = "
                 f"{counters[key]}, expected 0")

print(f"METRICS smoke test OK: {len(counters)} counters, "
      f"{len(snapshot['spans'])} spans")
EOF

fault_metrics_file="$(mktemp -t METRICS_FAULT.XXXXXX.json)"
trap 'rm -f "$metrics_file" "$fault_metrics_file"' EXIT

cargo run --release -p slum-bench --bin repro -- table1 \
    --scale 0.0005 --seed 2016 --fault-profile default \
    --metrics "$fault_metrics_file" >/dev/null

python3 - "$fault_metrics_file" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    snapshot = json.load(f)

counters = snapshot["counters"]
for key in ("scan.faults.injected", "scan.retries", "scan.degraded_verdicts"):
    if counters.get(key, 0) <= 0:
        sys.exit(f"FAULT smoke test: counter {key!r} is zero or missing "
                 "under --fault-profile default")

print("FAULT smoke test OK: "
      f"{counters['scan.faults.injected']} injected, "
      f"{counters['scan.retries']} retries, "
      f"{counters['scan.degraded_verdicts']} degraded verdicts")
EOF

echo "ci.sh: all checks passed"
