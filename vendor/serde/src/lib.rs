//! Offline shim for the `serde` API subset this workspace uses.
//!
//! Instead of serde's visitor-based data model, types convert to and
//! from a single [`Content`] tree (null / bool / number / string / seq /
//! map). The only serializer in the workspace is the sibling
//! `serde_json` shim, which renders `Content` as JSON, so the simpler
//! model is fully sufficient — and the `#[derive(Serialize,
//! Deserialize)]` macros (re-exported from `serde_derive`) generate the
//! conversions with serde-compatible external enum tagging and
//! `#[serde(rename = "...")]` support.

use std::collections::{BTreeMap, HashMap};

pub use serde_derive::{Deserialize, Serialize};

/// A serialized value: the whole data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Content>),
    /// Ordered key → value map (order preserved for stable output).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// The map entries, when this is a map.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The elements, when this is a sequence.
    pub fn as_array(&self) -> Option<&Vec<Content>> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string slice, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, when losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Content::U64(v) => Some(v),
            Content::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            _ => None,
        }
    }

    /// The value as an `i64`, when losslessly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Content::I64(v) => Some(v),
            Content::U64(v) if v <= i64::MAX as u64 => Some(v as i64),
            Content::F64(f) if f.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&f) => {
                Some(f as i64)
            }
            _ => None,
        }
    }

    /// The value as an `f64`, for any numeric content.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Content::F64(v) => Some(v),
            Content::U64(v) => Some(v as f64),
            Content::I64(v) => Some(v as f64),
            _ => None,
        }
    }

    /// The boolean, when this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Content::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// True for `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Content::Null)
    }

    /// Map lookup by key (linear; maps here are small).
    pub fn get(&self, key: &str) -> Option<&Content> {
        self.as_map().and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

static NULL_CONTENT: Content = Content::Null;

impl std::ops::Index<&str> for Content {
    type Output = Content;

    /// `value["key"]` — `Null` for missing keys / non-maps, like
    /// `serde_json::Value`.
    fn index(&self, key: &str) -> &Content {
        self.get(key).unwrap_or(&NULL_CONTENT)
    }
}

impl std::ops::Index<usize> for Content {
    type Output = Content;

    fn index(&self, idx: usize) -> &Content {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL_CONTENT)
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    /// Human-readable cause.
    pub msg: String,
}

impl DeError {
    /// Builds an error from any displayable cause.
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        DeError { msg: msg.to_string() }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Serialization into the [`Content`] tree.
pub trait Serialize {
    /// Converts `self` to content.
    fn to_content(&self) -> Content;
}

/// Deserialization from the [`Content`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from content.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] on shape or type mismatch.
    fn from_content(content: &Content) -> Result<Self, DeError>;

    /// Value to use when a struct field is absent from the serialized
    /// map. Defaults to an error; `Option<T>` overrides this to `None`.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] for types that require the field.
    fn from_missing(field: &str) -> Result<Self, DeError> {
        Err(DeError::custom(format!("missing field `{field}`")))
    }
}

/// Derive-macro helper: looks up `name` in a struct map and
/// deserializes it, honouring `from_missing` for absent fields.
///
/// # Errors
///
/// Propagates the field's deserialization error.
pub fn de_field<T: Deserialize>(map: &[(String, Content)], name: &str) -> Result<T, DeError> {
    match map.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_content(v)
            .map_err(|e| DeError::custom(format!("field `{name}`: {}", e.msg))),
        None => T::from_missing(name),
    }
}

/// Derive-macro helper for `#[serde(default)]` / `#[serde(default =
/// "path")]` fields: looks up `name` in a struct map and deserializes
/// it, calling `default` instead of `from_missing` when absent.
///
/// # Errors
///
/// Propagates the field's deserialization error when present.
pub fn de_field_or<T: Deserialize>(
    map: &[(String, Content)],
    name: &str,
    default: impl FnOnce() -> T,
) -> Result<T, DeError> {
    match map.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_content(v)
            .map_err(|e| DeError::custom(format!("field `{name}`: {}", e.msg))),
        None => Ok(default()),
    }
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        Ok(content.clone())
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        content.as_bool().ok_or_else(|| DeError::custom("expected bool"))
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }

        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let v = content
                    .as_u64()
                    .ok_or_else(|| DeError::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(v)
                    .map_err(|_| DeError::custom(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v < 0 { Content::I64(v) } else { Content::U64(v as u64) }
            }
        }

        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let v = content
                    .as_i64()
                    .ok_or_else(|| DeError::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(v)
                    .map_err(|_| DeError::custom(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::F64(*self as f64)
            }
        }

        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                content
                    .as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| DeError::custom(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        content
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    /// Leaks the parsed string to satisfy the `'static` lifetime. Only
    /// used for small calibration structs with `&'static str` fields;
    /// do not deserialize such types in a loop.
    fn from_content(content: &Content) -> Result<Self, DeError> {
        content
            .as_str()
            .map(|s| &*Box::leak(s.to_owned().into_boxed_str()))
            .ok_or_else(|| DeError::custom("expected string"))
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let s = content.as_str().ok_or_else(|| DeError::custom("expected char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected single-char string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        T::from_content(content).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }

    fn from_missing(_field: &str) -> Result<Self, DeError> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        content
            .as_array()
            .ok_or_else(|| DeError::custom("expected array"))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![self.0.to_content(), self.1.to_content()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let seq = content.as_array().ok_or_else(|| DeError::custom("expected 2-tuple"))?;
        if seq.len() != 2 {
            return Err(DeError::custom("expected 2-tuple"));
        }
        Ok((A::from_content(&seq[0])?, B::from_content(&seq[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![self.0.to_content(), self.1.to_content(), self.2.to_content()])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let seq = content.as_array().ok_or_else(|| DeError::custom("expected 3-tuple"))?;
        if seq.len() != 3 {
            return Err(DeError::custom("expected 3-tuple"));
        }
        Ok((A::from_content(&seq[0])?, B::from_content(&seq[1])?, C::from_content(&seq[2])?))
    }
}

impl<V: Serialize, S> Serialize for HashMap<String, V, S> {
    fn to_content(&self) -> Content {
        // Sort keys for stable, diff-able output.
        let mut entries: Vec<(String, Content)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_content())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize for HashMap<String, V, S> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        content
            .as_map()
            .ok_or_else(|| DeError::custom("expected map"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_content(&self) -> Content {
        Content::Map(self.iter().map(|(k, v)| (k.clone(), v.to_content())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        content
            .as_map()
            .ok_or_else(|| DeError::custom("expected map"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_round_trip_and_missing() {
        assert_eq!(Some(3u32).to_content(), Content::U64(3));
        assert_eq!(Option::<u32>::from_content(&Content::Null), Ok(None));
        assert_eq!(Option::<u32>::from_missing("x"), Ok(None));
        assert!(u32::from_missing("x").is_err());
    }

    #[test]
    fn numeric_cross_width_round_trip() {
        let c = 300u64.to_content();
        assert_eq!(u64::from_content(&c), Ok(300));
        assert!(u8::from_content(&c).is_err());
        assert_eq!(i64::from_content(&(-3i64).to_content()), Ok(-3));
        assert_eq!(f64::from_content(&Content::U64(2)), Ok(2.0));
    }

    #[test]
    fn map_round_trip_sorts_keys() {
        let mut m = HashMap::new();
        m.insert("b".to_string(), 2u64);
        m.insert("a".to_string(), 1u64);
        let c = m.to_content();
        assert_eq!(
            c,
            Content::Map(vec![
                ("a".into(), Content::U64(1)),
                ("b".into(), Content::U64(2))
            ])
        );
        let back: HashMap<String, u64> = Deserialize::from_content(&c).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn index_into_content() {
        let c = Content::Map(vec![(
            "rows".into(),
            Content::Seq(vec![Content::U64(1), Content::U64(2)]),
        )]);
        assert_eq!(c["rows"].as_array().map(Vec::len), Some(2));
        assert_eq!(c["rows"][1].as_u64(), Some(2));
        assert!(c["absent"].is_null());
    }
}
