//! Offline shim for serde's derive macros, built directly on
//! `proc_macro` (no syn/quote available offline).
//!
//! Supports the shapes this workspace actually derives:
//! named-field structs (with optional lifetime/type generics),
//! tuple structs, unit structs, and enums whose variants are unit,
//! tuple (any arity), or named-field — plus `#[serde(rename = "...")]`
//! on fields. Codegen targets the vendored `serde` crate's
//! `Content`-tree model and mirrors serde's external enum tagging, so
//! the JSON written by the sibling `serde_json` shim looks like what
//! upstream serde would produce.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed struct/variant field.
struct Field {
    rust_name: String,
    json_name: String,
    /// `#[serde(default)]` / `#[serde(default = "path")]`: expression
    /// (a fn path) producing the value for an absent field, if any.
    default: Option<String>,
}

/// Field-level `#[serde(...)]` attribute values.
#[derive(Default)]
struct FieldAttrs {
    rename: Option<String>,
    default: Option<String>,
}

/// One parsed enum variant.
struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

/// A generic parameter (lifetime or type).
enum GenericParam {
    Lifetime(String),
    Type(String),
}

struct Target {
    name: String,
    generics: Vec<GenericParam>,
    data: Data,
}

enum Data {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let target = parse_target(input);
    gen_serialize(&target).parse().expect("serde_derive: generated Serialize impl must parse")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let target = parse_target(input);
    gen_deserialize(&target).parse().expect("serde_derive: generated Deserialize impl must parse")
}

// ---------------------------------------------------------------- parsing

fn parse_target(input: TokenStream) -> Target {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let kind = expect_any_ident(&tokens, &mut i);
    let name = expect_any_ident(&tokens, &mut i);
    let generics = parse_generics(&tokens, &mut i);

    let data = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::NamedStruct(parse_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::TupleStruct(count_tuple_fields(g.stream()))
            }
            _ => Data::UnitStruct,
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g.stream()))
            }
            _ => panic!("serde_derive: enum `{name}` has no body"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };

    Target { name, generics, data }
}

/// Skips `#[...]` attribute groups, collecting any `#[serde(...)]`
/// field attributes (`rename = "x"`, `default`, `default = "path"`)
/// encountered.
fn take_attributes(tokens: &[TokenTree], i: &mut usize) -> FieldAttrs {
    let mut attrs = FieldAttrs::default();
    loop {
        match (tokens.get(*i), tokens.get(*i + 1)) {
            (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                parse_serde_attrs(g.stream(), &mut attrs);
                *i += 2;
            }
            _ => return attrs,
        }
    }
}

fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    let _ = take_attributes(tokens, i);
}

/// Extracts supported keys from a `serde(...)` attribute body into `attrs`.
///
/// Recognizes `rename = "..."`, bare `default` (→ `Default::default`),
/// and `default = "path"` (→ the named fn, resolved at the derive site
/// like upstream serde).
fn parse_serde_attrs(attr: TokenStream, attrs: &mut FieldAttrs) {
    let tokens: Vec<TokenTree> = attr.into_iter().collect();
    let (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args))) =
        (tokens.first(), tokens.get(1))
    else {
        return;
    };
    if name.to_string() != "serde" {
        return;
    }
    let inner: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut j = 0;
    while j < inner.len() {
        if let TokenTree::Ident(key) = &inner[j] {
            let value = match (inner.get(j + 1), inner.get(j + 2)) {
                (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit)))
                    if eq.as_char() == '=' =>
                {
                    Some(unquote(&lit.to_string()))
                }
                _ => None,
            };
            match key.to_string().as_str() {
                "rename" => {
                    if let Some(v) = value {
                        attrs.rename = Some(v);
                    }
                }
                "default" => {
                    attrs.default =
                        Some(value.unwrap_or_else(|| {
                            "::std::default::Default::default".to_string()
                        }));
                }
                _ => {}
            }
        }
        j += 1;
    }
}

fn unquote(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

fn expect_any_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde_derive: expected identifier, found {other:?}"),
    }
}

/// Parses `<...>` generics into params; leaves `i` past the closing `>`.
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Vec<GenericParam> {
    match tokens.get(*i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => return Vec::new(),
    }
    *i += 1;
    let mut depth = 1usize;
    let mut params = Vec::new();
    let mut current = String::new();
    while depth > 0 {
        let tok = tokens
            .get(*i)
            .unwrap_or_else(|| panic!("serde_derive: unclosed generics"));
        *i += 1;
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                ',' if depth == 1 => {
                    push_param(&mut params, &mut current);
                    continue;
                }
                _ => {}
            }
        }
        current.push_str(&tok.to_string());
    }
    push_param(&mut params, &mut current);
    params
}

fn push_param(params: &mut Vec<GenericParam>, current: &mut String) {
    let text = std::mem::take(current);
    // Strip bounds: keep only the name before any `:`.
    let name = text.split(':').next().unwrap_or("").trim().to_string();
    if name.is_empty() {
        return;
    }
    if let Some(stripped) = name.strip_prefix('\'') {
        params.push(GenericParam::Lifetime(format!("'{stripped}")));
    } else {
        params.push(GenericParam::Type(name));
    }
}

/// Parses named fields from a brace-group body.
fn parse_fields(body: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        let attrs = take_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        let rust_name = expect_any_ident(&tokens, &mut i);
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field `{rust_name}`, got {other:?}"),
        }
        skip_type(&tokens, &mut i);
        // Optional trailing comma.
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        let json_name = attrs.rename.unwrap_or_else(|| rust_name.clone());
        fields.push(Field { rust_name, json_name, default: attrs.default });
    }
    fields
}

/// Advances past one type expression (until a top-level `,`).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0usize;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut i = 0;
    let mut count = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        skip_type(&tokens, &mut i);
        count += 1;
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_any_ident(&tokens, &mut i);
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Named(parse_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------------- codegen

/// `impl<'a, T: Bound>` and `Name<'a, T>` strings for the target.
fn generics_strings(target: &Target, bound: &str) -> (String, String) {
    if target.generics.is_empty() {
        return (String::new(), String::new());
    }
    let mut impl_params = Vec::new();
    let mut ty_params = Vec::new();
    for param in &target.generics {
        match param {
            GenericParam::Lifetime(lt) => {
                impl_params.push(lt.clone());
                ty_params.push(lt.clone());
            }
            GenericParam::Type(name) => {
                impl_params.push(format!("{name}: {bound}"));
                ty_params.push(name.clone());
            }
        }
    }
    (format!("<{}>", impl_params.join(", ")), format!("<{}>", ty_params.join(", ")))
}

fn gen_serialize(target: &Target) -> String {
    let name = &target.name;
    let (impl_generics, ty_generics) = generics_strings(target, "::serde::Serialize");
    let body = match &target.data {
        Data::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(String::from({:?}), ::serde::Serialize::to_content(&self.{})),",
                        f.json_name, f.rust_name
                    )
                })
                .collect();
            format!("::serde::Content::Map(vec![\n{}\n])", entries.join("\n"))
        }
        Data::TupleStruct(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
        Data::TupleStruct(n) => {
            let items: Vec<String> =
                (0..*n).map(|k| format!("::serde::Serialize::to_content(&self.{k}),")).collect();
            format!("::serde::Content::Seq(vec![\n{}\n])", items.join("\n"))
        }
        Data::UnitStruct => "::serde::Content::Null".to_string(),
        Data::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vn} => ::serde::Content::Str(String::from({vn:?})),"
                        ),
                        VariantShape::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Content::Map(vec![(String::from({vn:?}), \
                             ::serde::Serialize::to_content(f0))]),"
                        ),
                        VariantShape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|k| format!("::serde::Serialize::to_content(f{k}),"))
                                .collect();
                            format!(
                                "{name}::{vn}({binds}) => ::serde::Content::Map(vec![(String::from({vn:?}), \
                                 ::serde::Content::Seq(vec![{items}]))]),",
                                binds = binds.join(", "),
                                items = items.join(" ")
                            )
                        }
                        VariantShape::Named(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.rust_name.clone()).collect();
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(String::from({:?}), ::serde::Serialize::to_content({})),",
                                        f.json_name, f.rust_name
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Content::Map(vec![(String::from({vn:?}), \
                                 ::serde::Content::Map(vec![{entries}]))]),",
                                binds = binds.join(", "),
                                entries = entries.join(" ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{\n{}\n}}", arms.join("\n"))
        }
    };
    format!(
        "impl{impl_generics} ::serde::Serialize for {name}{ty_generics} {{\n\
         fn to_content(&self) -> ::serde::Content {{\n{body}\n}}\n}}"
    )
}

/// One `field: ::serde::de_field*(map, ...)?,` initializer, honouring
/// the field's `#[serde(default)]` spec.
fn field_init(f: &Field, map_var: &str) -> String {
    match &f.default {
        Some(expr) => format!(
            "{}: ::serde::de_field_or({map_var}, {:?}, {expr})?,",
            f.rust_name, f.json_name
        ),
        None => format!("{}: ::serde::de_field({map_var}, {:?})?,", f.rust_name, f.json_name),
    }
}

fn gen_deserialize(target: &Target) -> String {
    let name = &target.name;
    let (impl_generics, ty_generics) = generics_strings(target, "::serde::Deserialize");
    let body = match &target.data {
        Data::NamedStruct(fields) => {
            let inits: Vec<String> = fields.iter().map(|f| field_init(f, "__m")).collect();
            format!(
                "let __m = __c.as_map().ok_or_else(|| \
                 ::serde::DeError::custom(\"expected map for {name}\"))?;\n\
                 Ok({name} {{\n{}\n}})",
                inits.join("\n")
            )
        }
        Data::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_content(__c)?))")
        }
        Data::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_content(&__seq[{k}])?,"))
                .collect();
            format!(
                "let __seq = __c.as_array().ok_or_else(|| \
                 ::serde::DeError::custom(\"expected sequence for {name}\"))?;\n\
                 if __seq.len() != {n} {{ return Err(::serde::DeError::custom(\
                 \"wrong tuple arity for {name}\")); }}\n\
                 Ok({name}(\n{}\n))",
                items.join("\n")
            )
        }
        Data::UnitStruct => format!("Ok({name})"),
        Data::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| format!("{vn:?} => Ok({name}::{vn}),", vn = v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => None,
                        VariantShape::Tuple(1) => Some(format!(
                            "{vn:?} => Ok({name}::{vn}(::serde::Deserialize::from_content(__v)?)),"
                        )),
                        VariantShape::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|k| {
                                    format!("::serde::Deserialize::from_content(&__seq[{k}])?,")
                                })
                                .collect();
                            Some(format!(
                                "{vn:?} => {{\n\
                                 let __seq = __v.as_array().ok_or_else(|| \
                                 ::serde::DeError::custom(\"expected sequence for {name}::{vn}\"))?;\n\
                                 if __seq.len() != {n} {{ return Err(::serde::DeError::custom(\
                                 \"wrong arity for {name}::{vn}\")); }}\n\
                                 Ok({name}::{vn}({items}))\n}}",
                                items = items.join(" ")
                            ))
                        }
                        VariantShape::Named(fields) => {
                            let inits: Vec<String> =
                                fields.iter().map(|f| field_init(f, "__vm")).collect();
                            Some(format!(
                                "{vn:?} => {{\n\
                                 let __vm = __v.as_map().ok_or_else(|| \
                                 ::serde::DeError::custom(\"expected map for {name}::{vn}\"))?;\n\
                                 Ok({name}::{vn} {{ {inits} }})\n}}",
                                inits = inits.join(" ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __c {{\n\
                 ::serde::Content::Str(__s) => match __s.as_str() {{\n{unit}\n\
                 __other => Err(::serde::DeError::custom(format!(\
                 \"unknown {name} variant `{{__other}}`\"))),\n}},\n\
                 ::serde::Content::Map(__m) if __m.len() == 1 => {{\n\
                 let (__k, __v) = &__m[0];\n\
                 match __k.as_str() {{\n{data}\n\
                 __other => Err(::serde::DeError::custom(format!(\
                 \"unknown {name} variant `{{__other}}`\"))),\n}}\n}},\n\
                 _ => Err(::serde::DeError::custom(\"expected {name} variant\")),\n}}",
                unit = unit_arms.join("\n"),
                data = data_arms.join("\n")
            )
        }
    };
    format!(
        "impl{impl_generics} ::serde::Deserialize for {name}{ty_generics} {{\n\
         fn from_content(__c: &::serde::Content) -> Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}"
    )
}
