//! The [`Strategy`] trait, combinators, and the regex-string sampler.

use crate::TestRng;
use rand::distributions::uniform::SampleUniform;
use rand::Rng;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { strategy: self, f }
    }

    /// Erases the strategy type (needed to mix arms in `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.strategy.sample(rng))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// Uniformly picks one member strategy per sample (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `arms`; must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.arms.len());
        self.arms[idx].sample(rng)
    }
}

impl<T> Strategy for std::ops::Range<T>
where
    T: SampleUniform + PartialOrd + Copy,
{
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// String literals are regex strategies, as in upstream proptest.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let ast = RegexNode::parse(self);
        let mut out = String::new();
        ast.emit(rng, &mut out);
        out
    }
}

// ----------------------------------------------------- regex sampling

/// Unbounded repetitions (`*`, `+`, `{n,}`) are capped here.
const UNBOUNDED_CAP: usize = 8;

/// Parsed regex: alternation over sequences of quantified atoms.
enum RegexNode {
    /// `a|b|c` — one alternative is sampled uniformly.
    Alt(Vec<Vec<(Atom, Quant)>>),
}

enum Atom {
    /// A fixed character.
    Lit(char),
    /// `.` — any printable ASCII character.
    Any,
    /// `[...]` — sampled from the pre-expanded member set.
    Class(Vec<char>),
    /// `(...)` — re-sampled on every repetition.
    Group(RegexNode),
}

struct Quant {
    min: usize,
    max: usize,
}

impl RegexNode {
    fn parse(pattern: &str) -> RegexNode {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pos = 0;
        let node = parse_alt(&chars, &mut pos);
        assert!(
            pos == chars.len(),
            "proptest shim: unsupported regex `{pattern}` (stopped at char {pos})"
        );
        node
    }

    fn emit(&self, rng: &mut TestRng, out: &mut String) {
        let RegexNode::Alt(alternatives) = self;
        let seq = &alternatives[rng.gen_range(0..alternatives.len())];
        for (atom, quant) in seq {
            let reps = rng.gen_range(quant.min..=quant.max);
            for _ in 0..reps {
                atom.emit(rng, out);
            }
        }
    }
}

impl Atom {
    fn emit(&self, rng: &mut TestRng, out: &mut String) {
        match self {
            Atom::Lit(c) => out.push(*c),
            Atom::Any => out.push(char::from(rng.gen_range(0x20u8..=0x7e))),
            Atom::Class(members) => out.push(members[rng.gen_range(0..members.len())]),
            Atom::Group(node) => node.emit(rng, out),
        }
    }
}

fn parse_alt(chars: &[char], pos: &mut usize) -> RegexNode {
    let mut alternatives = vec![parse_seq(chars, pos)];
    while chars.get(*pos) == Some(&'|') {
        *pos += 1;
        alternatives.push(parse_seq(chars, pos));
    }
    RegexNode::Alt(alternatives)
}

fn parse_seq(chars: &[char], pos: &mut usize) -> Vec<(Atom, Quant)> {
    let mut seq = Vec::new();
    while let Some(&c) = chars.get(*pos) {
        let atom = match c {
            '|' | ')' => break,
            '(' => {
                *pos += 1;
                let inner = parse_alt(chars, pos);
                assert!(chars.get(*pos) == Some(&')'), "proptest shim: unclosed group");
                *pos += 1;
                Atom::Group(inner)
            }
            '[' => {
                *pos += 1;
                Atom::Class(parse_class(chars, pos))
            }
            '\\' => {
                *pos += 1;
                let escaped = chars[*pos];
                *pos += 1;
                Atom::Lit(escaped)
            }
            '.' => {
                *pos += 1;
                Atom::Any
            }
            other => {
                *pos += 1;
                Atom::Lit(other)
            }
        };
        let quant = parse_quant(chars, pos);
        seq.push((atom, quant));
    }
    seq
}

/// Parses a `[...]` body (after the `[`), expanding ranges and applying
/// negation against printable ASCII.
fn parse_class(chars: &[char], pos: &mut usize) -> Vec<char> {
    let negated = chars.get(*pos) == Some(&'^');
    if negated {
        *pos += 1;
    }
    let mut members = Vec::new();
    while let Some(&c) = chars.get(*pos) {
        if c == ']' {
            *pos += 1;
            if negated {
                let excluded: std::collections::HashSet<char> = members.into_iter().collect();
                let complement: Vec<char> =
                    (0x20u8..=0x7e).map(char::from).filter(|c| !excluded.contains(c)).collect();
                assert!(!complement.is_empty(), "proptest shim: negated class excludes everything");
                return complement;
            }
            assert!(!members.is_empty(), "proptest shim: empty character class");
            return members;
        }
        let low = if c == '\\' {
            *pos += 1;
            let escaped = chars[*pos];
            *pos += 1;
            escaped
        } else {
            *pos += 1;
            c
        };
        // `a-z` is a range unless the `-` is the final char of the class.
        if chars.get(*pos) == Some(&'-') && chars.get(*pos + 1).is_some_and(|&n| n != ']') {
            *pos += 1;
            let high = if chars[*pos] == '\\' {
                *pos += 1;
                let escaped = chars[*pos];
                *pos += 1;
                escaped
            } else {
                let h = chars[*pos];
                *pos += 1;
                h
            };
            assert!(low <= high, "proptest shim: inverted class range");
            members.extend(low..=high);
        } else {
            members.push(low);
        }
    }
    panic!("proptest shim: unterminated character class");
}

fn parse_quant(chars: &[char], pos: &mut usize) -> Quant {
    match chars.get(*pos) {
        Some('?') => {
            *pos += 1;
            Quant { min: 0, max: 1 }
        }
        Some('*') => {
            *pos += 1;
            Quant { min: 0, max: UNBOUNDED_CAP }
        }
        Some('+') => {
            *pos += 1;
            Quant { min: 1, max: UNBOUNDED_CAP }
        }
        Some('{') => {
            *pos += 1;
            let min = parse_number(chars, pos);
            let max = match chars.get(*pos) {
                Some(',') => {
                    *pos += 1;
                    if chars.get(*pos) == Some(&'}') {
                        min.max(1) * 2 + UNBOUNDED_CAP
                    } else {
                        parse_number(chars, pos)
                    }
                }
                _ => min,
            };
            assert!(chars.get(*pos) == Some(&'}'), "proptest shim: unclosed quantifier");
            *pos += 1;
            Quant { min, max }
        }
        _ => Quant { min: 1, max: 1 },
    }
}

fn parse_number(chars: &[char], pos: &mut usize) -> usize {
    let start = *pos;
    let mut value = 0usize;
    while let Some(d) = chars.get(*pos).and_then(|c| c.to_digit(10)) {
        value = value * 10 + d as usize;
        *pos += 1;
    }
    assert!(*pos > start, "proptest shim: expected number in quantifier");
    value
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_rng;

    #[test]
    fn samples_grouped_repetition_pattern() {
        let mut rng = test_rng("grouped");
        for _ in 0..100 {
            let host: String =
                Strategy::sample(&"[a-z][a-z0-9-]{0,20}(\\.[a-z][a-z0-9-]{1,10}){1,3}", &mut rng);
            let labels: Vec<&str> = host.split('.').collect();
            assert!((2..=4).contains(&labels.len()), "bad host {host}");
            for label in labels {
                assert!(!label.is_empty());
            }
        }
    }

    #[test]
    fn optional_group_sometimes_empty() {
        let mut rng = test_rng("optional");
        let samples: Vec<String> =
            (0..60).map(|_| Strategy::sample(&"(abc)?", &mut rng)).collect();
        assert!(samples.iter().any(String::is_empty));
        assert!(samples.iter().any(|s| s == "abc"));
        assert!(samples.iter().all(|s| s.is_empty() || s == "abc"));
    }

    #[test]
    fn space_to_tilde_range_covers_printable_ascii() {
        let mut rng = test_rng("printable");
        for _ in 0..100 {
            let s: String = Strategy::sample(&"[ -~]{1,60}", &mut rng);
            assert!((1..=60).contains(&s.len()));
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }
}
