//! Offline shim for the `proptest` API subset this workspace uses.
//!
//! Random-sampling strategies (no shrinking): integer/float ranges,
//! `any::<T>()`, regex-string strategies via a built-in pattern
//! sampler, `collection::vec`, tuples, `prop_map`, `prop_oneof!`, and
//! the `proptest!` / `prop_assert*` / `prop_assume!` macros. Each test
//! function gets a deterministic RNG seeded from its own name, so
//! failures reproduce run-to-run.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod strategy;

pub use strategy::{BoxedStrategy, Just, Map, Strategy, Union};

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic RNG for one property, seeded from the test name.
pub fn test_rng(test_name: &str) -> TestRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(hash)
}

/// Strategy for "anything of type `T`" — see [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()`: uniform samples over all of `T`.
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_any {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen()
            }
        }
    )*};
}

impl_any!(bool, u8, u16, u32, u64, usize, i32, i64);

/// `vec`-building strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy producing vectors of `element` samples with a length
    /// drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// Vectors of `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a proptest file typically imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Any,
        ProptestConfig,
    };
}

// ---------------------------------------------------------------- macros

/// Defines property-test functions. Each `arg in strategy` binding is
/// sampled per case; the body runs once per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_rng(stringify!($name));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    #[allow(unused_mut)]
                    let mut __one_case = move || { $body };
                    __one_case();
                }
            }
        )*
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Uniformly picks one of several same-valued strategies per sample.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::Strategy::boxed($s)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(n in 3u64..17, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_and_tuple_strategies(
            v in collection::vec(0u8..5, 2..6),
            pair in (0u8..3, 10u8..13),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|x| *x < 5));
            prop_assert!(pair.0 < 3 && (10..13).contains(&pair.1));
        }

        #[test]
        fn regex_strings_match_shape(host in "[a-z]{2,5}\\.(com|net)", any_s in ".{0,10}") {
            let (stem, tld) = host.split_once('.').expect("dot required");
            prop_assert!((2..=5).contains(&stem.len()));
            prop_assert!(stem.chars().all(|c| c.is_ascii_lowercase()));
            prop_assert!(tld == "com" || tld == "net");
            prop_assert!(any_s.len() <= 10);
            prop_assert!(any_s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        /// prop_map and prop_oneof compose.
        #[test]
        fn mapped_union(v in prop_oneof![
            (0u8..4).prop_map(|x| x as u64),
            (100u64..104).prop_map(|x| x),
        ]) {
            prop_assert!(v < 4 || (100..104).contains(&v));
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::test_rng("some_test");
        let mut b = crate::test_rng("some_test");
        let s: String = crate::Strategy::sample(&"[a-z]{8}", &mut a);
        let t: String = crate::Strategy::sample(&"[a-z]{8}", &mut b);
        assert_eq!(s, t);
    }

    #[test]
    fn negated_class_and_literal_dash() {
        let mut rng = crate::test_rng("negated");
        for _ in 0..50 {
            let s: String = crate::Strategy::sample(&"[^\"<>&]{1,20}", &mut rng);
            assert!(!s.contains(['"', '<', '>', '&']));
            let d: String = crate::Strategy::sample(&"[a-z0-9:;% -]{1,10}", &mut rng);
            assert!(d.chars().all(|c| c.is_ascii_lowercase()
                || c.is_ascii_digit()
                || ":;% -".contains(c)));
        }
    }
}
