//! Offline shim for the `criterion` API subset this workspace uses:
//! `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! bench_function, finish}`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros. Measures wall-clock
//! medians and prints one line per benchmark — no plots, no stats
//! machinery, but the timings are real and comparable within a run.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size: 20 }
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark: `routine` receives a [`Bencher`] and calls
    /// [`Bencher::iter`] with the code under test.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        mut routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut bencher = Bencher { sample_size: self.sample_size, result: None };
        routine(&mut bencher);
        match bencher.result {
            Some(m) => println!(
                "{}/{}: median {} (mean {}, {} samples x {} iters)",
                self.name,
                id,
                format_duration(m.median),
                format_duration(m.mean),
                self.sample_size,
                m.iters_per_sample,
            ),
            None => println!("{}/{}: no measurement (Bencher::iter never called)", self.name, id),
        }
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Measurement summary for one benchmark.
#[derive(Debug, Clone, Copy)]
struct Measurement {
    median: Duration,
    mean: Duration,
    iters_per_sample: u64,
}

/// Times closures handed to it by a benchmark routine.
pub struct Bencher {
    sample_size: usize,
    result: Option<Measurement>,
}

impl Bencher {
    /// Measures `routine`, recording per-iteration wall-clock times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up caches and lazy statics.
        for _ in 0..2 {
            black_box(routine());
        }
        // Calibrate iterations per sample so one sample takes ~2 ms,
        // keeping fast benchmarks above timer resolution.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (2_000_000 / once.as_nanos().max(1)).clamp(1, 100_000) as u64;

        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            samples.push(t.elapsed() / u32::try_from(iters).unwrap_or(u32::MAX));
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let total: Duration = samples.iter().sum();
        let mean = total / u32::try_from(samples.len()).unwrap_or(1);
        self.result = Some(Measurement { median, mean, iters_per_sample: iters });
    }
}

/// Renders a duration with a unit matched to its magnitude.
fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} us", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Bundles benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_a_measurement() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("spin", |b| {
            b.iter(|| black_box((0..100u64).sum::<u64>()))
        });
        group.finish();
    }

    #[test]
    fn duration_formatting_picks_units() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(format_duration(Duration::from_micros(12)), "12.00 us");
        assert_eq!(format_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.00 s");
    }
}
