//! Offline shim for the `parking_lot` API subset this workspace uses:
//! `Mutex` and `RwLock` whose lock methods return guards directly
//! (no `Result`, no poisoning), layered over `std::sync`.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual-exclusion lock; `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates the lock.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock. Poison from a panicked holder is ignored,
    /// matching parking_lot semantics.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock; `read()`/`write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates the lock.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Mutex::new(0u32);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
        assert_eq!(m.into_inner(), 5);
    }

    #[test]
    fn rwlock_allows_concurrent_readers() {
        let l = RwLock::new(7u32);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
