//! Offline shim for the `rand` 0.8 API subset this workspace uses.
//!
//! The build environment has no registry access, so this crate stands in
//! for the real `rand`. It provides [`rngs::StdRng`] (xoshiro256**
//! seeded through SplitMix64 — not the upstream ChaCha12, but every
//! consumer in this workspace only relies on *determinism per seed* and
//! uniformity, never on the exact upstream stream), the [`Rng`] extension
//! trait with `gen`/`gen_range`/`gen_bool`, and [`SeedableRng`].

/// Core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (the `seed_from_u64` constructor is all we use).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Samples one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for u8 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

impl Standard for u16 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}

impl Standard for i32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl Standard for i64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types uniformly samplable from a half-open or inclusive range.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from `[lo, hi)`; `hi > lo` is the caller's contract.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Unbiased integer draw from `[0, span)` via Lemire-style rejection.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let unit: $t = Standard::standard_sample(rng);
                let v = lo + unit * (hi - lo);
                if v < hi { v } else { lo }
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let unit: $t = Standard::standard_sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Extension methods over any [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Uniform draw from `range`.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        let unit: f64 = self.gen();
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Upstream-compatible module paths for the uniform-sampling traits.
pub mod distributions {
    /// Mirrors `rand::distributions::uniform`.
    pub mod uniform {
        pub use crate::{SampleRange, SampleUniform};
    }
}

/// Named generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// with SplitMix64 seed expansion. Statistically strong, trivially
    /// reproducible, and dependency-free.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro requires a non-zero state; splitmix output is zero
            // for at most one slot pattern, so force a bit if needed.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl StdRng {
        /// The raw xoshiro256** state, for checkpointing a generator
        /// mid-stream. Round-trips exactly through [`StdRng::from_state`].
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by
        /// [`StdRng::state`], resuming the stream at the same position.
        ///
        /// # Panics
        ///
        /// Panics on the all-zero state, which xoshiro cannot leave and
        /// [`SeedableRng::seed_from_u64`] can never produce — seeing it
        /// means the caller restored corrupted data.
        pub fn from_state(s: [u64; 4]) -> Self {
            assert!(s != [0, 0, 0, 0], "xoshiro256** state cannot be all-zero");
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..8).map(|_| r.gen()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..8).map(|_| r.gen()).collect()
        };
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(43);
            (0..8).map(|_| r.gen()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(3..10);
            assert!((3..10).contains(&v));
            let w: u64 = r.gen_range(0..=4);
            assert!(w <= 4);
            let f = r.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[r.gen_range(0usize..7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "{hits}");
    }

    #[test]
    fn state_round_trip_resumes_the_stream() {
        let mut r = StdRng::seed_from_u64(99);
        for _ in 0..13 {
            let _: u64 = r.gen();
        }
        let snapshot = r.state();
        let ahead: Vec<u64> = (0..16).map(|_| r.gen()).collect();
        let mut resumed = StdRng::from_state(snapshot);
        let resumed_ahead: Vec<u64> = (0..16).map(|_| resumed.gen()).collect();
        assert_eq!(ahead, resumed_ahead);
    }

    #[test]
    #[should_panic(expected = "all-zero")]
    fn all_zero_state_rejected() {
        let _ = StdRng::from_state([0, 0, 0, 0]);
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
