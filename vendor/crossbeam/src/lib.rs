//! Offline shim for the `crossbeam` API subset this workspace uses:
//! `crossbeam::thread::scope` + scoped spawn/join, implemented directly
//! on `std::thread::scope` (stable since Rust 1.63), and
//! `crossbeam::channel::bounded` — a blocking MPMC channel with
//! disconnect semantics, built on `Mutex<VecDeque>` + two `Condvar`s.

/// Multi-producer multi-consumer bounded channels (mirrors the
/// `crossbeam::channel` subset the streaming scan pipeline needs).
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    /// Error returned by [`Sender::send`] when every receiver is gone;
    /// carries the unsent value back to the caller.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] once the channel is empty
    /// and every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        not_full: Condvar,
        not_empty: Condvar,
        cap: usize,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half; cloneable. The channel disconnects for
    /// receivers once the last clone drops.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half; cloneable (competing consumers). The channel
    /// disconnects for senders once the last clone drops.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Creates a bounded channel holding at most `cap` in-flight items
    /// (`cap` of zero is rounded up to one).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            cap: cap.max(1),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender { inner: Arc::clone(&inner) }, Receiver { inner })
    }

    impl<T> Sender<T> {
        /// Blocks until there is room, then enqueues `value`.
        ///
        /// # Errors
        ///
        /// Returns the value back if every [`Receiver`] has dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut queue = self.inner.queue.lock().expect("channel poisoned");
            loop {
                if self.inner.receivers.load(Ordering::SeqCst) == 0 {
                    return Err(SendError(value));
                }
                if queue.len() < self.inner.cap {
                    queue.push_back(value);
                    drop(queue);
                    self.inner.not_empty.notify_one();
                    return Ok(());
                }
                queue = self.inner.not_full.wait(queue).expect("channel poisoned");
            }
        }

        /// Number of items currently queued (racy; for metrics only).
        pub fn len(&self) -> usize {
            self.inner.queue.lock().expect("channel poisoned").len()
        }

        /// True when nothing is queued (racy; for metrics only).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until an item arrives and returns it.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] once the queue is empty and every
        /// [`Sender`] has dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.inner.queue.lock().expect("channel poisoned");
            loop {
                if let Some(value) = queue.pop_front() {
                    drop(queue);
                    self.inner.not_full.notify_one();
                    return Ok(value);
                }
                if self.inner.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = self.inner.not_empty.wait(queue).expect("channel poisoned");
            }
        }

        /// Number of items currently queued (racy; for metrics only).
        pub fn len(&self) -> usize {
            self.inner.queue.lock().expect("channel poisoned").len()
        }

        /// True when nothing is queued (racy; for metrics only).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::SeqCst);
            Sender { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender: wake receivers parked in recv() so they
                // observe the disconnect. Taking the lock orders the
                // wake-up after any in-flight recv reaches wait().
                let _guard = self.inner.queue.lock().expect("channel poisoned");
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.inner.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                let _guard = self.inner.queue.lock().expect("channel poisoned");
                self.inner.not_full.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }
}

/// RCU-style published snapshots: wait-free reads of a shared value,
/// with writers replacing the whole value at once (the Mola Collections
/// `RcuMap` reclamation model: retired values go to a graveyard that is
/// only freed when the cell is exclusively held or dropped, so readers
/// never race reclamation and need no locks, epochs, or hazard
/// pointers).
pub mod rcu {
    use std::sync::atomic::{AtomicPtr, Ordering};
    use std::sync::Mutex;

    /// A shared cell holding one `T`, readable without locking.
    ///
    /// [`RcuCell::load`] is a single atomic pointer read; [`RcuCell::
    /// store`] boxes the new value, swaps it in, and *retires* the old
    /// value instead of freeing it. Retired values are reclaimed by
    /// [`RcuCell::collect`] (which takes `&mut self`, proving no reader
    /// exists) or on drop. Memory stays bounded when writers replace the
    /// value O(log n) times (e.g. republish-on-doubling caches).
    pub struct RcuCell<T> {
        current: AtomicPtr<T>,
        graveyard: Mutex<Vec<*mut T>>,
    }

    // SAFETY: the raw pointers are only ever created from `Box<T>` and
    // only dereferenced while the cell is alive; `T: Send + Sync` makes
    // sharing and cross-thread dropping of those boxes sound.
    unsafe impl<T: Send + Sync> Send for RcuCell<T> {}
    unsafe impl<T: Send + Sync> Sync for RcuCell<T> {}

    impl<T> RcuCell<T> {
        /// Creates a cell holding `value`.
        pub fn new(value: T) -> Self {
            RcuCell {
                current: AtomicPtr::new(Box::into_raw(Box::new(value))),
                graveyard: Mutex::new(Vec::new()),
            }
        }

        /// The current value. Wait-free: one atomic load, no locks.
        ///
        /// The reference is valid for the whole `&self` borrow: replaced
        /// values are retired, never freed, while shared references can
        /// exist.
        pub fn load(&self) -> &T {
            // SAFETY: `current` always points at a live Box leaked by
            // `new`/`store`. Old values are moved to the graveyard and
            // freed only under `&mut self` (collect/drop), which cannot
            // overlap this `&self` borrow.
            unsafe { &*self.current.load(Ordering::Acquire) }
        }

        /// Publishes `value` as the new current value and retires the
        /// old one (reclaimed later by [`RcuCell::collect`] or drop).
        pub fn store(&self, value: T) {
            let fresh = Box::into_raw(Box::new(value));
            let old = self.current.swap(fresh, Ordering::AcqRel);
            self.graveyard.lock().expect("rcu graveyard poisoned").push(old);
        }

        /// Frees every retired value. Requires `&mut self`, which
        /// guarantees no outstanding [`RcuCell::load`] reference.
        pub fn collect(&mut self) {
            for ptr in self.graveyard.get_mut().expect("rcu graveyard poisoned").drain(..) {
                // SAFETY: graveyard pointers are uniquely-owned retired
                // boxes; `&mut self` proves no reader still holds `&T`.
                drop(unsafe { Box::from_raw(ptr) });
            }
        }

        /// Number of retired values awaiting reclamation.
        pub fn retired(&self) -> usize {
            self.graveyard.lock().expect("rcu graveyard poisoned").len()
        }
    }

    impl<T> Drop for RcuCell<T> {
        fn drop(&mut self) {
            self.collect();
            let current = *self.current.get_mut();
            // SAFETY: `current` is the uniquely-owned live box; nobody
            // can load it again once drop runs.
            drop(unsafe { Box::from_raw(current) });
        }
    }

    impl<T: std::fmt::Debug> std::fmt::Debug for RcuCell<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_tuple("RcuCell").field(self.load()).finish()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::RcuCell;

        #[test]
        fn load_sees_latest_store() {
            let cell = RcuCell::new(1u32);
            assert_eq!(*cell.load(), 1);
            cell.store(2);
            assert_eq!(*cell.load(), 2);
            assert_eq!(cell.retired(), 1);
        }

        #[test]
        fn collect_drains_the_graveyard() {
            let mut cell = RcuCell::new(String::from("a"));
            cell.store(String::from("b"));
            cell.store(String::from("c"));
            assert_eq!(cell.retired(), 2);
            cell.collect();
            assert_eq!(cell.retired(), 0);
            assert_eq!(cell.load(), "c");
        }

        #[test]
        fn old_reference_stays_valid_across_store() {
            let cell = RcuCell::new(vec![1, 2, 3]);
            let old = cell.load();
            cell.store(vec![4]);
            // `old` still points at the retired value — the graveyard
            // keeps it alive for as long as `cell` is shared.
            assert_eq!(old, &[1, 2, 3]);
            assert_eq!(cell.load(), &[4]);
        }

        #[test]
        fn concurrent_readers_and_writers_never_tear() {
            let cell = RcuCell::new((0u64, 0u64));
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    scope.spawn(|| {
                        for _ in 0..10_000 {
                            let (a, b) = *cell.load();
                            assert_eq!(a, b, "readers must never observe a torn pair");
                        }
                    });
                }
                scope.spawn(|| {
                    for i in 1..=1_000u64 {
                        cell.store((i, i));
                    }
                });
            });
            assert_eq!(cell.retired(), 1_000);
        }
    }
}

/// Scoped threads (mirrors `crossbeam::thread`).
pub mod thread {
    use std::any::Any;

    /// Result alias matching `crossbeam::thread::scope`'s error shape.
    pub type ScopeResult<T> = Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope handle passed to [`scope`]'s closure and to every spawned
    /// worker (crossbeam passes the scope back into each closure so
    /// workers can themselves spawn).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped worker.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the worker and returns its result, or the panic
        /// payload if it panicked.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped worker. The closure receives the scope again,
        /// matching crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Creates a scope in which borrowed-data threads can be spawned;
    /// returns the closure's value once every worker has finished.
    ///
    /// # Errors
    ///
    /// Unlike crossbeam this never returns `Err` for *joined* workers
    /// (panics of unjoined workers propagate out of the underlying std
    /// scope instead), so callers treating `Err` as "a worker panicked"
    /// keep working.
    pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scoped_workers_borrow_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let total: u64 = thread::scope(|scope| {
            let handles: Vec<_> = data
                .iter()
                .map(|n| scope.spawn(move |_| n * 10))
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker")).sum()
        })
        .expect("scope");
        assert_eq!(total, 100);
    }

    #[test]
    fn workers_can_spawn_nested_workers() {
        let out = thread::scope(|scope| {
            let h = scope.spawn(|inner| {
                let g = inner.spawn(|_| 21);
                g.join().expect("nested") * 2
            });
            h.join().expect("outer")
        })
        .expect("scope");
        assert_eq!(out, 42);
    }

    #[test]
    fn joined_panic_is_reported_per_handle() {
        let res = thread::scope(|scope| {
            let h = scope.spawn(|_| -> u32 { panic!("boom") });
            h.join()
        })
        .expect("scope");
        assert!(res.is_err());
    }
}

#[cfg(test)]
mod channel_tests {
    use super::channel::{bounded, RecvError};
    use super::thread;

    #[test]
    fn fifo_within_a_single_producer() {
        let (tx, rx) = bounded(8);
        for i in 0..5 {
            tx.send(i).expect("send");
        }
        drop(tx);
        let got: Vec<i32> = std::iter::from_fn(|| rx.recv().ok()).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn recv_errors_once_senders_are_gone() {
        let (tx, rx) = bounded::<u8>(1);
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_errors_once_receivers_are_gone() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert!(tx.send(7u8).is_err());
    }

    #[test]
    fn bounded_capacity_blocks_until_drained() {
        let (tx, rx) = bounded(2);
        thread::scope(|scope| {
            scope.spawn(|_| {
                for i in 0..100u32 {
                    tx.send(i).expect("send");
                }
                drop(tx.clone()); // exercise clone bookkeeping
            });
            let mut seen = Vec::new();
            while let Ok(v) = rx.recv() {
                seen.push(v);
                if seen.len() == 100 {
                    break;
                }
            }
            assert_eq!(seen.len(), 100);
            assert!(seen.windows(2).all(|w| w[0] < w[1]));
        })
        .expect("scope");
    }

    #[test]
    fn multi_producer_multi_consumer_delivers_everything_once() {
        let (tx, rx) = bounded(4);
        let total: u64 = thread::scope(|scope| {
            let producers: Vec<_> = (0..3u64)
                .map(|p| {
                    let tx = tx.clone();
                    scope.spawn(move |_| {
                        for i in 0..50 {
                            tx.send(p * 1000 + i).expect("send");
                        }
                    })
                })
                .collect();
            drop(tx);
            let consumers: Vec<_> = (0..2)
                .map(|_| {
                    let rx = rx.clone();
                    scope.spawn(move |_| {
                        let mut count = 0u64;
                        while rx.recv().is_ok() {
                            count += 1;
                        }
                        count
                    })
                })
                .collect();
            drop(rx);
            for p in producers {
                p.join().expect("producer");
            }
            consumers.into_iter().map(|c| c.join().expect("consumer")).sum()
        })
        .expect("scope");
        assert_eq!(total, 150);
    }
}
