//! Offline shim for the `crossbeam` API subset this workspace uses:
//! `crossbeam::thread::scope` + scoped spawn/join, implemented directly
//! on `std::thread::scope` (stable since Rust 1.63).

/// Scoped threads (mirrors `crossbeam::thread`).
pub mod thread {
    use std::any::Any;

    /// Result alias matching `crossbeam::thread::scope`'s error shape.
    pub type ScopeResult<T> = Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope handle passed to [`scope`]'s closure and to every spawned
    /// worker (crossbeam passes the scope back into each closure so
    /// workers can themselves spawn).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped worker.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the worker and returns its result, or the panic
        /// payload if it panicked.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped worker. The closure receives the scope again,
        /// matching crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Creates a scope in which borrowed-data threads can be spawned;
    /// returns the closure's value once every worker has finished.
    ///
    /// # Errors
    ///
    /// Unlike crossbeam this never returns `Err` for *joined* workers
    /// (panics of unjoined workers propagate out of the underlying std
    /// scope instead), so callers treating `Err` as "a worker panicked"
    /// keep working.
    pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scoped_workers_borrow_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let total: u64 = thread::scope(|scope| {
            let handles: Vec<_> = data
                .iter()
                .map(|n| scope.spawn(move |_| n * 10))
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker")).sum()
        })
        .expect("scope");
        assert_eq!(total, 100);
    }

    #[test]
    fn workers_can_spawn_nested_workers() {
        let out = thread::scope(|scope| {
            let h = scope.spawn(|inner| {
                let g = inner.spawn(|_| 21);
                g.join().expect("nested") * 2
            });
            h.join().expect("outer")
        })
        .expect("scope");
        assert_eq!(out, 42);
    }

    #[test]
    fn joined_panic_is_reported_per_handle() {
        let res = thread::scope(|scope| {
            let h = scope.spawn(|_| -> u32 { panic!("boom") });
            h.join()
        })
        .expect("scope");
        assert!(res.is_err());
    }
}
