//! Offline shim for the `serde_json` API subset this workspace uses:
//! [`to_string`], [`to_string_pretty`], [`from_str`], [`Error`], and
//! [`Value`] (the vendored serde [`Content`] tree, which carries the
//! same `as_array`/`as_u64`/indexing accessors as `serde_json::Value`).

pub use serde::Content as Value;
use serde::{Content, DeError, Deserialize, Serialize};

/// JSON serialization or deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.msg)
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Infallible for this shim's data model; the `Result` mirrors the
/// upstream signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to two-space-indented JSON.
///
/// # Errors
///
/// Infallible for this shim's data model; the `Result` mirrors the
/// upstream signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any `Deserialize` type (including [`Value`]).
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch for `T`.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: input.as_bytes(), pos: 0 };
    parser.skip_ws();
    let content = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", parser.pos)));
    }
    Ok(T::from_content(&content)?)
}

// ---------------------------------------------------------------- writer

fn write_content(c: &Content, out: &mut String, indent: Option<usize>, depth: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if v.is_finite() {
                // Match serde_json: integral floats render with ".0".
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    out.push_str(&format!("{v:.1}"));
                } else {
                    out.push_str(&v.to_string());
                }
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_content(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(value, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Content::Null),
            Some(b't') => self.parse_keyword("true", Content::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Content::Bool(false)),
            Some(b'"') => Ok(Content::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by this shim's
                            // writer; map lone surrogates to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Multi-byte UTF-8: re-borrow the char from the source.
                    let start = self.pos - 1;
                    let text = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let ch = text.chars().next().ok_or_else(|| Error::new("empty char"))?;
                    self.pos = start + ch.len_utf8();
                    s.push(ch);
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_value() {
        let json = r#"{"a": [1, -2, 3.5, "x\ny", null, true], "b": {"c": false}}"#;
        let v: Value = from_str(json).unwrap();
        assert_eq!(v["a"].as_array().map(Vec::len), Some(6));
        assert_eq!(v["a"][0].as_u64(), Some(1));
        assert_eq!(v["a"][1].as_i64(), Some(-2));
        assert_eq!(v["a"][2].as_f64(), Some(3.5));
        assert_eq!(v["a"][3].as_str(), Some("x\ny"));
        assert!(v["a"][4].is_null());
        assert_eq!(v["b"]["c"].as_bool(), Some(false));
        let compact = to_string(&v).unwrap();
        let back: Value = from_str(&compact).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v: Value = from_str(r#"{"rows": [{"k": "v"}, {}], "n": 7}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"rows\""));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn escapes_strings() {
        let s = to_string(&Value::Str("a\"b\\c\nd".into())).unwrap();
        assert_eq!(s, r#""a\"b\\c\nd""#);
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back.as_str(), Some("a\"b\\c\nd"));
    }
}
