//! Property tests for the exchange simulator: ledger conservation,
//! CAPTCHA determinism, session-tracker invariants, rotation sanity.

use proptest::prelude::*;
use slum_exchange::antiabuse::{Admission, IpAddr, SessionPolicy, SessionTracker};
use slum_exchange::captcha::Captcha;
use slum_exchange::economy::{AccountId, EconomyConfig, Ledger};

#[derive(Debug, Clone)]
enum Op {
    Earn(u8),
    Spend(u8, u8),
    Purchase(u8, u8),
    Suspend(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..6).prop_map(Op::Earn),
        (0u8..6, 0u8..10).prop_map(|(a, v)| Op::Spend(a, v)),
        (0u8..6, 0u8..3).prop_map(|(a, d)| Op::Purchase(a, d)),
        (0u8..6).prop_map(Op::Suspend),
    ]
}

proptest! {
    /// The ledger conserves milli-credits under arbitrary operation
    /// sequences, and no account balance underflows on spend.
    #[test]
    fn ledger_conservation(ops in proptest::collection::vec(op_strategy(), 0..200)) {
        let mut ledger = Ledger::new();
        let cfg = EconomyConfig::default();
        let accounts: Vec<AccountId> = (0..6).map(|_| ledger.open_account()).collect();
        for op in ops {
            match op {
                Op::Earn(a) => {
                    let _ = ledger.earn_view(accounts[a as usize % 6], &cfg);
                }
                Op::Spend(a, v) => {
                    let id = accounts[a as usize % 6];
                    let before = ledger.account(id).map(|acc| acc.balance_millis).unwrap_or(0);
                    let result = ledger.spend_visits(id, v as u64, &cfg);
                    if result.is_ok() {
                        let after = ledger.account(id).unwrap().balance_millis;
                        prop_assert!(after >= 0, "balance underflow: {after}");
                        prop_assert_eq!(before - after, cfg.cost_per_visit_millis * v as i64);
                    }
                }
                Op::Purchase(a, d) => {
                    let _ = ledger.purchase(accounts[a as usize % 6], d as u64, &cfg);
                }
                Op::Suspend(a) => ledger.suspend(accounts[a as usize % 6]),
            }
            prop_assert!(ledger.is_conserved(), "conservation violated");
        }
    }

    /// CAPTCHAs are deterministic, self-consistent, and reject wrong
    /// answers.
    #[test]
    fn captcha_properties(nonce in 0u64..100_000, wrong_delta in 1u32..1000) {
        let c = Captcha::for_nonce(nonce);
        prop_assert_eq!(&c, &Captcha::for_nonce(nonce));
        prop_assert!(c.verify(c.answer()));
        prop_assert!(!c.verify(c.answer().wrapping_add(wrong_delta)));
    }

    /// Session tracker: under the strict policy, an account never holds
    /// two live sessions; a suspended account never gets a new session.
    #[test]
    fn session_tracker_invariants(
        events in proptest::collection::vec((0u8..4, 0u8..4), 0..60),
    ) {
        let mut tracker = SessionTracker::new(SessionPolicy::SingleSessionStrict);
        let mut open_tokens: Vec<Vec<slum_exchange::antiabuse::SessionToken>> = vec![Vec::new(); 4];
        for (acct_raw, ip_raw) in events {
            let account = AccountId(acct_raw as u64);
            let suspended_before = tracker.is_suspended(account);
            match tracker.open_session(account, IpAddr::new(format!("10.0.0.{ip_raw}"))) {
                Admission::Granted { session } => {
                    prop_assert!(!suspended_before, "suspended account admitted");
                    open_tokens[acct_raw as usize].push(session);
                }
                Admission::RejectedAndSuspended => {
                    prop_assert!(tracker.is_suspended(account));
                    open_tokens[acct_raw as usize].clear();
                }
                Admission::RejectedIpInUse { holder } => {
                    prop_assert_ne!(holder, account);
                }
            }
            prop_assert!(
                tracker.live_sessions(account) <= 1,
                "strict policy allows at most one live session"
            );
        }
    }

    /// Burst delivery: delivered count is exactly the over-delivery
    /// model applied to the purchase, for any purchase size.
    #[test]
    fn delivery_scales_with_purchase(purchased in 10u64..5_000, seed in 0u64..100) {
        use slum_exchange::campaign::DeliveryModel;
        use slum_websim::rng::seeded;
        let model = DeliveryModel::default();
        let mut rng = seeded(seed);
        let events = model.deliver(purchased, 0, &mut rng);
        let expected = (purchased as f64 * model.overdelivery).round() as u64;
        prop_assert_eq!(events.len() as u64, expected);
        prop_assert!(events.windows(2).all(|w| w[0].at <= w[1].at), "sorted by time");
    }
}
