//! Monetization mechanics (§II background, after Javed et al.).
//!
//! "The main goal of websites listed on traffic exchanges is to generate
//! ad impressions from a diverse pool of IP addresses" and, per the
//! seminal measurement study the paper builds on, "monetization on
//! traffic exchanges is done by ad impressions from bogus ad exchanges
//! and referrer spoofing on legitimate ad exchanges". This module models
//! both monetization paths plus the legitimate networks' vetting, which
//! the paper's §VI holds up as the countermeasure (AdSense and
//! DoubleClick ban traffic exchanges outright).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// How a member site converts exchange traffic into money.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Monetization {
    /// Impressions on a bogus ad exchange that pays for raw volume and
    /// performs no traffic-quality vetting (the AdHitz role — the
    /// network the paper found on most traffic exchanges).
    BogusAdExchange {
        /// Network name.
        network: String,
    },
    /// Impressions on a legitimate network, with the HTTP referrer
    /// forged to hide the traffic-exchange origin.
    ReferrerSpoofing {
        /// Network name.
        network: String,
        /// The innocuous referrer presented instead of the exchange.
        spoofed_referrer: String,
    },
}

/// One ad impression as an ad network sees it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Impression {
    /// Publisher site host.
    pub publisher: String,
    /// Referrer presented to the network (post-spoofing).
    pub referrer: String,
    /// Visitor IP token.
    pub visitor_ip: String,
    /// Virtual timestamp.
    pub at: u64,
}

/// Builds the impression a network receives for a page view monetized
/// via `scheme`, given the *true* referrer (the exchange host).
pub fn impression_for(
    scheme: &Monetization,
    publisher: &str,
    true_referrer: &str,
    visitor_ip: &str,
    at: u64,
) -> Impression {
    let referrer = match scheme {
        Monetization::BogusAdExchange { .. } => true_referrer.to_string(),
        Monetization::ReferrerSpoofing { spoofed_referrer, .. } => spoofed_referrer.clone(),
    };
    Impression { publisher: publisher.to_string(), referrer, visitor_ip: visitor_ip.to_string(), at }
}

/// A legitimate ad network's traffic-quality vetting, the §VI
/// countermeasure. Referrer blocklisting alone is beaten by spoofing;
/// the IP-diversity heuristic catches the burst pattern that paid
/// exchange campaigns produce.
#[derive(Debug, Clone)]
pub struct TrafficQualityVetting {
    /// Known traffic-exchange hosts (referrer blocklist).
    pub exchange_hosts: Vec<String>,
    /// Maximum tolerated impressions per visitor IP inside the window
    /// before the pattern reads as exchange-style recycled traffic.
    pub max_impressions_per_ip: u64,
    /// Minimum impressions before the IP heuristic activates.
    pub min_volume: u64,
}

impl Default for TrafficQualityVetting {
    fn default() -> Self {
        TrafficQualityVetting {
            exchange_hosts: crate::params::PROFILES.iter().map(|p| p.host.to_string()).collect(),
            max_impressions_per_ip: 3,
            min_volume: 50,
        }
    }
}

/// The vetting verdict for a publisher's impression batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VettingVerdict {
    /// Traffic looks organic; impressions are payable.
    Accepted,
    /// Referrer matches a known exchange (caught without spoofing).
    RejectedExchangeReferrer {
        /// The offending referrer.
        referrer: String,
    },
    /// Referrers look clean but the visit pattern does not: too many
    /// repeat impressions per IP (recycled exchange members).
    RejectedRecycledTraffic {
        /// Observed average impressions per distinct IP (×100).
        impressions_per_ip_x100: u64,
    },
}

impl TrafficQualityVetting {
    /// Vets a publisher's impression batch.
    pub fn vet(&self, impressions: &[Impression]) -> VettingVerdict {
        // 1. Referrer blocklist.
        for imp in impressions {
            if self.exchange_hosts.iter().any(|h| h == &imp.referrer) {
                return VettingVerdict::RejectedExchangeReferrer {
                    referrer: imp.referrer.clone(),
                };
            }
        }
        // 2. IP-diversity heuristic (only meaningful with volume).
        if impressions.len() as u64 >= self.min_volume {
            let mut per_ip: BTreeMap<&str, u64> = BTreeMap::new();
            for imp in impressions {
                *per_ip.entry(imp.visitor_ip.as_str()).or_insert(0) += 1;
            }
            let avg_x100 = impressions.len() as u64 * 100 / per_ip.len().max(1) as u64;
            if avg_x100 > self.max_impressions_per_ip * 100 {
                return VettingVerdict::RejectedRecycledTraffic {
                    impressions_per_ip_x100: avg_x100,
                };
            }
        }
        VettingVerdict::Accepted
    }
}

/// Revenue model: what each monetization path pays per thousand
/// impressions, before and after vetting. Bogus exchanges pay a pittance
/// but never reject; legitimate networks pay real CPMs but vet.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RevenueModel {
    /// Bogus-exchange CPM in milli-dollars.
    pub bogus_cpm_millis: u64,
    /// Legitimate-network CPM in milli-dollars.
    pub legit_cpm_millis: u64,
}

impl Default for RevenueModel {
    fn default() -> Self {
        // A few cents vs a couple of dollars per thousand — the gap that
        // makes referrer spoofing worth the risk.
        RevenueModel { bogus_cpm_millis: 40, legit_cpm_millis: 2_200 }
    }
}

impl RevenueModel {
    /// Payout in milli-dollars for a vetted batch under `scheme`.
    pub fn payout_millis(
        &self,
        scheme: &Monetization,
        impressions: &[Impression],
        vetting: &TrafficQualityVetting,
    ) -> u64 {
        let n = impressions.len() as u64;
        match scheme {
            Monetization::BogusAdExchange { .. } => n * self.bogus_cpm_millis / 1_000,
            Monetization::ReferrerSpoofing { .. } => match vetting.vet(impressions) {
                VettingVerdict::Accepted => n * self.legit_cpm_millis / 1_000,
                _ => 0,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spoofed() -> Monetization {
        Monetization::ReferrerSpoofing {
            network: "legit-ads.example".into(),
            spoofed_referrer: "news-portal.example.com".into(),
        }
    }

    fn bogus() -> Monetization {
        Monetization::BogusAdExchange { network: "adhitz-net.example".into() }
    }

    fn batch(scheme: &Monetization, n: usize, distinct_ips: usize) -> Vec<Impression> {
        (0..n)
            .map(|i| {
                impression_for(
                    scheme,
                    "member-site.example.com",
                    "10khits.exchange.example",
                    &format!("ip-{}", i % distinct_ips.max(1)),
                    i as u64,
                )
            })
            .collect()
    }

    #[test]
    fn bogus_exchange_sees_true_referrer_and_pays_anyway() {
        let scheme = bogus();
        let impressions = batch(&scheme, 1_000, 400);
        assert!(impressions.iter().all(|i| i.referrer == "10khits.exchange.example"));
        let payout = RevenueModel::default().payout_millis(
            &scheme,
            &impressions,
            &TrafficQualityVetting::default(),
        );
        assert_eq!(payout, 40, "1000 impressions at 40 milli-$/1000");
    }

    #[test]
    fn unspoofed_exchange_traffic_rejected_by_legit_network() {
        // A naive publisher sends exchange traffic to a legit network
        // without spoofing: referrer blocklist catches it.
        let scheme = Monetization::ReferrerSpoofing {
            network: "legit-ads.example".into(),
            spoofed_referrer: "10khits.exchange.example".into(), // lazy "spoof"
        };
        let impressions = batch(&scheme, 100, 60);
        let verdict = TrafficQualityVetting::default().vet(&impressions);
        assert!(matches!(verdict, VettingVerdict::RejectedExchangeReferrer { .. }));
    }

    #[test]
    fn spoofing_with_diverse_ips_passes_vetting() {
        // Spoofed referrer + a genuinely diverse IP pool (the exchange's
        // selling point) slips past both checks — exactly why §VI says
        // networks must keep vetting impression figures.
        let scheme = spoofed();
        let impressions = batch(&scheme, 1_000, 500);
        let vetting = TrafficQualityVetting::default();
        assert_eq!(vetting.vet(&impressions), VettingVerdict::Accepted);
        let payout = RevenueModel::default().payout_millis(&scheme, &impressions, &vetting);
        assert_eq!(payout, 2_200);
    }

    #[test]
    fn recycled_ips_caught_despite_spoofing() {
        // Heavy reuse of a small member pool trips the IP heuristic.
        let scheme = spoofed();
        let impressions = batch(&scheme, 1_000, 20);
        let verdict = TrafficQualityVetting::default().vet(&impressions);
        assert!(
            matches!(verdict, VettingVerdict::RejectedRecycledTraffic { .. }),
            "{verdict:?}"
        );
        let payout = RevenueModel::default().payout_millis(
            &scheme,
            &impressions,
            &TrafficQualityVetting::default(),
        );
        assert_eq!(payout, 0);
    }

    #[test]
    fn small_batches_skip_the_ip_heuristic() {
        let scheme = spoofed();
        let impressions = batch(&scheme, 10, 1);
        assert_eq!(
            TrafficQualityVetting::default().vet(&impressions),
            VettingVerdict::Accepted,
            "not enough volume to judge"
        );
    }

    #[test]
    fn spoofing_pays_55x_more_when_it_works() {
        let model = RevenueModel::default();
        assert!(model.legit_cpm_millis / model.bogus_cpm_millis == 55);
    }
}
