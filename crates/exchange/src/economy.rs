//! Credit economy: accounts, earning, spending, purchases.
//!
//! Exchanges operate on reciprocity — "members earn credit for viewing
//! other members' websites" — topped up with cash purchases ("the
//! cost-per-thousand hits on traffic exchanges range from a few cents to
//! a few dollars", §II-A). Credits are tracked in fixed-point
//! milli-credits so ledger conservation is exact.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// Account identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AccountId(pub u64);

/// Account status.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccountStatus {
    /// Active member.
    Active,
    /// Suspended (anti-abuse violation).
    Suspended,
}

/// A member account.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Account {
    /// Identifier.
    pub id: AccountId,
    /// Milli-credit balance.
    pub balance_millis: i64,
    /// Status.
    pub status: AccountStatus,
}

/// Errors from economy operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EconomyError {
    /// The account does not exist.
    UnknownAccount(AccountId),
    /// The account is suspended.
    Suspended(AccountId),
    /// Balance too low for the requested spend.
    InsufficientCredits {
        /// Who tried to spend.
        account: AccountId,
        /// Milli-credits requested.
        requested: i64,
        /// Milli-credits available.
        available: i64,
    },
}

impl std::fmt::Display for EconomyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EconomyError::UnknownAccount(id) => write!(f, "unknown account {id:?}"),
            EconomyError::Suspended(id) => write!(f, "account {id:?} is suspended"),
            EconomyError::InsufficientCredits { account, requested, available } => write!(
                f,
                "account {account:?} has {available} milli-credits, needs {requested}"
            ),
        }
    }
}

impl std::error::Error for EconomyError {}

/// Pricing and earn-rate configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EconomyConfig {
    /// Milli-credits earned per page surfed (auto-surf exchanges pay
    /// less per view than manual).
    pub earn_per_view_millis: i64,
    /// Milli-credits charged per visit delivered to a member site.
    pub cost_per_visit_millis: i64,
    /// Visits granted per US dollar when buying traffic. The paper's
    /// burst experiment paid $5 for 2,500 visits → 500 visits/$.
    pub visits_per_dollar: u64,
}

impl Default for EconomyConfig {
    fn default() -> Self {
        EconomyConfig {
            earn_per_view_millis: 500,
            cost_per_visit_millis: 1_000,
            visits_per_dollar: 500,
        }
    }
}

/// The exchange's credit ledger.
///
/// Invariant: the sum of balances changes only through explicit mint
/// (purchases) and burn (house cut) operations — surf-earn and
/// visit-spend are transfers from/to the house account.
///
/// ```
/// use slum_exchange::economy::{EconomyConfig, Ledger};
///
/// # fn main() -> Result<(), slum_exchange::economy::EconomyError> {
/// let mut ledger = Ledger::new();
/// let cfg = EconomyConfig::default();
/// let member = ledger.open_account();
/// // Surf ten pages, spend the credit on five visits.
/// for _ in 0..10 {
///     ledger.earn_view(member, &cfg)?;
/// }
/// ledger.spend_visits(member, 5, &cfg)?;
/// assert!(ledger.is_conserved());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Ledger {
    accounts: HashMap<AccountId, Account>,
    /// The exchange's own pool; earns what members spend, funds what
    /// members earn.
    house_millis: i64,
    /// Total milli-credits ever minted via purchases.
    minted_millis: i64,
    next_id: u64,
}

impl Ledger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Ledger::default()
    }

    /// Opens a new account with zero balance.
    pub fn open_account(&mut self) -> AccountId {
        let id = AccountId(self.next_id);
        self.next_id += 1;
        self.accounts
            .insert(id, Account { id, balance_millis: 0, status: AccountStatus::Active });
        id
    }

    /// Number of accounts.
    pub fn account_count(&self) -> usize {
        self.accounts.len()
    }

    /// Borrows an account.
    pub fn account(&self, id: AccountId) -> Option<&Account> {
        self.accounts.get(&id)
    }

    /// Suspends an account (anti-abuse).
    pub fn suspend(&mut self, id: AccountId) {
        if let Some(a) = self.accounts.get_mut(&id) {
            a.status = AccountStatus::Suspended;
        }
    }

    fn active_mut(&mut self, id: AccountId) -> Result<&mut Account, EconomyError> {
        let account =
            self.accounts.get_mut(&id).ok_or(EconomyError::UnknownAccount(id))?;
        if account.status == AccountStatus::Suspended {
            return Err(EconomyError::Suspended(id));
        }
        Ok(account)
    }

    /// Credits an account for one surfed page view (transfer from the
    /// house pool).
    ///
    /// # Errors
    ///
    /// Fails for unknown or suspended accounts.
    pub fn earn_view(&mut self, id: AccountId, cfg: &EconomyConfig) -> Result<(), EconomyError> {
        let amount = cfg.earn_per_view_millis;
        let account = self.active_mut(id)?;
        account.balance_millis += amount;
        self.house_millis -= amount;
        Ok(())
    }

    /// Spends credits for `visits` visits to the member's site
    /// (transfer to the house pool).
    ///
    /// # Errors
    ///
    /// Fails when the balance cannot cover the spend.
    pub fn spend_visits(
        &mut self,
        id: AccountId,
        visits: u64,
        cfg: &EconomyConfig,
    ) -> Result<(), EconomyError> {
        let amount = cfg.cost_per_visit_millis * visits as i64;
        let account = self.active_mut(id)?;
        if account.balance_millis < amount {
            return Err(EconomyError::InsufficientCredits {
                account: id,
                requested: amount,
                available: account.balance_millis,
            });
        }
        account.balance_millis -= amount;
        self.house_millis += amount;
        Ok(())
    }

    /// Buys visit credits for cash: mints `visits_per_dollar × dollars`
    /// visits' worth of credits into the account.
    ///
    /// # Errors
    ///
    /// Fails for unknown or suspended accounts.
    pub fn purchase(
        &mut self,
        id: AccountId,
        dollars: u64,
        cfg: &EconomyConfig,
    ) -> Result<u64, EconomyError> {
        let visits = cfg.visits_per_dollar * dollars;
        let amount = cfg.cost_per_visit_millis * visits as i64;
        let account = self.active_mut(id)?;
        account.balance_millis += amount;
        self.minted_millis += amount;
        Ok(visits)
    }

    /// Ledger conservation check: member balances + house pool == minted.
    pub fn is_conserved(&self) -> bool {
        let members: i64 = self.accounts.values().map(|a| a.balance_millis).sum();
        members + self.house_millis == self.minted_millis
    }

    /// Total milli-credits held by members.
    pub fn member_total_millis(&self) -> i64 {
        self.accounts.values().map(|a| a.balance_millis).sum()
    }

    /// The house pool (negative when the exchange has paid out more surf
    /// rewards than it has collected).
    pub fn house_millis(&self) -> i64 {
        self.house_millis
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn earn_and_spend_conserve() {
        let mut ledger = Ledger::new();
        let cfg = EconomyConfig::default();
        let a = ledger.open_account();
        let b = ledger.open_account();
        for _ in 0..10 {
            ledger.earn_view(a, &cfg).unwrap();
        }
        assert!(ledger.is_conserved());
        assert_eq!(ledger.account(a).unwrap().balance_millis, 5_000);
        ledger.spend_visits(a, 5, &cfg).unwrap();
        assert_eq!(ledger.account(a).unwrap().balance_millis, 0);
        assert!(ledger.is_conserved());
        let _ = b;
    }

    #[test]
    fn overspend_rejected_with_details() {
        let mut ledger = Ledger::new();
        let cfg = EconomyConfig::default();
        let a = ledger.open_account();
        ledger.earn_view(a, &cfg).unwrap();
        let err = ledger.spend_visits(a, 10, &cfg).unwrap_err();
        match err {
            EconomyError::InsufficientCredits { requested, available, .. } => {
                assert_eq!(requested, 10_000);
                assert_eq!(available, 500);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(ledger.is_conserved());
    }

    #[test]
    fn purchase_matches_paper_pricing() {
        // $5 buys 2,500 visits (the paper's burst-validation purchase).
        let mut ledger = Ledger::new();
        let cfg = EconomyConfig::default();
        let a = ledger.open_account();
        let visits = ledger.purchase(a, 5, &cfg).unwrap();
        assert_eq!(visits, 2_500);
        ledger.spend_visits(a, 2_500, &cfg).unwrap();
        assert_eq!(ledger.account(a).unwrap().balance_millis, 0);
        assert!(ledger.is_conserved());
    }

    #[test]
    fn suspended_account_blocked_everywhere() {
        let mut ledger = Ledger::new();
        let cfg = EconomyConfig::default();
        let a = ledger.open_account();
        ledger.purchase(a, 1, &cfg).unwrap();
        ledger.suspend(a);
        assert_eq!(ledger.earn_view(a, &cfg), Err(EconomyError::Suspended(a)));
        assert_eq!(ledger.spend_visits(a, 1, &cfg), Err(EconomyError::Suspended(a)));
        assert!(matches!(ledger.purchase(a, 1, &cfg), Err(EconomyError::Suspended(_))));
    }

    #[test]
    fn unknown_account_errors() {
        let mut ledger = Ledger::new();
        let cfg = EconomyConfig::default();
        let ghost = AccountId(999);
        assert_eq!(ledger.earn_view(ghost, &cfg), Err(EconomyError::UnknownAccount(ghost)));
    }

    #[test]
    fn conservation_under_random_workload() {
        let mut ledger = Ledger::new();
        let cfg = EconomyConfig::default();
        let ids: Vec<AccountId> = (0..8).map(|_| ledger.open_account()).collect();
        for (i, &id) in ids.iter().enumerate().cycle().take(1_000) {
            match i % 3 {
                0 => {
                    let _ = ledger.earn_view(id, &cfg);
                }
                1 => {
                    let _ = ledger.spend_visits(id, (i % 4) as u64, &cfg);
                }
                _ => {
                    let _ = ledger.purchase(id, (i % 2) as u64, &cfg);
                }
            }
            assert!(ledger.is_conserved(), "conservation broke at step {i}");
        }
    }
}
