//! The exchange itself: listings, rotation, surf steps.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use slum_websim::rng::{path_token, pick_weighted};
use slum_websim::Url;

use crate::campaign::Campaign;
use crate::captcha::Captcha;

/// Auto-surf or manual-surf.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExchangeKind {
    /// Automated rotation, no user input required.
    AutoSurf,
    /// User clicks through, gated by CAPTCHAs.
    ManualSurf,
}

impl ExchangeKind {
    /// Table I's type column text.
    pub fn label(self) -> &'static str {
        match self {
            ExchangeKind::AutoSurf => "Auto-surf",
            ExchangeKind::ManualSurf => "Manual-surf",
        }
    }
}

/// A member-site listing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Listing {
    /// Site entry URL.
    pub url: Url,
    /// Base rotation weight.
    pub weight: f64,
    /// Whether the listed site is malicious (ground truth; used only by
    /// the oracle and calibration, never by rotation itself).
    pub malicious: bool,
}

/// One step of a surf session: the URL to open plus the gate conditions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurfStep {
    /// URL the surfbar opens (query parameters vary per visit, so
    /// distinct URLs accumulate on each domain as in the corpus).
    pub url: Url,
    /// Seconds the member must remain on the page for credit.
    pub min_surf_secs: u32,
    /// CAPTCHA to solve first (manual-surf only).
    pub captcha: Option<Captcha>,
    /// Whether the served listing carried an active paid-campaign boost
    /// at selection time (the burst traffic of §IV; lets the crawler
    /// report how many of its surf steps landed inside a burst).
    pub campaign_boosted: bool,
}

/// A configured traffic exchange.
///
/// ```
/// use slum_exchange::{build_exchange, params::profile};
/// use slum_websim::build::WebBuilder;
/// use slum_websim::rng::seeded;
///
/// let mut builder = WebBuilder::new(3);
/// let mut exchange =
///     build_exchange(&mut builder, profile("Otohits").unwrap(), 0.05, 50_000);
/// let mut rng = seeded(3);
/// let step = exchange.next_step(0, &mut rng);
/// assert!(step.captcha.is_none(), "auto-surf exchanges have no CAPTCHA");
/// assert_eq!(step.min_surf_secs, 10);
/// ```
#[derive(Debug, Clone)]
pub struct Exchange {
    /// Exchange display name.
    name: String,
    kind: ExchangeKind,
    /// The exchange's own homepage (self-referral target).
    home: Url,
    /// Popular sites the exchange pads rotations with.
    popular: Vec<Url>,
    listings: Vec<Listing>,
    campaigns: Vec<Campaign>,
    self_fraction: f64,
    popular_fraction: f64,
    min_surf_secs: u32,
    captcha_nonce: u64,
}

impl Exchange {
    /// Creates an exchange.
    ///
    /// # Panics
    ///
    /// Panics when `listings` is empty or the referral fractions exceed 1.
    #[allow(clippy::too_many_arguments)] // a constructor mirroring the profile fields
    pub fn new(
        name: impl Into<String>,
        kind: ExchangeKind,
        home: Url,
        popular: Vec<Url>,
        listings: Vec<Listing>,
        self_fraction: f64,
        popular_fraction: f64,
        min_surf_secs: u32,
    ) -> Self {
        assert!(!listings.is_empty(), "an exchange needs at least one listing");
        assert!(
            self_fraction + popular_fraction < 1.0,
            "referral fractions must leave room for regular URLs"
        );
        Exchange {
            name: name.into(),
            kind,
            home,
            popular,
            listings,
            campaigns: Vec::new(),
            self_fraction,
            popular_fraction,
            min_surf_secs,
            captcha_nonce: 0,
        }
    }

    /// Exchange name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Exchange kind.
    pub fn kind(&self) -> ExchangeKind {
        self.kind
    }

    /// The exchange's homepage URL.
    pub fn home(&self) -> &Url {
        &self.home
    }

    /// Registered listings.
    pub fn listings(&self) -> &[Listing] {
        &self.listings
    }

    /// Active + scheduled campaigns.
    pub fn campaigns(&self) -> &[Campaign] {
        &self.campaigns
    }

    /// Minimum per-page surf time the exchange enforces (seconds).
    pub fn min_surf_secs(&self) -> u32 {
        self.min_surf_secs
    }

    /// The current CAPTCHA nonce — the only piece of exchange state a
    /// surf session mutates. Checkpointing a crawl records it so a
    /// resumed session regenerates the identical CAPTCHA sequence.
    pub fn captcha_nonce(&self) -> u64 {
        self.captcha_nonce
    }

    /// Restores the CAPTCHA nonce captured by
    /// [`Exchange::captcha_nonce`] when resuming a crawl.
    pub fn restore_captcha_nonce(&mut self, nonce: u64) {
        self.captcha_nonce = nonce;
    }

    /// Schedules a campaign (weight boost on the listing whose URL
    /// matches `campaign.target`; unknown targets are accepted — the
    /// listing is added with zero base weight, matching how a freshly
    /// listed dummy site behaves).
    pub fn schedule_campaign(&mut self, campaign: Campaign) {
        if !self.listings.iter().any(|l| l.url == campaign.target) {
            self.listings.push(Listing {
                url: campaign.target.clone(),
                weight: 0.0,
                malicious: false,
            });
        }
        self.campaigns.push(campaign);
    }

    /// Effective rotation weight of listing `i` at time `t`.
    fn effective_weight(&self, i: usize, t: u64) -> f64 {
        let listing = &self.listings[i];
        let boost: f64 = self
            .campaigns
            .iter()
            .filter(|c| c.active_at(t) && c.target == listing.url)
            .map(|c| c.boost)
            .sum();
        listing.weight + boost
    }

    /// Produces the next surf step at virtual time `t`.
    ///
    /// Rotation: with probability `self_fraction` the exchange opens its
    /// own homepage (self-referral); with `popular_fraction` a popular
    /// site; otherwise a member listing weighted by base weight plus any
    /// active campaign boosts.
    pub fn next_step(&mut self, t: u64, rng: &mut StdRng) -> SurfStep {
        let roll: f64 = rng.gen();
        let mut campaign_boosted = false;
        let url = if roll < self.self_fraction {
            self.home.clone()
        } else if roll < self.self_fraction + self.popular_fraction && !self.popular.is_empty() {
            self.popular[rng.gen_range(0..self.popular.len())].clone()
        } else {
            let weights: Vec<f64> =
                (0..self.listings.len()).map(|i| self.effective_weight(i, t)).collect();
            let total: f64 = weights.iter().sum();
            let idx = if total <= 0.0 {
                rng.gen_range(0..self.listings.len())
            } else {
                pick_weighted(rng, &weights)
            };
            let base = &self.listings[idx].url;
            campaign_boosted = self
                .campaigns
                .iter()
                .any(|c| c.active_at(t) && c.target == self.listings[idx].url);
            // Exchanges append tracking parameters, which is why the
            // corpus has ~18 distinct URLs per domain.
            if rng.gen_bool(0.7) {
                let token = path_token(rng, 6);
                let path = format!("{}?sid={}", base.path(), token);
                base.with_path(&path)
            } else {
                base.clone()
            }
        };
        let captcha = match self.kind {
            ExchangeKind::ManualSurf => {
                self.captcha_nonce += 1;
                Some(Captcha::for_nonce(self.captcha_nonce))
            }
            ExchangeKind::AutoSurf => None,
        };
        SurfStep { url, min_surf_secs: self.min_surf_secs, captcha, campaign_boosted }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slum_websim::rng::seeded;

    fn listing(host: &str, weight: f64, malicious: bool) -> Listing {
        Listing { url: Url::http(host, "/"), weight, malicious }
    }

    fn basic_exchange(kind: ExchangeKind) -> Exchange {
        Exchange::new(
            "TestX",
            kind,
            Url::http("testx.exchange.example", "/"),
            vec![Url::http("google.example", "/"), Url::http("youtube.example", "/")],
            vec![
                listing("member-a.example.com", 1.0, false),
                listing("member-b.example.com", 1.0, false),
                listing("evil.example.com", 1.0, true),
            ],
            0.10,
            0.10,
            30,
        )
    }

    #[test]
    fn referral_fractions_respected() {
        let mut x = basic_exchange(ExchangeKind::AutoSurf);
        let mut rng = seeded(1);
        let n = 20_000;
        let mut selfs = 0;
        let mut populars = 0;
        for t in 0..n {
            let step = x.next_step(t, &mut rng);
            let host = step.url.host().to_string();
            if host == "testx.exchange.example" {
                selfs += 1;
            } else if host.ends_with("google.example") || host.ends_with("youtube.example") {
                populars += 1;
            }
        }
        let self_frac = selfs as f64 / n as f64;
        let pop_frac = populars as f64 / n as f64;
        assert!((self_frac - 0.10).abs() < 0.01, "self {self_frac}");
        assert!((pop_frac - 0.10).abs() < 0.01, "popular {pop_frac}");
    }

    #[test]
    fn auto_surf_has_no_captcha_manual_does() {
        let mut auto = basic_exchange(ExchangeKind::AutoSurf);
        let mut manual = basic_exchange(ExchangeKind::ManualSurf);
        let mut rng = seeded(2);
        assert!(auto.next_step(0, &mut rng).captcha.is_none());
        assert!(manual.next_step(0, &mut rng).captcha.is_some());
    }

    #[test]
    fn captcha_nonces_advance() {
        let mut x = basic_exchange(ExchangeKind::ManualSurf);
        let mut rng = seeded(3);
        let a = x.next_step(0, &mut rng).captcha.unwrap();
        let b = x.next_step(1, &mut rng).captcha.unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn captcha_nonce_round_trips_for_resume() {
        let mut x = basic_exchange(ExchangeKind::ManualSurf);
        let mut rng = seeded(6);
        let _ = x.next_step(0, &mut rng);
        let _ = x.next_step(1, &mut rng);
        let snapshot = x.captcha_nonce();
        let expected = x.next_step(2, &mut rng).captcha.unwrap();
        let mut resumed = basic_exchange(ExchangeKind::ManualSurf);
        resumed.restore_captcha_nonce(snapshot);
        let mut rng2 = seeded(6);
        let _ = rng2.gen::<u64>(); // position is irrelevant to the CAPTCHA
        let got = resumed.next_step(2, &mut rng2).captcha.unwrap();
        assert_eq!(got, expected);
    }

    #[test]
    fn campaign_boost_skews_rotation_during_window() {
        let mut x = basic_exchange(ExchangeKind::ManualSurf);
        x.schedule_campaign(Campaign {
            target: Url::http("evil.example.com", "/"),
            visits_purchased: 1_000,
            dollars: 2,
            start: 1_000,
            end: 2_000,
            boost: 100.0,
        });
        let mut rng = seeded(4);
        let evil_share = |x: &mut Exchange, rng: &mut StdRng, t0: u64| {
            let mut evil = 0;
            let n = 3_000;
            for i in 0..n {
                let step = x.next_step(t0 + (i % 900), rng);
                if step.url.host() == "evil.example.com" {
                    evil += 1;
                }
            }
            evil as f64 / n as f64
        };
        let before = evil_share(&mut x, &mut rng, 0);
        let during = evil_share(&mut x, &mut rng, 1_000);
        assert!(during > before * 2.0, "boost must dominate: before {before}, during {during}");
        assert!(during > 0.6, "campaign should capture most rotation: {during}");
    }

    #[test]
    fn steps_flag_campaign_boosted_listings() {
        let mut x = basic_exchange(ExchangeKind::AutoSurf);
        x.schedule_campaign(Campaign {
            target: Url::http("evil.example.com", "/"),
            visits_purchased: 1_000,
            dollars: 2,
            start: 1_000,
            end: 2_000,
            boost: 100.0,
        });
        let mut rng = seeded(5);
        // Outside the window nothing is boosted.
        assert!((0..200).all(|t| !x.next_step(t, &mut rng).campaign_boosted));
        // Inside, exactly the steps that land on the boosted listing are.
        let mut boosted = 0;
        for i in 0..500 {
            let step = x.next_step(1_000 + i, &mut rng);
            assert_eq!(step.campaign_boosted, step.url.host() == "evil.example.com");
            boosted += u64::from(step.campaign_boosted);
        }
        assert!(boosted > 250, "boost dominates the window: {boosted}/500");
    }

    #[test]
    fn campaign_on_unlisted_site_lists_it() {
        let mut x = basic_exchange(ExchangeKind::ManualSurf);
        let n_before = x.listings().len();
        x.schedule_campaign(Campaign {
            target: Url::http("dummy-experiment.example.com", "/"),
            visits_purchased: 2_500,
            dollars: 5,
            start: 0,
            end: 3_600,
            boost: 10.0,
        });
        assert_eq!(x.listings().len(), n_before + 1);
    }

    #[test]
    fn distinct_urls_accumulate_per_domain() {
        let mut x = basic_exchange(ExchangeKind::AutoSurf);
        let mut rng = seeded(5);
        let mut urls = std::collections::BTreeSet::new();
        for t in 0..500 {
            urls.insert(x.next_step(t, &mut rng).url.to_string());
        }
        // 3 listings + home + 2 popular sites, but query variants create
        // far more distinct URLs.
        assert!(urls.len() > 50, "only {} distinct URLs", urls.len());
    }

    #[test]
    #[should_panic(expected = "at least one listing")]
    fn empty_exchange_rejected() {
        Exchange::new(
            "X",
            ExchangeKind::AutoSurf,
            Url::http("x.example", "/"),
            vec![],
            vec![],
            0.1,
            0.1,
            10,
        );
    }
}
