//! Paid traffic campaigns.
//!
//! §IV: "The bursts of malicious URLs can be explained by paid campaigns
//! of fix durations on the traffic exchanges. To validate this
//! assertion, we paid a manual-surf traffic exchange to get impressions
//! on a dummy website. We purchased 2500 visits for $5 and our website
//! received a total of 4,621 visits from 2,685 unique IP addresses in
//! less than an hour."
//!
//! A [`Campaign`] is a fixed-duration weight boost on one listing; the
//! delivery generator reproduces the observed over-delivery and IP
//! diversity.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use slum_websim::params::VISITOR_COUNTRIES;
use slum_websim::rng::pick_weighted;
use slum_websim::Url;

/// A purchased traffic campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Campaign {
    /// Target site receiving the visits.
    pub target: Url,
    /// Visits purchased.
    pub visits_purchased: u64,
    /// Price paid in dollars.
    pub dollars: u64,
    /// Virtual start time (seconds).
    pub start: u64,
    /// Virtual end time (seconds).
    pub end: u64,
    /// Multiplier applied to the listing weight while active.
    pub boost: f64,
}

impl Campaign {
    /// True while the campaign is running at time `t`.
    pub fn active_at(&self, t: u64) -> bool {
        (self.start..self.end).contains(&t)
    }

    /// Duration in seconds.
    pub fn duration(&self) -> u64 {
        self.end - self.start
    }
}

/// One delivered campaign visit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VisitEvent {
    /// Virtual timestamp.
    pub at: u64,
    /// Visitor IP (synthetic token).
    pub ip: String,
    /// Visitor country.
    pub country: String,
}

/// Delivery model calibrated to the paper's burst experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeliveryModel {
    /// Delivered / purchased ratio. Paper: 4,621 / 2,500 ≈ 1.85.
    pub overdelivery: f64,
    /// Unique IPs / delivered visits. Paper: 2,685 / 4,621 ≈ 0.58.
    pub ip_diversity: f64,
    /// Delivery window in seconds ("in less than an hour").
    pub window_secs: u64,
}

impl Default for DeliveryModel {
    fn default() -> Self {
        DeliveryModel { overdelivery: 4_621.0 / 2_500.0, ip_diversity: 2_685.0 / 4_621.0, window_secs: 3_540 }
    }
}

impl DeliveryModel {
    /// Generates the visit stream for a campaign purchase of
    /// `visits_purchased`, starting at `start`.
    ///
    /// Visits arrive uniformly inside the window; the IP pool size is
    /// `ip_diversity × delivered`, and pool members are reused with a
    /// mild skew (real exchange members surf repeatedly).
    pub fn deliver(&self, visits_purchased: u64, start: u64, rng: &mut StdRng) -> Vec<VisitEvent> {
        let delivered = (visits_purchased as f64 * self.overdelivery).round() as u64;
        let pool_size = ((delivered as f64 * self.ip_diversity).round() as u64).max(1);
        let country_weights: Vec<f64> = VISITOR_COUNTRIES.iter().map(|(_, w)| *w).collect();

        let mut events = Vec::with_capacity(delivered as usize);
        for _ in 0..delivered {
            let at = start + rng.gen_range(0..self.window_secs);
            // Skew reuse toward low pool indices: square a uniform draw.
            let u: f64 = rng.gen();
            let idx = ((u * u) * pool_size as f64) as u64 % pool_size;
            let country = VISITOR_COUNTRIES[pick_weighted(rng, &country_weights)].0.to_string();
            events.push(VisitEvent { at, ip: format!("ip-{idx}"), country });
        }
        events.sort_by_key(|e| e.at);
        events
    }
}

/// Summary of a delivered campaign, as the paper reports it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeliveryReport {
    /// Visits purchased.
    pub purchased: u64,
    /// Visits actually delivered.
    pub delivered: u64,
    /// Unique IP addresses observed.
    pub unique_ips: u64,
    /// Seconds from first to last visit.
    pub span_secs: u64,
}

/// Summarizes a visit stream.
pub fn summarize(purchased: u64, events: &[VisitEvent]) -> DeliveryReport {
    let unique_ips = {
        let mut ips: Vec<&str> = events.iter().map(|e| e.ip.as_str()).collect();
        ips.sort_unstable();
        ips.dedup();
        ips.len() as u64
    };
    let span_secs = match (events.first(), events.last()) {
        (Some(first), Some(last)) => last.at - first.at,
        _ => 0,
    };
    DeliveryReport { purchased, delivered: events.len() as u64, unique_ips, span_secs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slum_websim::rng::seeded;

    #[test]
    fn campaign_activity_window() {
        let c = Campaign {
            target: Url::http("dummy.example.com", "/"),
            visits_purchased: 2_500,
            dollars: 5,
            start: 100,
            end: 200,
            boost: 50.0,
        };
        assert!(!c.active_at(99));
        assert!(c.active_at(100));
        assert!(c.active_at(199));
        assert!(!c.active_at(200));
        assert_eq!(c.duration(), 100);
    }

    #[test]
    fn delivery_reproduces_paper_experiment_shape() {
        // Purchase 2,500 visits for $5; expect ≈4,621 delivered from
        // ≈2,685 unique IPs within an hour.
        let mut rng = seeded(2016);
        let model = DeliveryModel::default();
        let events = model.deliver(2_500, 0, &mut rng);
        let report = summarize(2_500, &events);

        assert_eq!(report.delivered, 4_621, "overdelivery factor fixed by model");
        assert!(report.span_secs < 3_600, "within an hour: {}", report.span_secs);
        let ip_ratio = report.unique_ips as f64 / report.delivered as f64;
        assert!(
            (0.40..0.70).contains(&ip_ratio),
            "IP diversity {ip_ratio} should be near the paper's 0.58"
        );
        assert!(report.unique_ips > 1_800 && report.unique_ips < 2_900, "{}", report.unique_ips);
    }

    #[test]
    fn events_sorted_by_time() {
        let mut rng = seeded(7);
        let events = DeliveryModel::default().deliver(100, 500, &mut rng);
        assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(events.iter().all(|e| e.at >= 500));
    }

    #[test]
    fn deterministic_given_seed() {
        let model = DeliveryModel::default();
        let a = model.deliver(50, 0, &mut seeded(1));
        let b = model.deliver(50, 0, &mut seeded(1));
        assert_eq!(a, b);
    }

    #[test]
    fn usa_dominates_visitor_countries() {
        let mut rng = seeded(3);
        let events = DeliveryModel::default().deliver(2_000, 0, &mut rng);
        let usa = events.iter().filter(|e| e.country == "USA").count();
        assert!(usa * 2 > events.len() / 2, "USA must be the plurality country");
    }

    #[test]
    fn summarize_empty_stream() {
        let r = summarize(10, &[]);
        assert_eq!(r.delivered, 0);
        assert_eq!(r.unique_ips, 0);
        assert_eq!(r.span_secs, 0);
    }
}
