//! CAPTCHA gating for manual-surf exchanges.
//!
//! Manual-surf exchanges require the user to "manually click and open
//! websites, often after solving CAPTCHAs or other puzzles" (§II-A,
//! Figure 1(b)). We model a simple deterministic challenge family whose
//! difficulty knob controls how often a scripted operator fails.

use serde::{Deserialize, Serialize};

/// A CAPTCHA challenge.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Captcha {
    /// Challenge nonce (renders as "select image #n" in the UI fiction).
    pub nonce: u64,
    /// Arithmetic payload: the user must answer `a + b`.
    pub a: u32,
    /// Second operand.
    pub b: u32,
}

impl Captcha {
    /// Generates the deterministic challenge for `nonce`.
    pub fn for_nonce(nonce: u64) -> Captcha {
        // Mix the nonce so consecutive challenges differ in both fields.
        let mixed = nonce.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Captcha { nonce, a: (mixed >> 7) as u32 % 90 + 10, b: (mixed >> 19) as u32 % 90 + 10 }
    }

    /// The correct answer.
    pub fn answer(&self) -> u32 {
        self.a + self.b
    }

    /// Verifies an attempt.
    pub fn verify(&self, attempt: u32) -> bool {
        attempt == self.answer()
    }
}

/// Outcome of a gated action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaptchaOutcome {
    /// Passed; page credit granted.
    Passed,
    /// Failed; the exchange re-issues a new challenge and grants nothing.
    Failed,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_nonce() {
        assert_eq!(Captcha::for_nonce(5), Captcha::for_nonce(5));
        assert_ne!(Captcha::for_nonce(5), Captcha::for_nonce(6));
    }

    #[test]
    fn verify_accepts_only_answer() {
        let c = Captcha::for_nonce(42);
        assert!(c.verify(c.answer()));
        assert!(!c.verify(c.answer() + 1));
        assert!(!c.verify(0));
    }

    #[test]
    fn operands_are_two_digit() {
        for n in 0..200 {
            let c = Captcha::for_nonce(n);
            assert!((10..100).contains(&c.a), "a={}", c.a);
            assert!((10..100).contains(&c.b), "b={}", c.b);
        }
    }
}
