//! Anti-abuse machinery: the one-account-per-IP rule and parallel-session
//! detection.
//!
//! §II-A: "traffic exchanges enforce the use of only one account per IP
//! address. For example, Otohits prohibits multiple sessions from an
//! account and suspends the account in case of a violation. However,
//! some traffic exchanges do allow account logins from multiple IP
//! addresses." Both policies are modelled; users evading via
//! proxies/VPNs show up as distinct IPs and pass the check, exactly the
//! loophole the paper describes.

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};

use crate::economy::AccountId;

/// A visitor IP address (opaque token; the simulation never routes).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IpAddr(pub String);

impl IpAddr {
    /// Convenience constructor.
    pub fn new(s: impl Into<String>) -> Self {
        IpAddr(s.into())
    }
}

/// Session admission policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SessionPolicy {
    /// Otohits-style: one concurrent session per account; a second
    /// parallel session suspends the account.
    SingleSessionStrict,
    /// Lenient: multiple logins allowed (some exchanges permit this).
    MultiSession,
}

/// Result of asking to open a session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Admission {
    /// Session opened.
    Granted {
        /// Token to present on close.
        session: SessionToken,
    },
    /// Rejected and the account suspended (strict policy violation).
    RejectedAndSuspended,
    /// Rejected because another account already claimed this IP.
    RejectedIpInUse {
        /// The account holding the IP.
        holder: AccountId,
    },
}

/// Opaque session token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SessionToken(pub u64);

/// Tracks live sessions and IP claims.
#[derive(Debug)]
pub struct SessionTracker {
    policy: SessionPolicy,
    next_token: u64,
    /// account → live sessions.
    live: HashMap<AccountId, HashSet<SessionToken>>,
    /// IP → the account that first claimed it (one-account-per-IP).
    ip_claims: HashMap<IpAddr, AccountId>,
    /// Accounts this tracker has suspended (the ledger is informed by
    /// the caller).
    suspended: HashSet<AccountId>,
}

impl SessionTracker {
    /// Creates a tracker with the given policy.
    pub fn new(policy: SessionPolicy) -> Self {
        SessionTracker {
            policy,
            next_token: 1,
            live: HashMap::new(),
            ip_claims: HashMap::new(),
            suspended: HashSet::new(),
        }
    }

    /// Attempts to open a surf session for `account` from `ip`.
    pub fn open_session(&mut self, account: AccountId, ip: IpAddr) -> Admission {
        if self.suspended.contains(&account) {
            return Admission::RejectedAndSuspended;
        }
        // One account per IP: an IP may only ever serve one account.
        if let Some(&holder) = self.ip_claims.get(&ip) {
            if holder != account {
                return Admission::RejectedIpInUse { holder };
            }
        }
        let has_live = self.live.get(&account).is_some_and(|s| !s.is_empty());
        if has_live && self.policy == SessionPolicy::SingleSessionStrict {
            // Otohits behaviour: detect the parallel session, suspend.
            self.suspended.insert(account);
            self.live.remove(&account);
            return Admission::RejectedAndSuspended;
        }
        let token = SessionToken(self.next_token);
        self.next_token += 1;
        self.live.entry(account).or_default().insert(token);
        self.ip_claims.insert(ip, account);
        Admission::Granted { session: token }
    }

    /// Closes a session.
    pub fn close_session(&mut self, account: AccountId, token: SessionToken) {
        if let Some(set) = self.live.get_mut(&account) {
            set.remove(&token);
        }
    }

    /// True when the tracker has suspended the account.
    pub fn is_suspended(&self, account: AccountId) -> bool {
        self.suspended.contains(&account)
    }

    /// Number of live sessions for an account.
    pub fn live_sessions(&self, account: AccountId) -> usize {
        self.live.get(&account).map(HashSet::len).unwrap_or(0)
    }

    /// Number of distinct IPs ever seen.
    pub fn distinct_ips(&self) -> usize {
        self.ip_claims.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acct(n: u64) -> AccountId {
        AccountId(n)
    }

    #[test]
    fn single_session_granted() {
        let mut t = SessionTracker::new(SessionPolicy::SingleSessionStrict);
        assert!(matches!(t.open_session(acct(1), IpAddr::new("10.0.0.1")), Admission::Granted { .. }));
        assert_eq!(t.live_sessions(acct(1)), 1);
    }

    #[test]
    fn parallel_session_suspends_under_strict_policy() {
        // The Otohits screenshot: second parallel session → suspension.
        let mut t = SessionTracker::new(SessionPolicy::SingleSessionStrict);
        t.open_session(acct(1), IpAddr::new("10.0.0.1"));
        let second = t.open_session(acct(1), IpAddr::new("10.0.0.2"));
        assert_eq!(second, Admission::RejectedAndSuspended);
        assert!(t.is_suspended(acct(1)));
        // And the account stays locked out.
        assert_eq!(
            t.open_session(acct(1), IpAddr::new("10.0.0.3")),
            Admission::RejectedAndSuspended
        );
    }

    #[test]
    fn multi_session_policy_allows_parallel() {
        let mut t = SessionTracker::new(SessionPolicy::MultiSession);
        t.open_session(acct(1), IpAddr::new("10.0.0.1"));
        assert!(matches!(
            t.open_session(acct(1), IpAddr::new("10.0.0.2")),
            Admission::Granted { .. }
        ));
        assert_eq!(t.live_sessions(acct(1)), 2);
    }

    #[test]
    fn one_account_per_ip_enforced() {
        let mut t = SessionTracker::new(SessionPolicy::MultiSession);
        t.open_session(acct(1), IpAddr::new("10.9.9.9"));
        let other = t.open_session(acct(2), IpAddr::new("10.9.9.9"));
        assert_eq!(other, Admission::RejectedIpInUse { holder: acct(1) });
    }

    #[test]
    fn sequential_sessions_allowed_after_close() {
        let mut t = SessionTracker::new(SessionPolicy::SingleSessionStrict);
        let Admission::Granted { session } = t.open_session(acct(1), IpAddr::new("10.0.0.1"))
        else {
            panic!("first session must open");
        };
        t.close_session(acct(1), session);
        assert!(matches!(
            t.open_session(acct(1), IpAddr::new("10.0.0.1")),
            Admission::Granted { .. }
        ));
        assert!(!t.is_suspended(acct(1)));
    }

    #[test]
    fn vpn_evasion_passes_ip_check() {
        // Users with proxies/VPNs present fresh IPs and the per-IP check
        // cannot link them — the loophole §II-A notes.
        let mut t = SessionTracker::new(SessionPolicy::MultiSession);
        for i in 0..5 {
            let admission = t.open_session(acct(100 + i), IpAddr::new(format!("172.16.0.{i}")));
            assert!(matches!(admission, Admission::Granted { .. }));
        }
        assert_eq!(t.distinct_ips(), 5);
    }
}
