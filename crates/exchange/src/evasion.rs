//! Multi-account evasion via proxies/VPNs (§II-A).
//!
//! "To ensure a diverse IP pool, traffic exchanges enforce the use of
//! only one account per IP address. ... Users can use proxies and VPN
//! services to acquire multiple IP addresses and increase their
//! earnings." This module models the evader — one human running several
//! accounts through a proxy pool — and the behavioural correlation an
//! exchange can run to catch what the per-IP rule cannot.

use rand::rngs::StdRng;
use rand::Rng;

use crate::antiabuse::{Admission, IpAddr, SessionTracker};
use crate::economy::AccountId;

/// One sock-puppet farm: a single operator, several accounts, a proxy
/// pool that hands each account a distinct IP.
#[derive(Debug, Clone)]
pub struct ProxyFarm {
    /// Accounts under one operator's control.
    pub accounts: Vec<AccountId>,
    /// Proxy-pool IPs, one per account.
    pub proxy_ips: Vec<IpAddr>,
}

impl ProxyFarm {
    /// Provisions a farm of `n` accounts with fresh proxy IPs.
    pub fn provision(operator_id: u64, n: usize, next_account_id: u64) -> ProxyFarm {
        ProxyFarm {
            accounts: (0..n as u64).map(|i| AccountId(next_account_id + i)).collect(),
            proxy_ips: (0..n)
                .map(|i| IpAddr::new(format!("proxy-{operator_id}-{i}")))
                .collect(),
        }
    }

    /// Opens one session per account through the proxy pool. Returns the
    /// number admitted — with distinct proxy IPs, the per-IP rule admits
    /// them all (the loophole the paper describes).
    pub fn open_all(&self, tracker: &mut SessionTracker) -> usize {
        self.accounts
            .iter()
            .zip(&self.proxy_ips)
            .filter(|(account, ip)| {
                matches!(
                    tracker.open_session(**account, (*ip).clone()),
                    Admission::Granted { .. }
                )
            })
            .count()
    }
}

/// A surf-timing trace: the virtual timestamps at which an account
/// advanced its surfbar. Behavioural detection keys on these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SurfTrace {
    /// Owning account.
    pub account: AccountId,
    /// Page-advance timestamps, ascending.
    pub ticks: Vec<u64>,
}

impl SurfTrace {
    /// Generates an organic trace: a human with personal jitter.
    pub fn organic(account: AccountId, pages: usize, rng: &mut StdRng) -> SurfTrace {
        let mut ticks = Vec::with_capacity(pages);
        let mut t = rng.gen_range(0..120u64);
        for _ in 0..pages {
            t += rng.gen_range(25..95);
            ticks.push(t);
        }
        SurfTrace { account, ticks }
    }

    /// Generates the traces of a proxy farm: one automation loop drives
    /// every account, so the traces are near-identical up to a small
    /// offset.
    pub fn farmed(farm: &ProxyFarm, pages: usize, rng: &mut StdRng) -> Vec<SurfTrace> {
        let base: Vec<u64> = {
            let mut t = rng.gen_range(0..120u64);
            (0..pages)
                .map(|_| {
                    t += 30;
                    t
                })
                .collect()
        };
        farm.accounts
            .iter()
            .enumerate()
            .map(|(i, &account)| SurfTrace {
                account,
                ticks: base.iter().map(|t| t + i as u64).collect(),
            })
            .collect()
    }
}

/// Pairwise timing correlation in `[0, 1]`: the fraction of ticks of the
/// shorter trace that land within `tolerance` seconds of a tick of the
/// other.
pub fn trace_correlation(a: &SurfTrace, b: &SurfTrace, tolerance: u64) -> f64 {
    let (short, long) = if a.ticks.len() <= b.ticks.len() { (a, b) } else { (b, a) };
    if short.ticks.is_empty() {
        return 0.0;
    }
    let mut matched = 0usize;
    let mut j = 0usize;
    for &t in &short.ticks {
        while j < long.ticks.len() && long.ticks[j] + tolerance < t {
            j += 1;
        }
        if j < long.ticks.len() && long.ticks[j] <= t + tolerance {
            matched += 1;
        }
    }
    matched as f64 / short.ticks.len() as f64
}

/// Behavioural farm detection: clusters accounts whose surf timing
/// correlates above `threshold`. Returns groups of ≥2 accounts
/// (suspected farms).
pub fn detect_farms(
    traces: &[SurfTrace],
    tolerance: u64,
    threshold: f64,
) -> Vec<Vec<AccountId>> {
    let n = traces.len();
    let mut group_of: Vec<Option<usize>> = vec![None; n];
    let mut groups: Vec<Vec<AccountId>> = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            if trace_correlation(&traces[i], &traces[j], tolerance) >= threshold {
                match (group_of[i], group_of[j]) {
                    (Some(g), _) => {
                        if group_of[j].is_none() {
                            groups[g].push(traces[j].account);
                            group_of[j] = Some(g);
                        }
                    }
                    (None, Some(g)) => {
                        groups[g].push(traces[i].account);
                        group_of[i] = Some(g);
                    }
                    (None, None) => {
                        groups.push(vec![traces[i].account, traces[j].account]);
                        group_of[i] = Some(groups.len() - 1);
                        group_of[j] = Some(groups.len() - 1);
                    }
                }
            }
        }
    }
    groups.retain(|g| g.len() >= 2);
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::antiabuse::SessionPolicy;
    use slum_websim::rng::seeded;

    #[test]
    fn proxy_farm_defeats_per_ip_rule() {
        let farm = ProxyFarm::provision(1, 5, 100);
        let mut tracker = SessionTracker::new(SessionPolicy::SingleSessionStrict);
        let admitted = farm.open_all(&mut tracker);
        assert_eq!(admitted, 5, "distinct proxy IPs all pass the per-IP check");
        assert_eq!(tracker.distinct_ips(), 5);
    }

    #[test]
    fn same_ip_farm_is_blocked() {
        // Without proxies the second account is refused on the shared IP.
        let mut tracker = SessionTracker::new(SessionPolicy::SingleSessionStrict);
        let ip = IpAddr::new("home-dsl");
        assert!(matches!(
            tracker.open_session(AccountId(1), ip.clone()),
            Admission::Granted { .. }
        ));
        assert_eq!(
            tracker.open_session(AccountId(2), ip),
            Admission::RejectedIpInUse { holder: AccountId(1) }
        );
    }

    #[test]
    fn farmed_traces_correlate_organic_do_not() {
        let mut rng = seeded(9);
        let farm = ProxyFarm::provision(1, 3, 100);
        let farmed = SurfTrace::farmed(&farm, 60, &mut rng);
        let organic_a = SurfTrace::organic(AccountId(1), 60, &mut rng);
        let organic_b = SurfTrace::organic(AccountId(2), 60, &mut rng);

        assert!(trace_correlation(&farmed[0], &farmed[1], 3) > 0.9);
        assert!(trace_correlation(&farmed[0], &farmed[2], 3) > 0.9);
        // Organic humans drift apart quickly at a 3s tolerance.
        assert!(trace_correlation(&organic_a, &organic_b, 3) < 0.7);
    }

    #[test]
    fn detector_clusters_the_farm_only() {
        let mut rng = seeded(10);
        let farm = ProxyFarm::provision(7, 4, 200);
        let mut traces = SurfTrace::farmed(&farm, 80, &mut rng);
        for i in 0..6 {
            traces.push(SurfTrace::organic(AccountId(i), 80, &mut rng));
        }
        let farms = detect_farms(&traces, 3, 0.9);
        assert_eq!(farms.len(), 1, "exactly one farm: {farms:?}");
        let mut detected = farms[0].clone();
        detected.sort();
        assert_eq!(detected, farm.accounts);
    }

    #[test]
    fn empty_and_singleton_traces_handled() {
        let empty = SurfTrace { account: AccountId(1), ticks: vec![] };
        let one = SurfTrace { account: AccountId(2), ticks: vec![10] };
        assert_eq!(trace_correlation(&empty, &one, 5), 0.0);
        assert!(detect_farms(&[empty, one], 5, 0.9).is_empty());
    }
}
