//! # slum-exchange
//!
//! A traffic-exchange simulator for the `malware-slums` reproduction of
//! *Malware Slums* (DSN 2016).
//!
//! The paper measured nine live exchanges — five auto-surf (Otohits,
//! ManyHit, SendSurf, Smiley Traffic, 10KHits) and four manual-surf
//! (Cash N Hits, Easyhits4u, Traffic Monsoon, Hit2Hit). This crate
//! models the member-visible machinery of such services:
//!
//! - the **credit economy**: earn credits by surfing, spend them on
//!   visits, or buy them for cash ([`economy`]);
//! - **surf sessions**: auto-surf streams that rotate member sites on a
//!   timer, and manual-surf flows gated by CAPTCHAs ([`exchange`],
//!   [`captcha`]);
//! - **anti-abuse**: the one-account-per-IP rule and parallel-session
//!   suspension the paper screenshots on Otohits ([`antiabuse`]);
//! - **lifecycle faults**: seeded, deterministic outage / ban /
//!   CAPTCHA-lockout / permanent-shutdown schedules modelling the
//!   operational hazards of a months-long crawl ([`lifecycle`]);
//! - **paid campaigns**: fixed-duration weight boosts that produce the
//!   bursty malicious-URL arrivals of Figure 3(b), and the
//!   $5-for-2500-visits burst-validation experiment ([`campaign`]);
//! - **calibration profiles** for all nine exchanges, carrying the
//!   Table I/II marginals ([`params`]).
//!
//! [`setup::build_exchange`] wires an exchange to a
//! [`slum_websim::build::WebBuilder`], installing its member-site
//! population into the synthetic web.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod antiabuse;
pub mod campaign;
pub mod captcha;
pub mod economy;
pub mod evasion;
pub mod exchange;
pub mod lifecycle;
pub mod monetize;
pub mod params;
pub mod setup;
pub mod source;

pub use exchange::{Exchange, ExchangeKind, Listing, SurfStep};
pub use params::{ExchangeProfile, PROFILES};
pub use setup::build_exchange;
pub use source::TrafficSource;
