//! The [`TrafficSource`] trait: the substrate contract the crawler
//! drives.
//!
//! The crawl loop in `slum-crawler` was originally hard-wired to the
//! concrete [`Exchange`]. Everything it actually consumed turns out to
//! be a narrow surface — a name, a pacing class, a step stream and a
//! CAPTCHA nonce — so that surface is extracted here as a trait. Any
//! ecosystem that can answer "where does the visitor go next, and how
//! long must they stay?" can feed the same crawl → scan → analysis
//! pipeline: traffic exchanges (this crate), ad networks
//! (`slum-adnet`), torrent index sites (`slum-torrent`), or whatever
//! comes after.
//!
//! # Contract
//!
//! A `TrafficSource` is a *deterministic generator of surf steps* on a
//! virtual clock. The crawler owns the RNG, the clock and all fault
//! machinery; the source owns only its rotation state. Specifically:
//!
//! - **Step stream** — [`next_step`](TrafficSource::next_step) is
//!   called once per surf slot with the current virtual time and the
//!   cursor's RNG, and returns the [`SurfStep`] to visit (entry URL,
//!   minimum dwell, optional CAPTCHA challenge, campaign-boost flag).
//! - **Pacing** — [`kind`](TrafficSource::kind) and
//!   [`min_surf_secs`](TrafficSource::min_surf_secs) tell the crawler
//!   whether steps are clicked through by an operator (manual-surf:
//!   clicks enabled, CAPTCHAs expected, slower) or rotate passively
//!   (auto-surf: `without_click`, no CAPTCHA gate).
//! - **Lifecycle faults** — the crawler compiles outage/ban/lockout/
//!   shutdown schedules *outside* the source, keyed only on
//!   [`name`](TrafficSource::name), [`kind`](TrafficSource::kind) and
//!   the planned span. Sources never model their own downtime.
//! - **Seeded determinism** — all randomness a source consumes MUST
//!   come from the `&mut StdRng` handed to `next_step`, and the number
//!   and order of draws for a given `(state, t)` must be a pure
//!   function of that state. Together with the serializable
//!   side-channel state (the CAPTCHA nonce, restored via
//!   [`restore_captcha_nonce`](TrafficSource::restore_captcha_nonce)
//!   on checkpoint resume) this is what makes kill+resume, worker
//!   fan-out and streaming overlap bit-identical: the crawler can
//!   snapshot *its* cursor and reconstruct *your* stream.
//!
//! Sources are rebuilt from the study seed on resume, so everything a
//! source derives from its construction inputs is already reproducible;
//! only state that advances per-step (like the CAPTCHA nonce) needs the
//! explicit save/restore hooks.

use rand::rngs::StdRng;

use crate::exchange::{Exchange, ExchangeKind, SurfStep};

/// A crawlable traffic substrate: a deterministic stream of surf steps
/// plus the pacing and bookkeeping hooks the crawl loop needs.
///
/// See the [module docs](self) for the full contract.
pub trait TrafficSource {
    /// Stable display name; also the key under which lifecycle fault
    /// schedules, retry decisions and crawl records are filed.
    fn name(&self) -> &str;

    /// Pacing class: manual-surf sources get operator clicks and
    /// CAPTCHA handling, auto-surf sources rotate passively.
    fn kind(&self) -> ExchangeKind;

    /// Minimum dwell the source enforces per page, in virtual seconds.
    fn min_surf_secs(&self) -> u32;

    /// Produces the next surf step at virtual time `t`. All randomness
    /// must be drawn from `rng`, in an order that is a pure function of
    /// the source's state and `t`.
    fn next_step(&mut self, t: u64, rng: &mut StdRng) -> SurfStep;

    /// Monotonic counter of CAPTCHA challenges issued so far, snapshot
    /// into the crawl cursor at checkpoint time.
    fn captcha_nonce(&self) -> u64;

    /// Restores the CAPTCHA counter from a checkpointed cursor so the
    /// resumed stream issues the same challenges as an uninterrupted
    /// run.
    fn restore_captcha_nonce(&mut self, nonce: u64);
}

impl TrafficSource for Exchange {
    fn name(&self) -> &str {
        Exchange::name(self)
    }

    fn kind(&self) -> ExchangeKind {
        Exchange::kind(self)
    }

    fn min_surf_secs(&self) -> u32 {
        Exchange::min_surf_secs(self)
    }

    fn next_step(&mut self, t: u64, rng: &mut StdRng) -> SurfStep {
        Exchange::next_step(self, t, rng)
    }

    fn captcha_nonce(&self) -> u64 {
        Exchange::captcha_nonce(self)
    }

    fn restore_captcha_nonce(&mut self, nonce: u64) {
        Exchange::restore_captcha_nonce(self, nonce)
    }
}

/// Boxed sources forward to their contents, so heterogeneous substrate
/// dispatch (`Vec<Box<dyn TrafficSource + Send>>`) crawls identically
/// to the concrete type.
impl<T: TrafficSource + ?Sized> TrafficSource for Box<T> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn kind(&self) -> ExchangeKind {
        (**self).kind()
    }

    fn min_surf_secs(&self) -> u32 {
        (**self).min_surf_secs()
    }

    fn next_step(&mut self, t: u64, rng: &mut StdRng) -> SurfStep {
        (**self).next_step(t, rng)
    }

    fn captcha_nonce(&self) -> u64 {
        (**self).captcha_nonce()
    }

    fn restore_captcha_nonce(&mut self, nonce: u64) {
        (**self).restore_captcha_nonce(nonce)
    }
}

#[cfg(test)]
mod tests {
    use rand::SeedableRng;

    use super::*;
    use crate::setup::build_all_exchanges;
    use slum_websim::build::WebBuilder;

    /// The trait impl must be a pure delegation: same draws, same step.
    #[test]
    fn exchange_trait_delegation_is_exact() {
        let mut builder = WebBuilder::new(99);
        let mut a = build_all_exchanges(&mut builder, 0.03, 600);
        let mut builder2 = WebBuilder::new(99);
        let mut b = build_all_exchanges(&mut builder2, 0.03, 600);

        let ex_a = &mut a[0];
        let ex_b = &mut b[0];
        let mut rng_a = StdRng::seed_from_u64(7);
        let mut rng_b = StdRng::seed_from_u64(7);
        for t in 0..50u64 {
            let inherent = ex_a.next_step(t * 30, &mut rng_a);
            let via_trait = TrafficSource::next_step(ex_b, t * 30, &mut rng_b);
            assert_eq!(inherent.url, via_trait.url);
            assert_eq!(inherent.min_surf_secs, via_trait.min_surf_secs);
            assert_eq!(inherent.captcha.is_some(), via_trait.captcha.is_some());
            assert_eq!(inherent.campaign_boosted, via_trait.campaign_boosted);
        }
        assert_eq!(
            TrafficSource::captcha_nonce(&*ex_a),
            TrafficSource::captcha_nonce(&*ex_b)
        );
    }

    /// Boxing must not change the stream either.
    #[test]
    fn boxed_source_streams_identically() {
        let mut builder = WebBuilder::new(4242);
        let exchanges = build_all_exchanges(&mut builder, 0.03, 600);
        let mut builder2 = WebBuilder::new(4242);
        let exchanges2 = build_all_exchanges(&mut builder2, 0.03, 600);

        for (plain, boxed_src) in exchanges.into_iter().zip(exchanges2) {
            let mut plain = plain;
            let mut boxed: Box<dyn TrafficSource + Send> = Box::new(boxed_src);
            assert_eq!(TrafficSource::name(&plain), boxed.name());
            assert_eq!(TrafficSource::kind(&plain), boxed.kind());
            let mut rng_a = StdRng::seed_from_u64(11);
            let mut rng_b = StdRng::seed_from_u64(11);
            for t in 0..20u64 {
                let a = TrafficSource::next_step(&mut plain, t * 45, &mut rng_a);
                let b = boxed.next_step(t * 45, &mut rng_b);
                assert_eq!(a.url, b.url);
            }
        }
    }
}
