//! Wires an [`Exchange`] to the synthetic web: installs its member-site
//! population and calibrates rotation weights so the crawl statistics
//! land on the paper's marginals.

use rand::Rng;

use slum_websim::build::{BenignOptions, MaliciousOptions, WebBuilder};
use slum_websim::Url;

use crate::campaign::Campaign;
use crate::exchange::{Exchange, Listing};
use crate::params::ExchangeProfile;

/// Popular sites exchanges pad rotations with (§III-A names Google,
/// Facebook and YouTube). Installed once; shared across exchanges.
pub const POPULAR_HOSTS: [&str; 3] =
    ["google.popular.example", "facebook.popular.example", "youtube.popular.example"];

/// Fraction of crawl wall-time covered by paid-campaign bursts on
/// manual-surf exchanges, and the malicious share inside a burst. Both
/// drive the Figure 3(b) burst shape while keeping Table I's overall
/// malice fraction intact (see the calibration in [`build_exchange`]).
const BURST_TIME_SHARE: f64 = 0.08;
const BURST_MALICE_SHARE: f64 = 0.85;

/// Kinds of guaranteed listings (see the priority plan in
/// [`build_exchange`]). `Misc` carries its pinned TLD label; pinned
/// content categories ride alongside in the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ForcedKind {
    Misc(&'static str),
    Blacklisted,
    Js,
    Chain,
    Shortened,
    Flash,
}

/// Builds an exchange from its profile.
///
/// * `domain_scale` scales the Table II domain pool (1.0 = full size;
///   benches use ~0.05).
/// * `planned_virtual_secs` is the expected virtual duration of the
///   crawl; manual-surf campaign bursts are placed inside it.
///
/// Weight calibration: with `M` malicious and `B` benign listings and a
/// target malicious URL fraction `f` (Table I), benign listings get
/// weight 1 and malicious listings weight `f·B / ((1−f)·M)`, so the
/// expected share of regular rotations hitting malicious sites is `f`.
/// Manual-surf exchanges move part of that mass into fixed-duration
/// campaign bursts: the static share is lowered to
/// `(f − s·b) / (1 − s)` where `s` is the burst time share and `b` the
/// in-burst malice share, so the time-average still lands on `f`.
pub fn build_exchange(
    builder: &mut WebBuilder,
    profile: &ExchangeProfile,
    domain_scale: f64,
    planned_virtual_secs: u64,
) -> Exchange {
    let n_domains = ((profile.domains as f64 * domain_scale).round() as usize).max(12);
    // Guaranteed ("forced") listings keep every malware class present at
    // small domain scales, so Table IV and the §V case studies always
    // have material and the heavy-traffic miscellaneous mass cannot skew
    // Figure 6 — the priority list below is taken in order up to the
    // exchange's Table II malicious-domain budget. Weights (in units of
    // the base malicious weight) encode the paper's mix: the full list
    // yields Table III's categorized ratios (blacklisted 2.0 ≈ 70%, JS
    // 0.6 ≈ 21%, redirect 0.2 ≈ 7%, shortened 0.05, flash 0.02), a misc
    // share of 66% (§IV-A, 5.7 units spread over eight listings), and
    // misc TLDs in Figure 6 proportion.
    // Content categories are pinned proportionally to Figure 7
    // (Business 58.6 / Advertisement 21.8 / Entertainment 8.7 / IT 8.6 /
    // Others 2.6), for the same variance reason as the TLDs.
    use slum_websim::ContentCategory as Cc;
    let forced_plan: Vec<(ForcedKind, f64, Cc)> = vec![
        (ForcedKind::Misc("com"), 2.0, Cc::Business),
        (ForcedKind::Blacklisted, 1.0, Cc::Business),
        (ForcedKind::Misc("net"), 1.25, Cc::Business),
        (ForcedKind::Js, 0.6, Cc::Business),
        (ForcedKind::Misc("com"), 1.0, Cc::Advertisement),
        (ForcedKind::Blacklisted, 1.0, Cc::Advertisement),
        (ForcedKind::Chain, 0.2, Cc::Entertainment),
        (ForcedKind::Misc("com"), 0.7, Cc::InformationTechnology),
        (ForcedKind::Shortened, 0.015, Cc::Business),
        (ForcedKind::Misc("com"), 0.3, Cc::Entertainment),
        (ForcedKind::Misc("ru"), 0.28, Cc::Advertisement),
        (ForcedKind::Flash, 0.02, Cc::Entertainment),
        (ForcedKind::Misc("de"), 0.11, Cc::Entertainment),
        (ForcedKind::Misc("org"), 0.06, Cc::Other),
    ];
    let budget = ((n_domains as f64 * profile.malware_domain_fraction()).round() as usize)
        .clamp(2, n_domains.saturating_sub(2).max(2));
    let forced: Vec<(ForcedKind, f64, Cc)> =
        forced_plan.into_iter().take(budget).collect();
    let n_sampled = budget - forced.len();
    let n_benign = n_domains.saturating_sub(budget).max(2);

    let f = profile.malicious_fraction();
    // Static malice fraction after carving out burst mass (manual only).
    let f_static = if profile.campaign_bursts > 0 {
        ((f - BURST_TIME_SHARE * BURST_MALICE_SHARE) / (1.0 - BURST_TIME_SHARE)).max(0.005)
    } else {
        f
    };
    // Total malicious rotation mass in units of the base malicious
    // weight: sampled listings at 1.0 each plus the forced units.
    let forced_units: f64 = forced.iter().map(|(_, u, _)| u).sum();
    let malicious_units = n_sampled as f64 + forced_units;
    let malicious_weight = (f_static * n_benign as f64) / ((1.0 - f_static) * malicious_units);

    let mut listings = Vec::with_capacity(n_domains);
    for _ in 0..n_benign {
        let spec = builder.benign_site(BenignOptions::default());
        listings.push(Listing { url: spec.url, weight: 1.0, malicious: false });
    }
    for _ in 0..n_sampled {
        let spec = builder.malicious_site(MaliciousOptions::default());
        // Rare categories (shortened, Flash) must stay rare *per visit*:
        // on heavily-skewed exchanges (SendSurf's few malicious domains
        // carry ~26x benign traffic) a single full-weight shortened
        // listing would blow Table III's 0.5% out by an order of
        // magnitude, so sampled rare listings get capped weight.
        use slum_websim::MaliceKind;
        let unit = match spec.truth.malice_kind() {
            Some(MaliceKind::MaliciousShortened) | Some(MaliceKind::MaliciousFlash) => 0.1,
            _ => 1.0,
        };
        listings.push(Listing {
            url: spec.url,
            weight: malicious_weight * unit,
            malicious: true,
        });
    }
    {
        use slum_websim::{JsAttack, MaliceKind, Tld};
        for (kind, units, category) in &forced {
            let url = match kind {
                ForcedKind::Misc(tld) => {
                    builder
                        .malicious_site(MaliciousOptions {
                            kind: Some(MaliceKind::Misc),
                            tld: Some(Tld::from_label(tld)),
                            category: Some(*category),
                            ..Default::default()
                        })
                        .url
                }
                ForcedKind::Blacklisted => {
                    builder
                        .malicious_site(MaliciousOptions {
                            kind: Some(MaliceKind::Blacklisted),
                            category: Some(*category),
                            ..Default::default()
                        })
                        .url
                }
                ForcedKind::Js => {
                    builder
                        .malicious_site(MaliciousOptions {
                            kind: Some(MaliceKind::MaliciousJs(JsAttack::HiddenIframe)),
                            cloaked: Some(false),
                            category: Some(*category),
                            ..Default::default()
                        })
                        .url
                }
                ForcedKind::Chain => {
                    builder
                        .malicious_site(MaliciousOptions {
                            kind: Some(MaliceKind::SuspiciousRedirect),
                            category: Some(*category),
                            ..Default::default()
                        })
                        .url
                }
                ForcedKind::Shortened => builder.shortened_site(Tld::Com, *category).url,
                ForcedKind::Flash => builder.flash_site(Tld::Com, *category).url,
            };
            listings.push(Listing {
                url,
                weight: malicious_weight * units,
                malicious: true,
            });
        }
    }

    let home = builder.exchange_home(profile.host).url;
    let popular: Vec<Url> =
        POPULAR_HOSTS.iter().map(|h| builder.popular_site(h).url).collect();

    let mut exchange = Exchange::new(
        profile.name,
        profile.kind,
        home,
        popular,
        listings,
        profile.self_fraction(),
        profile.popular_fraction(),
        profile.min_surf_secs,
    );

    // Manual-surf exchanges: place campaign bursts across the crawl
    // window, each boosting one malicious listing hard enough to reach
    // the in-burst malice share.
    if profile.campaign_bursts > 0 {
        let bursts = profile.campaign_bursts as u64;
        let burst_total = (planned_virtual_secs as f64 * BURST_TIME_SHARE) as u64;
        let burst_len = (burst_total / bursts).max(60);
        // Campaign targets: full-weight malicious listings only. The
        // fractional-weight rare listings (shortened, Flash, chain) are
        // deliberately scarce in the URL stream; a campaign landing on
        // one would flood the corpus with a category the paper measures
        // at <1%.
        let malicious_urls: Vec<Url> = exchange
            .listings()
            .iter()
            .filter(|l| l.malicious && l.weight >= malicious_weight * 0.9)
            .map(|l| l.url.clone())
            .collect();
        // Boost so the boosted listing dominates: total static weight is
        // n_benign·1 + malicious_units·w; multiply by the odds ratio of
        // the desired in-burst share.
        let total_static: f64 = n_benign as f64 + malicious_units * malicious_weight;
        let boost = total_static * BURST_MALICE_SHARE / (1.0 - BURST_MALICE_SHARE);
        for i in 0..bursts {
            // Spread bursts over the middle 80% of the window.
            let center = planned_virtual_secs / 10
                + (i * 2 + 1) * (planned_virtual_secs * 8 / 10) / (2 * bursts);
            let start = center.saturating_sub(burst_len / 2);
            let target =
                malicious_urls[builder.rng().gen_range(0..malicious_urls.len())].clone();
            exchange.schedule_campaign(Campaign {
                target,
                visits_purchased: 2_500,
                dollars: 5,
                start,
                end: start + burst_len,
                boost,
            });
        }
    }
    exchange
}

/// Convenience: builds all nine paper exchanges into one web.
pub fn build_all_exchanges(
    builder: &mut WebBuilder,
    domain_scale: f64,
    planned_virtual_secs: u64,
) -> Vec<Exchange> {
    crate::params::PROFILES
        .iter()
        .map(|p| build_exchange(builder, p, domain_scale, planned_virtual_secs))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::profile;
    use slum_websim::rng::seeded;

    #[test]
    fn pool_sizes_respect_table2_fraction() {
        let mut b = WebBuilder::new(50);
        let p = profile("10KHits").unwrap();
        let x = build_exchange(&mut b, p, 0.05, 100_000);
        let malicious = x.listings().iter().filter(|l| l.malicious).count();
        let total = x.listings().len();
        let frac = malicious as f64 / total as f64;
        assert!(
            (frac - p.malware_domain_fraction()).abs() < 0.03,
            "domain malice fraction {frac} vs {}",
            p.malware_domain_fraction()
        );
    }

    #[test]
    fn rotation_malice_fraction_matches_table1_auto() {
        let mut b = WebBuilder::new(51);
        let p = profile("SendSurf").unwrap();
        let mut x = build_exchange(&mut b, p, 0.05, 100_000);
        let malicious_hosts: std::collections::BTreeSet<String> = x
            .listings()
            .iter()
            .filter(|l| l.malicious)
            .map(|l| l.url.host().to_string())
            .collect();
        let mut rng = seeded(9);
        let n = 30_000u64;
        let mut regular = 0u64;
        let mut malicious = 0u64;
        for t in 0..n {
            let step = x.next_step(t, &mut rng);
            let host = step.url.host().to_string();
            if host == p.host || POPULAR_HOSTS.contains(&host.as_str()) {
                continue;
            }
            regular += 1;
            if malicious_hosts.contains(&host) {
                malicious += 1;
            }
        }
        let frac = malicious as f64 / regular as f64;
        assert!(
            (frac - p.malicious_fraction()).abs() < 0.03,
            "SendSurf URL malice {frac} vs {}",
            p.malicious_fraction()
        );
    }

    #[test]
    fn manual_exchange_gets_campaigns_auto_does_not() {
        let mut b = WebBuilder::new(52);
        let manual = build_exchange(&mut b, profile("Traffic Monsoon").unwrap(), 0.1, 100_000);
        assert_eq!(manual.campaigns().len(), 4);
        let auto = build_exchange(&mut b, profile("Otohits").unwrap(), 0.1, 100_000);
        assert!(auto.campaigns().is_empty());
    }

    #[test]
    fn campaign_windows_inside_crawl() {
        let mut b = WebBuilder::new(53);
        let span = 200_000;
        let x = build_exchange(&mut b, profile("Cash N Hits").unwrap(), 0.1, span);
        for c in x.campaigns() {
            assert!(c.end <= span, "campaign [{}, {}) outside window", c.start, c.end);
            assert!(c.duration() >= 60);
        }
    }

    #[test]
    fn all_nine_build() {
        let mut b = WebBuilder::new(54);
        let exchanges = build_all_exchanges(&mut b, 0.02, 50_000);
        assert_eq!(exchanges.len(), 9);
        let web = b.finish();
        assert!(web.len() > 100, "population installed: {}", web.len());
        for x in &exchanges {
            assert!(!x.listings().is_empty());
        }
    }
}
