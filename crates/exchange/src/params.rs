//! Per-exchange calibration profiles, carrying the paper's Table I and
//! Table II marginals for all nine measured exchanges.

use serde::{Deserialize, Serialize};

use crate::exchange::ExchangeKind;

/// Calibration profile of one traffic exchange.
///
/// All counts are the paper's published Table I / Table II values; the
/// fractions the simulator actually consumes are derived by the accessor
/// methods so rounding stays in one place.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExchangeProfile {
    /// Exchange display name (paper's naming).
    pub name: &'static str,
    /// Simulated host for the exchange's own pages.
    pub host: &'static str,
    /// Auto-surf or manual-surf.
    pub kind: ExchangeKind,
    /// Table I: total URLs crawled.
    pub urls_crawled: u64,
    /// Table I: self-referral URL count.
    pub self_referrals: u64,
    /// Table I: popular-referral URL count.
    pub popular_referrals: u64,
    /// Table I: malicious URLs among regular URLs.
    pub malicious_urls: u64,
    /// Table II: distinct domains encountered.
    pub domains: u64,
    /// Table II: domains with at least one malicious URL.
    pub malware_domains: u64,
    /// Minimum surf seconds per page (paper: 10 s – 10 min across
    /// exchanges).
    pub min_surf_secs: u32,
    /// Number of paid-campaign bursts the exchange exhibits over the
    /// crawl window (drives Figure 3(b)'s bursts; 0 for the smooth
    /// auto-surf curves).
    pub campaign_bursts: u32,
}

impl ExchangeProfile {
    /// Table I: regular URLs (crawled − self − popular).
    pub fn regular_urls(&self) -> u64 {
        self.urls_crawled - self.self_referrals - self.popular_referrals
    }

    /// Fraction of crawled URLs that are self-referrals.
    pub fn self_fraction(&self) -> f64 {
        self.self_referrals as f64 / self.urls_crawled as f64
    }

    /// Fraction of crawled URLs that are popular referrals.
    pub fn popular_fraction(&self) -> f64 {
        self.popular_referrals as f64 / self.urls_crawled as f64
    }

    /// Fraction of *regular* URLs that are malicious (Table I's
    /// "% Malicious URLs" column).
    pub fn malicious_fraction(&self) -> f64 {
        self.malicious_urls as f64 / self.regular_urls() as f64
    }

    /// Fraction of domains hosting malware (Table II's "% Malware").
    pub fn malware_domain_fraction(&self) -> f64 {
        self.malware_domains as f64 / self.domains as f64
    }
}

/// The nine exchanges of the study, Table I order.
pub const PROFILES: [ExchangeProfile; 9] = [
    ExchangeProfile {
        name: "10KHits",
        host: "10khits.exchange.example",
        kind: ExchangeKind::AutoSurf,
        urls_crawled: 218_353,
        self_referrals: 13_663,
        popular_referrals: 24_328,
        malicious_urls: 61_015,
        domains: 4_823,
        malware_domains: 724,
        min_surf_secs: 51,
        campaign_bursts: 0,
    },
    ExchangeProfile {
        name: "ManyHits",
        host: "manyhit.exchange.example",
        kind: ExchangeKind::AutoSurf,
        urls_crawled: 178_939,
        self_referrals: 10_860,
        popular_referrals: 20_890,
        malicious_urls: 21_527,
        domains: 3_705,
        malware_domains: 522,
        min_surf_secs: 30,
        campaign_bursts: 0,
    },
    ExchangeProfile {
        name: "Smiley Traffic",
        host: "smileytraffic.exchange.example",
        kind: ExchangeKind::AutoSurf,
        urls_crawled: 244_677,
        self_referrals: 15_789,
        popular_referrals: 12_847,
        malicious_urls: 18_853,
        domains: 3_367,
        malware_domains: 320,
        min_surf_secs: 20,
        campaign_bursts: 0,
    },
    ExchangeProfile {
        name: "SendSurf",
        host: "sendsurf.exchange.example",
        kind: ExchangeKind::AutoSurf,
        urls_crawled: 246_967,
        self_referrals: 17_537,
        popular_referrals: 19_174,
        malicious_urls: 109_111,
        domains: 1_460,
        malware_domains: 63,
        min_surf_secs: 15,
        campaign_bursts: 0,
    },
    ExchangeProfile {
        name: "Otohits",
        host: "otohits.exchange.example",
        kind: ExchangeKind::AutoSurf,
        urls_crawled: 96_316,
        self_referrals: 52_167,
        popular_referrals: 9_336,
        malicious_urls: 2_571,
        domains: 2_106,
        malware_domains: 292,
        min_surf_secs: 10,
        campaign_bursts: 0,
    },
    ExchangeProfile {
        name: "Cash N Hits",
        host: "cashnhits.exchange.example",
        kind: ExchangeKind::ManualSurf,
        urls_crawled: 4_795,
        self_referrals: 416,
        popular_referrals: 298,
        malicious_urls: 418,
        domains: 614,
        malware_domains: 105,
        min_surf_secs: 30,
        campaign_bursts: 3,
    },
    ExchangeProfile {
        name: "Easyhits4u",
        host: "easyhits4u.exchange.example",
        kind: ExchangeKind::ManualSurf,
        urls_crawled: 4_638,
        self_referrals: 703,
        popular_referrals: 694,
        malicious_urls: 336,
        domains: 489,
        malware_domains: 70,
        min_surf_secs: 20,
        campaign_bursts: 2,
    },
    ExchangeProfile {
        name: "Hit2Hit",
        host: "hit2hit.exchange.example",
        kind: ExchangeKind::ManualSurf,
        urls_crawled: 3_355,
        self_referrals: 651,
        popular_referrals: 211,
        malicious_urls: 212,
        domains: 418,
        malware_domains: 68,
        min_surf_secs: 15,
        campaign_bursts: 2,
    },
    ExchangeProfile {
        name: "Traffic Monsoon",
        host: "trafficmonsoon.exchange.example",
        kind: ExchangeKind::ManualSurf,
        urls_crawled: 5_047,
        self_referrals: 540,
        popular_referrals: 549,
        malicious_urls: 484,
        domains: 466,
        malware_domains: 86,
        min_surf_secs: 60,
        campaign_bursts: 4,
    },
];

/// Looks a profile up by name.
pub fn profile(name: &str) -> Option<&'static ExchangeProfile> {
    PROFILES.iter().find(|p| p.name == name)
}

/// Paper-wide totals used by shape assertions: 1,003,087 crawled URLs,
/// 802,434 regular, 214,527 malicious (≈26.7%).
pub mod totals {
    /// Total URLs crawled across the nine exchanges.
    pub const URLS_CRAWLED: u64 = 1_003_087;
    /// Total regular URLs after referral filtering.
    pub const REGULAR_URLS: u64 = 802_434;
    /// Total malicious URLs detected.
    pub const MALICIOUS_URLS: u64 = 214_527;
    /// Distinct URLs in the corpus.
    pub const DISTINCT_URLS: u64 = 306_895;
    /// Distinct domains in the corpus.
    pub const DISTINCT_DOMAINS: u64 = 17_448;
    /// Malicious URLs lacking category detail (the misc bucket).
    pub const MISC_MALICIOUS_URLS: u64 = 142_405;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_totals_reconcile() {
        let crawled: u64 = PROFILES.iter().map(|p| p.urls_crawled).sum();
        assert_eq!(crawled, totals::URLS_CRAWLED);
        let regular: u64 = PROFILES.iter().map(|p| p.regular_urls()).sum();
        assert_eq!(regular, totals::REGULAR_URLS);
        let malicious: u64 = PROFILES.iter().map(|p| p.malicious_urls).sum();
        assert_eq!(malicious, totals::MALICIOUS_URLS);
    }

    #[test]
    fn overall_malice_rate_exceeds_26_percent() {
        let rate = totals::MALICIOUS_URLS as f64 / totals::REGULAR_URLS as f64;
        assert!(rate > 0.26, "paper's headline: >26% ({rate:.3})");
        assert!(rate < 0.28);
    }

    #[test]
    fn per_exchange_percentages_match_table1() {
        let expect = [
            ("10KHits", 0.338),
            ("ManyHits", 0.146),
            ("Smiley Traffic", 0.087),
            ("SendSurf", 0.519),
            ("Otohits", 0.074),
            ("Cash N Hits", 0.102),
            ("Easyhits4u", 0.104),
            ("Hit2Hit", 0.085),
            ("Traffic Monsoon", 0.122),
        ];
        for (name, frac) in expect {
            let p = profile(name).unwrap();
            assert!(
                (p.malicious_fraction() - frac).abs() < 0.001,
                "{name}: {} vs {frac}",
                p.malicious_fraction()
            );
        }
    }

    #[test]
    fn per_exchange_domain_percentages_match_table2() {
        let expect = [
            ("10KHits", 0.150),
            ("SendSurf", 0.043),
            ("Traffic Monsoon", 0.184),
        ];
        for (name, frac) in expect {
            let p = profile(name).unwrap();
            assert!(
                (p.malware_domain_fraction() - frac).abs() < 0.001,
                "{name}: {}",
                p.malware_domain_fraction()
            );
        }
    }

    #[test]
    fn sendsurf_is_the_outlier() {
        // SendSurf: highest URL malice (51.9%) but lowest domain malice
        // (4.3%) — few malicious domains, heavily surfed.
        let s = profile("SendSurf").unwrap();
        for p in &PROFILES {
            assert!(s.malicious_fraction() >= p.malicious_fraction());
            assert!(s.malware_domain_fraction() <= p.malware_domain_fraction());
        }
    }

    #[test]
    fn otohits_dominated_by_self_referrals() {
        let o = profile("Otohits").unwrap();
        assert!(o.self_fraction() > 0.5, "paper: 52,167 of 96,316");
    }

    #[test]
    fn kinds_partition_5_4() {
        let auto = PROFILES.iter().filter(|p| p.kind == ExchangeKind::AutoSurf).count();
        let manual = PROFILES.iter().filter(|p| p.kind == ExchangeKind::ManualSurf).count();
        assert_eq!((auto, manual), (5, 4));
    }

    #[test]
    fn manual_exchanges_have_bursts_auto_do_not() {
        for p in &PROFILES {
            match p.kind {
                ExchangeKind::AutoSurf => assert_eq!(p.campaign_bursts, 0, "{}", p.name),
                ExchangeKind::ManualSurf => assert!(p.campaign_bursts > 0, "{}", p.name),
            }
        }
    }

    #[test]
    fn unknown_profile_is_none() {
        assert!(profile("HitLeap").is_none());
    }
}
