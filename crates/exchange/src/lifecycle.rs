//! Exchange lifecycle faults: the operational hazards a months-long
//! crawl runs into on the *exchange* side.
//!
//! The paper's measurement outlived some of its subjects — Traffic
//! Monsoon was shut down by the SEC shortly after publication — and the
//! live services banned crawlers, locked accounts behind CAPTCHA walls,
//! and dropped surf sessions. This module models those hazards the same
//! way `slum-detect` models scanner faults: a [`LifecycleParams`] set
//! describes the hazard rates, and [`ExchangeLifecycle::compile`]
//! freezes a deterministic schedule for one exchange from a seed salt
//! and the planned crawl span, using stable hashing
//! ([`slum_websim::hash`]) so the schedule is a pure function of
//! `(salt, exchange name, span)` — independent of any RNG stream and of
//! crawl-worker scheduling.
//!
//! The crawler consults the compiled schedule on its virtual clock:
//! [`ExchangeLifecycle::fault_at`] says whether a surf step at time `t`
//! hits an outage/ban/lockout (or finds the exchange permanently gone),
//! and [`ExchangeLifecycle::drops_session`] decides per logged page
//! whether the surf session drops afterwards.

use slum_websim::hash::{chance, fnv1a};

/// What kind of lifecycle fault a surf step ran into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LifecycleFaultKind {
    /// The exchange is temporarily unreachable (service outage).
    Outage,
    /// The anti-abuse layer banned the crawler's account; the ban
    /// cools down after a window.
    Ban,
    /// A CAPTCHA wall locked the account out (manual-surf services
    /// throw these after suspicious solve patterns).
    CaptchaLockout,
    /// The exchange shut down permanently (à la Traffic Monsoon).
    Shutdown,
    /// The surf session dropped and had to be reopened.
    SessionDrop,
}

impl LifecycleFaultKind {
    /// Stable metric-segment name.
    pub fn name(self) -> &'static str {
        match self {
            LifecycleFaultKind::Outage => "outage",
            LifecycleFaultKind::Ban => "ban",
            LifecycleFaultKind::CaptchaLockout => "captcha_lockout",
            LifecycleFaultKind::Shutdown => "shutdown",
            LifecycleFaultKind::SessionDrop => "session_drop",
        }
    }
}

/// A lifecycle fault in effect at some virtual time, with the time at
/// which retrying starts working again.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LifecycleFault {
    /// What is blocking the crawl.
    pub kind: LifecycleFaultKind,
    /// Virtual second at which the fault clears. For
    /// [`LifecycleFaultKind::Shutdown`] this is `u64::MAX` — it never
    /// clears.
    pub clears_at_secs: u64,
}

/// Hazard rates for one class of exchange (auto-surf or manual-surf).
#[derive(Debug, Clone, PartialEq)]
pub struct LifecycleParams {
    /// Seeded temporary-outage windows across the crawl span.
    pub outage_windows: u32,
    /// Length of each outage window (virtual seconds).
    pub outage_secs: u64,
    /// Seeded anti-abuse ban windows across the crawl span.
    pub ban_windows: u32,
    /// Ban cooldown length (virtual seconds).
    pub ban_secs: u64,
    /// Seeded CAPTCHA-lockout windows across the crawl span.
    pub lockout_windows: u32,
    /// Lockout length (virtual seconds).
    pub lockout_secs: u64,
    /// Probability (per mille) that the exchange shuts down permanently
    /// somewhere inside the crawl span.
    pub shutdown_per_mille: u32,
    /// Probability (per mille) that the surf session drops after any
    /// given logged page.
    pub session_drop_per_mille: u32,
    /// Time to reopen a dropped session (virtual seconds).
    pub reconnect_secs: u64,
}

impl LifecycleParams {
    /// An exchange that never misbehaves.
    pub fn reliable() -> Self {
        LifecycleParams {
            outage_windows: 0,
            outage_secs: 0,
            ban_windows: 0,
            ban_secs: 0,
            lockout_windows: 0,
            lockout_secs: 0,
            shutdown_per_mille: 0,
            session_drop_per_mille: 0,
            reconnect_secs: 0,
        }
    }

    /// True when these parameters can never produce a fault.
    pub fn is_inert(&self) -> bool {
        self.outage_windows == 0
            && self.ban_windows == 0
            && self.lockout_windows == 0
            && self.shutdown_per_mille == 0
            && self.session_drop_per_mille == 0
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first invalid field:
    /// per-mille rates above 1000, or a window count with a zero window
    /// length (a schedule of zero-length windows would silently never
    /// fire).
    pub fn validate(&self) -> Result<(), String> {
        for (name, per_mille) in [
            ("shutdown_per_mille", self.shutdown_per_mille),
            ("session_drop_per_mille", self.session_drop_per_mille),
        ] {
            if per_mille > 1000 {
                return Err(format!("{name} is {per_mille}, must be <= 1000"));
            }
        }
        for (name, windows, secs) in [
            ("outage", self.outage_windows, self.outage_secs),
            ("ban", self.ban_windows, self.ban_secs),
            ("lockout", self.lockout_windows, self.lockout_secs),
        ] {
            if windows > 0 && secs == 0 {
                return Err(format!("{windows} {name} windows with zero length"));
            }
        }
        if self.session_drop_per_mille > 0 && self.reconnect_secs == 0 {
            return Err("session drops configured with zero reconnect time".to_string());
        }
        Ok(())
    }
}

/// One scheduled fault window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Window {
    start: u64,
    end: u64,
    kind: LifecycleFaultKind,
}

/// The compiled, deterministic lifecycle schedule for one exchange.
///
/// ```
/// use slum_exchange::lifecycle::{ExchangeLifecycle, LifecycleParams};
///
/// let params = LifecycleParams { outage_windows: 2, outage_secs: 60, ..LifecycleParams::reliable() };
/// let a = ExchangeLifecycle::compile(&params, 7, "Otohits", 10_000);
/// let b = ExchangeLifecycle::compile(&params, 7, "Otohits", 10_000);
/// assert_eq!(a.fault_at(5_000), b.fault_at(5_000), "pure function of inputs");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ExchangeLifecycle {
    name: String,
    salt: u64,
    windows: Vec<Window>,
    shutdown_at: Option<u64>,
    session_drop_per_mille: u32,
    reconnect_secs: u64,
}

impl ExchangeLifecycle {
    /// Compiles the schedule for the exchange called `name` over a
    /// crawl expected to span `span_secs` of virtual time. Window
    /// starts and the shutdown instant are seeded per `(salt, name)`
    /// and placed uniformly inside the span, so every window is
    /// actually reachable by the crawl.
    pub fn compile(params: &LifecycleParams, salt: u64, name: &str, span_secs: u64) -> Self {
        let span = span_secs.max(1);
        let mut windows = Vec::new();
        let mut schedule = |count: u32, secs: u64, tag: &str, kind: LifecycleFaultKind| {
            for w in 0..count {
                let start = fnv1a(format!("{salt}/{name}/{tag}/{w}").as_bytes()) % span;
                windows.push(Window { start, end: start.saturating_add(secs), kind });
            }
        };
        schedule(params.outage_windows, params.outage_secs, "outage", LifecycleFaultKind::Outage);
        schedule(params.ban_windows, params.ban_secs, "ban", LifecycleFaultKind::Ban);
        schedule(
            params.lockout_windows,
            params.lockout_secs,
            "lockout",
            LifecycleFaultKind::CaptchaLockout,
        );
        windows.sort_by_key(|w| (w.start, w.end, w.kind.name()));

        let shutdown_at = if chance(
            &format!("{salt}/{name}/shutdown"),
            params.shutdown_per_mille as f64 / 1000.0,
        ) {
            // Shut down in the back half of the span, so the dead
            // exchange still contributes a partial crawl (the paper's
            // Traffic Monsoon data predates its shutdown).
            let at = span / 2 + fnv1a(format!("{salt}/{name}/shutdown-at").as_bytes()) % (span / 2).max(1);
            Some(at)
        } else {
            None
        };

        ExchangeLifecycle {
            name: name.to_string(),
            salt,
            windows,
            shutdown_at,
            session_drop_per_mille: params.session_drop_per_mille,
            reconnect_secs: params.reconnect_secs,
        }
    }

    /// A schedule that never faults (used when no profile is active).
    pub fn inert(name: &str) -> Self {
        ExchangeLifecycle::compile(&LifecycleParams::reliable(), 0, name, 1)
    }

    /// The fault in effect at virtual second `t`, if any. Shutdown
    /// dominates (it never clears); overlapping windows resolve to the
    /// earliest-starting one, which is deterministic because the
    /// compiled windows are sorted.
    pub fn fault_at(&self, t: u64) -> Option<LifecycleFault> {
        if let Some(at) = self.shutdown_at {
            if t >= at {
                return Some(LifecycleFault {
                    kind: LifecycleFaultKind::Shutdown,
                    clears_at_secs: u64::MAX,
                });
            }
        }
        self.windows
            .iter()
            .find(|w| (w.start..w.end).contains(&t))
            .map(|w| LifecycleFault { kind: w.kind, clears_at_secs: w.end })
    }

    /// Whether the surf session drops after the page logged in slot
    /// `seq` — a pure function of `(salt, name, seq)`.
    pub fn drops_session(&self, seq: u64) -> bool {
        self.session_drop_per_mille > 0
            && chance(
                &format!("{}/{}/drop/{seq}", self.salt, self.name),
                self.session_drop_per_mille as f64 / 1000.0,
            )
    }

    /// Time to reopen a dropped session (virtual seconds).
    pub fn reconnect_secs(&self) -> u64 {
        self.reconnect_secs
    }

    /// Virtual second of the permanent shutdown, if one is scheduled.
    pub fn shutdown_at(&self) -> Option<u64> {
        self.shutdown_at
    }

    /// True when this schedule can never produce any fault.
    pub fn is_inert(&self) -> bool {
        self.windows.is_empty() && self.shutdown_at.is_none() && self.session_drop_per_mille == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hazardous() -> LifecycleParams {
        LifecycleParams {
            outage_windows: 3,
            outage_secs: 120,
            ban_windows: 1,
            ban_secs: 300,
            lockout_windows: 1,
            lockout_secs: 60,
            shutdown_per_mille: 0,
            session_drop_per_mille: 20,
            reconnect_secs: 15,
        }
    }

    #[test]
    fn compile_is_deterministic() {
        let a = ExchangeLifecycle::compile(&hazardous(), 42, "Otohits", 50_000);
        let b = ExchangeLifecycle::compile(&hazardous(), 42, "Otohits", 50_000);
        assert_eq!(a, b);
        let c = ExchangeLifecycle::compile(&hazardous(), 43, "Otohits", 50_000);
        assert_ne!(a, c, "salt must steer the schedule");
        let d = ExchangeLifecycle::compile(&hazardous(), 42, "Hit2Hit", 50_000);
        assert_ne!(a, d, "name must steer the schedule");
    }

    #[test]
    fn windows_land_inside_the_span() {
        let life = ExchangeLifecycle::compile(&hazardous(), 7, "SendSurf", 10_000);
        let mut hits = 0;
        for t in 0..10_000 {
            if let Some(fault) = life.fault_at(t) {
                assert_ne!(fault.kind, LifecycleFaultKind::Shutdown);
                assert!(fault.clears_at_secs > t);
                hits += 1;
            }
        }
        assert!(hits > 0, "five scheduled windows must cover some of the span");
    }

    #[test]
    fn certain_shutdown_fires_in_back_half_and_never_clears() {
        let params =
            LifecycleParams { shutdown_per_mille: 1000, ..LifecycleParams::reliable() };
        let life = ExchangeLifecycle::compile(&params, 3, "Traffic Monsoon", 40_000);
        let at = life.shutdown_at().expect("per-mille 1000 always shuts down");
        assert!((20_000..40_000).contains(&at), "back half: {at}");
        assert_eq!(life.fault_at(at.saturating_sub(1)), None);
        let fault = life.fault_at(at).expect("dead past the shutdown");
        assert_eq!(fault.kind, LifecycleFaultKind::Shutdown);
        assert_eq!(fault.clears_at_secs, u64::MAX);
        assert_eq!(life.fault_at(u64::MAX).map(|f| f.kind), Some(LifecycleFaultKind::Shutdown));
    }

    #[test]
    fn session_drops_track_rate_and_replay() {
        let params = LifecycleParams {
            session_drop_per_mille: 100,
            reconnect_secs: 10,
            ..LifecycleParams::reliable()
        };
        let life = ExchangeLifecycle::compile(&params, 11, "ManyHits", 10_000);
        let drops = (0..10_000).filter(|&seq| life.drops_session(seq)).count();
        assert!((800..1_200).contains(&drops), "~10% of 10k: {drops}");
        for seq in 0..100 {
            assert_eq!(life.drops_session(seq), life.drops_session(seq), "replayable");
        }
    }

    #[test]
    fn inert_schedule_never_faults() {
        let life = ExchangeLifecycle::inert("Otohits");
        assert!(life.is_inert());
        for t in [0, 1, 1_000, u64::MAX] {
            assert_eq!(life.fault_at(t), None);
        }
        assert!(!(0..1_000).any(|seq| life.drops_session(seq)));
    }

    #[test]
    fn validate_rejects_nonsense() {
        assert!(LifecycleParams::reliable().validate().is_ok());
        assert!(hazardous().validate().is_ok());
        let bad = LifecycleParams { shutdown_per_mille: 1_001, ..LifecycleParams::reliable() };
        assert!(bad.validate().unwrap_err().contains("shutdown_per_mille"));
        let bad = LifecycleParams { outage_windows: 2, outage_secs: 0, ..LifecycleParams::reliable() };
        assert!(bad.validate().unwrap_err().contains("outage"));
        let bad = LifecycleParams {
            session_drop_per_mille: 5,
            reconnect_secs: 0,
            ..LifecycleParams::reliable()
        };
        assert!(bad.validate().unwrap_err().contains("reconnect"));
    }
}
