//! Property tests for the analysis pipeline: temporal-series invariants
//! and downsampling.

use proptest::prelude::*;

use malware_slums::temporal::CumulativeSeries;

proptest! {
    /// Cumulative series are monotone and end at the flag sum.
    #[test]
    fn cumulative_series_invariants(flags in proptest::collection::vec(any::<bool>(), 0..500)) {
        let series = CumulativeSeries::from_flags("p", &flags);
        prop_assert_eq!(series.len(), flags.len());
        prop_assert_eq!(
            series.total_malicious(),
            flags.iter().filter(|f| **f).count() as u64
        );
        prop_assert!(series.series.windows(2).all(|w| w[0] <= w[1]), "monotone");
        // Each step increases by at most 1.
        prop_assert!(series.series.windows(2).all(|w| w[1] - w[0] <= 1));
    }

    /// Burstiness is ≥ 1 whenever any malicious URL exists (the max
    /// windowed rate cannot undercut the average), and bursts returned
    /// are within bounds and disjoint.
    #[test]
    fn burstiness_and_bursts_invariants(
        flags in proptest::collection::vec(any::<bool>(), 1..400),
        window in 1usize..100,
        factor in 1.5f64..5.0,
    ) {
        let series = CumulativeSeries::from_flags("p", &flags);
        let b = series.burstiness(window);
        if series.total_malicious() > 0 {
            // Pigeonhole over the ceil(n/window) disjoint windows: the
            // densest window carries at least total*window/(n+window)
            // hits, so burstiness >= n/(n+window).
            let n = series.len() as f64;
            let w = window.min(series.len()) as f64;
            let lower = n / (n + w) - 1e-9;
            prop_assert!(b >= lower, "burstiness {} below pigeonhole bound {}", b, lower);
        } else {
            prop_assert_eq!(b, 0.0);
        }
        let bursts = series.bursts(window, factor);
        let mut last_end = 0;
        for (start, end) in bursts {
            prop_assert!(start < end);
            prop_assert!(end <= series.len());
            prop_assert!(start >= last_end, "bursts must be disjoint and ordered");
            last_end = end;
        }
    }

    /// Downsampling preserves endpoints and monotonicity.
    #[test]
    fn downsample_invariants(
        flags in proptest::collection::vec(any::<bool>(), 1..300),
        points in 1usize..40,
    ) {
        let series = CumulativeSeries::from_flags("p", &flags);
        let sampled = series.downsample(points);
        prop_assert!(!sampled.is_empty());
        prop_assert_eq!(sampled[0].0, 0);
        prop_assert_eq!(
            *sampled.last().unwrap(),
            (series.len() - 1, series.total_malicious())
        );
        prop_assert!(sampled.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1));
    }
}
