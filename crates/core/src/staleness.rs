//! Blacklist-staleness experiment.
//!
//! §III-B notes that "blacklists are updated infrequently" — which both
//! creates the stale-entry false positives the consensus rule suppresses
//! *and* opens a detection-lag window on fresh threats. The paper's
//! crawl ran for months, so domains that turned malicious mid-study were
//! visited both before and after the lists caught up. This experiment
//! quantifies that: how many blacklisted-category visits are missed when
//! lookups go through realistically-lagged list snapshots instead of an
//! oracle-fresh database.

use slum_detect::blacklist::{BlacklistDb, StalenessModel};
use slum_websim::build::{MaliciousOptions, WebBuilder};
use slum_websim::rng::seeded;
use slum_websim::MaliceKind;

use rand::Rng;

/// Parameters of the staleness experiment.
#[derive(Debug, Clone)]
pub struct LagConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of blacklist-worthy domains that turn malicious during the
    /// study window.
    pub domains: usize,
    /// Visits per domain, spread across the window.
    pub visits_per_domain: usize,
    /// Study window in virtual seconds (the paper crawled for months).
    pub window_secs: u64,
    /// Per-list update periods (defaults to
    /// [`StalenessModel::DEFAULT_PERIODS`]).
    pub periods: [u64; 6],
}

impl Default for LagConfig {
    fn default() -> Self {
        LagConfig {
            seed: 2016,
            domains: 120,
            visits_per_domain: 20,
            // ~3 months.
            window_secs: 90 * 86_400,
            periods: StalenessModel::DEFAULT_PERIODS,
        }
    }
}

/// Outcome of the staleness experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct LagReport {
    /// Visits that an oracle-fresh database would have flagged.
    pub flagged_fresh: u64,
    /// Visits flagged through the lagged snapshots.
    pub flagged_stale: u64,
    /// Visits missed purely due to update lag.
    pub missed_by_lag: u64,
    /// Mean seconds from a domain turning malicious to consensus
    /// availability (over domains that ever reach consensus).
    pub mean_consensus_lag_secs: f64,
}

impl LagReport {
    /// Fraction of fresh-detectable visits lost to staleness.
    pub fn miss_fraction(&self) -> f64 {
        if self.flagged_fresh == 0 {
            0.0
        } else {
            self.missed_by_lag as f64 / self.flagged_fresh as f64
        }
    }
}

/// Runs the experiment.
pub fn run_lag_experiment(config: &LagConfig) -> LagReport {
    let mut rng = seeded(config.seed);
    let mut builder = WebBuilder::new(config.seed);

    // Domains turn malicious at uniform times in the first half of the
    // window (so every domain gets post-onset visits).
    let mut domains: Vec<(String, u64)> = Vec::with_capacity(config.domains);
    for _ in 0..config.domains {
        let spec = builder.malicious_site(MaliciousOptions {
            kind: Some(MaliceKind::Blacklisted),
            cloaked: Some(false),
            ..Default::default()
        });
        let onset = rng.gen_range(0..config.window_secs / 2);
        domains.push((spec.url.registered_domain(), onset));
    }
    let web = builder.finish();

    let db = BlacklistDb::populate_from_web(&web);
    let first_seen: std::collections::HashMap<String, u64> =
        domains.iter().cloned().collect();
    let model = StalenessModel::new(db.clone(), first_seen).with_periods(config.periods);

    let mut report = LagReport {
        flagged_fresh: 0,
        flagged_stale: 0,
        missed_by_lag: 0,
        mean_consensus_lag_secs: 0.0,
    };
    let mut lag_sum = 0.0;
    let mut lag_count = 0u64;
    for (domain, onset) in &domains {
        if let Some(when) = model.consensus_time(domain) {
            lag_sum += (when - onset) as f64;
            lag_count += 1;
        }
        for _ in 0..config.visits_per_domain {
            // Visits occur only after the domain turned malicious.
            let at = rng.gen_range(*onset..config.window_secs);
            let fresh = db.check(domain).is_blacklisted();
            let stale = model.check_at(domain, at).is_blacklisted();
            if fresh {
                report.flagged_fresh += 1;
                if stale {
                    report.flagged_stale += 1;
                } else {
                    report.missed_by_lag += 1;
                }
            }
        }
    }
    report.mean_consensus_lag_secs =
        if lag_count == 0 { 0.0 } else { lag_sum / lag_count as f64 };
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staleness_misses_some_but_not_most_visits() {
        let report = run_lag_experiment(&LagConfig::default());
        assert!(report.flagged_fresh > 0);
        assert_eq!(
            report.flagged_stale + report.missed_by_lag,
            report.flagged_fresh,
            "every fresh-detectable visit is either caught or lag-missed"
        );
        let miss = report.miss_fraction();
        // Over a ~90-day window with day-to-month update periods, a small
        // but real fraction of visits precedes consensus.
        assert!(miss > 0.0, "lag must cost something: {report:?}");
        assert!(miss < 0.5, "but the window dwarfs the lag: {miss}");
        assert!(report.mean_consensus_lag_secs > 0.0);
    }

    #[test]
    fn instant_updates_miss_nothing() {
        let config = LagConfig { periods: [1, 1, 1, 1, 1, 1], ..Default::default() };
        let report = run_lag_experiment(&config);
        assert_eq!(report.missed_by_lag, 0, "{report:?}");
        assert!(report.mean_consensus_lag_secs <= 1.0);
    }

    #[test]
    fn slower_updates_miss_more() {
        let fast = run_lag_experiment(&LagConfig::default());
        let slow_periods = StalenessModel::DEFAULT_PERIODS.map(|p| p * 10);
        let slow = run_lag_experiment(&LagConfig {
            periods: slow_periods,
            ..Default::default()
        });
        assert!(
            slow.miss_fraction() > fast.miss_fraction(),
            "10x slower lists must miss more: {} vs {}",
            slow.miss_fraction(),
            fast.miss_fraction()
        );
    }

    #[test]
    fn experiment_is_deterministic() {
        let a = run_lag_experiment(&LagConfig::default());
        let b = run_lag_experiment(&LagConfig::default());
        assert_eq!(a, b);
    }
}
