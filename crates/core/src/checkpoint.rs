//! Versioned, checksummed crawl checkpoints.
//!
//! A checkpoint file captures the complete mid-crawl state of a study —
//! every exchange's loop cursor (surf slot, virtual clock, raw RNG
//! state, CAPTCHA nonce, stats and health counters) plus the records
//! logged so far — so an interrupted run can resume and produce output
//! **bit-identical** to an uninterrupted one.
//!
//! # File format
//!
//! ```text
//! SLUMCKPT 1\n          ← magic + format version
//! <crc32 decimal>\n     ← IEEE CRC-32 over everything below
//! <header json>\n       ← seed, scales, profile, round, body length
//! <body>                ← per-exchange "#cursor {json}" + record JSONL
//! ```
//!
//! The CRC covers the header line *and* the body, so flipping any
//! single byte past the CRC line is detected; corruption of the magic
//! or CRC lines themselves is caught structurally. Files are written
//! atomically (temp file + rename) as `ckpt-NNNNNN.slumckpt`, numbered
//! by completed segment round.
//!
//! # Generations, quarantine and rollback
//!
//! [`CheckpointStore::save`] keeps the last
//! [`DEFAULT_KEEP_GENERATIONS`] generations (configurable via
//! [`CheckpointStore::with_keep_generations`]), pruning older files.
//! [`CheckpointStore::load_latest`] never gives up on the first corrupt
//! file: it walks the generation chain newest→oldest, moving every
//! file that fails structural/CRC validation into a `quarantine/`
//! subdirectory, and restores the newest *intact* generation — so a
//! torn write costs one slice of re-crawled progress, never the study.
//! Only when every generation is corrupt does it return the typed
//! [`CheckpointError::Quarantined`].
//!
//! # Storage-fault injection
//!
//! [`CheckpointStore::with_disk_faults`] arms a seeded
//! [`DiskFaultProfile`] that corrupts saves (torn/short writes,
//! bit-flips) or refuses them ([`CheckpointError::DiskFull`]) on a
//! deterministic schedule keyed by `(seed, round, quarantine epoch)` —
//! see [`crate::diskfault`]. The default profile is inert.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use slum_crawler::CrawlCheckpointState;

use crate::diskfault::{DiskFault, DiskFaultProfile};
use crate::study::StudyConfig;

/// Magic prefix of the first line; the format version follows it.
pub const MAGIC_PREFIX: &str = "SLUMCKPT ";

/// Current checkpoint format version.
pub const FORMAT_VERSION: u32 = 1;

/// File extension of checkpoint files.
pub const EXTENSION: &str = "slumckpt";

/// Checkpoint generations a store retains by default.
pub const DEFAULT_KEEP_GENERATIONS: usize = 4;

/// Name of the subdirectory corrupt checkpoints are moved into.
pub const QUARANTINE_DIR: &str = "quarantine";

/// IEEE CRC-32 (the zlib/PNG polynomial), bitwise implementation — the
/// payloads are small enough that a table buys nothing.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// The checkpoint header: enough configuration echo to refuse resuming
/// under an incompatible study, plus the round number and body length.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckpointHeader {
    /// Format version (duplicates the magic line for self-description).
    pub version: u32,
    /// Master seed of the run that wrote the checkpoint.
    pub seed: u64,
    /// Crawl scale in parts-per-million.
    pub crawl_scale_ppm: u64,
    /// Domain scale in parts-per-million.
    pub domain_scale_ppm: u64,
    /// Name of the crawl-fault profile in force.
    pub crawl_fault_profile: String,
    /// Canonical name of the traffic substrate crawled. Defaults to
    /// `exchange` when absent so pre-substrate checkpoints stay
    /// readable.
    #[serde(default = "default_substrate_name")]
    pub substrate: String,
    /// Configured segment budget (0 when unbounded).
    pub checkpoint_every: u64,
    /// Completed segment rounds at the time of writing.
    pub round: u64,
    /// Byte length of the body (a cheap truncation tripwire on top of
    /// the CRC).
    pub body_len: u64,
}

/// Scale fraction → parts-per-million, matching the `config.*_ppm`
/// gauges.
pub fn scale_ppm(scale: f64) -> u64 {
    (scale * 1e6).round() as u64
}

fn default_substrate_name() -> String {
    crate::substrate::Substrate::Exchange.name().to_string()
}

/// Parses a header line. `substrate` defaults to `exchange` via
/// `#[serde(default = "default_substrate_name")]` on the field, so
/// checkpoints written before the substrate refactor (which carry no
/// such field) stay readable.
fn parse_header(header_line: &str) -> Result<CheckpointHeader, CheckpointError> {
    let malformed =
        |detail: String| CheckpointError::Malformed { line: 3, detail };
    let value: serde_json::Value =
        serde_json::from_str(header_line).map_err(|e| malformed(e.to_string()))?;
    <CheckpointHeader as serde::Deserialize>::from_content(&value)
        .map_err(|e| malformed(e.to_string()))
}

impl CheckpointHeader {
    /// A header for `config` (round and body length are filled in at
    /// save time).
    pub fn for_config(config: &StudyConfig) -> Self {
        CheckpointHeader {
            version: FORMAT_VERSION,
            seed: config.seed,
            crawl_scale_ppm: scale_ppm(config.crawl_scale),
            domain_scale_ppm: scale_ppm(config.domain_scale),
            crawl_fault_profile: config.crawl_fault_profile.name.clone(),
            substrate: config.substrate.name().to_string(),
            checkpoint_every: config.checkpoint_every.unwrap_or(0),
            round: 0,
            body_len: 0,
        }
    }

    /// Refuses to resume under a study configuration that would diverge
    /// from the run that wrote the checkpoint. `checkpoint_every` is
    /// deliberately *not* checked: segment boundaries never affect
    /// results, only file cadence.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::ConfigMismatch`] naming the first
    /// differing field.
    pub fn verify(&self, config: &StudyConfig) -> Result<(), CheckpointError> {
        let checks: [(&'static str, String, String); 5] = [
            ("seed", self.seed.to_string(), config.seed.to_string()),
            (
                "crawl_scale_ppm",
                self.crawl_scale_ppm.to_string(),
                scale_ppm(config.crawl_scale).to_string(),
            ),
            (
                "domain_scale_ppm",
                self.domain_scale_ppm.to_string(),
                scale_ppm(config.domain_scale).to_string(),
            ),
            (
                "crawl_fault_profile",
                self.crawl_fault_profile.clone(),
                config.crawl_fault_profile.name.clone(),
            ),
            ("substrate", self.substrate.clone(), config.substrate.name().to_string()),
        ];
        for (field, expected, found) in checks {
            if expected != found {
                return Err(CheckpointError::ConfigMismatch { field, expected, found });
            }
        }
        Ok(())
    }
}

/// Why a checkpoint could not be written or read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Filesystem failure.
    Io {
        /// Path involved.
        path: String,
        /// OS error text.
        detail: String,
    },
    /// The file does not start with the checkpoint magic.
    BadMagic {
        /// What the first line actually held (truncated).
        found: String,
    },
    /// The file is a checkpoint, but of an unsupported format version.
    VersionSkew {
        /// The version the file declares.
        found: u32,
    },
    /// The file ends before the format's mandatory structure does.
    Truncated {
        /// What was missing.
        detail: String,
    },
    /// The stored CRC does not match the payload.
    CrcMismatch {
        /// CRC the file declares.
        expected: u32,
        /// CRC of the payload as read.
        actual: u32,
    },
    /// The checkpoint was written by a run with different configuration.
    ConfigMismatch {
        /// Which configuration field differs.
        field: &'static str,
        /// The checkpoint's value.
        expected: String,
        /// The resuming study's value.
        found: String,
    },
    /// The payload passed the CRC but does not parse — header or body.
    Malformed {
        /// 1-based line number within the file.
        line: usize,
        /// What went wrong.
        detail: String,
    },
    /// `load_latest` found no checkpoint file in the directory.
    NoCheckpoint {
        /// The directory searched.
        dir: String,
    },
    /// The save was refused by the storage-fault injector: simulated
    /// `ENOSPC`, nothing was written. Callers on the crawl path swallow
    /// this (the next round's save retries); it is never a study
    /// failure.
    DiskFull {
        /// The path the save would have written.
        path: String,
    },
    /// Every generation in the directory failed validation; all were
    /// moved into the `quarantine/` subdirectory and nothing is left to
    /// restore from.
    Quarantined {
        /// The directory searched.
        dir: String,
        /// File names quarantined by this walk, newest first.
        quarantined: Vec<String>,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { path, detail } => write!(f, "checkpoint I/O on {path}: {detail}"),
            CheckpointError::BadMagic { found } => {
                write!(f, "not a checkpoint file (first line {found:?})")
            }
            CheckpointError::VersionSkew { found } => {
                write!(f, "checkpoint format version {found} (this build reads {FORMAT_VERSION})")
            }
            CheckpointError::Truncated { detail } => write!(f, "truncated checkpoint: {detail}"),
            CheckpointError::CrcMismatch { expected, actual } => {
                write!(f, "checkpoint CRC mismatch: stored {expected}, computed {actual}")
            }
            CheckpointError::ConfigMismatch { field, expected, found } => {
                write!(f, "checkpoint {field} is {expected} but the study has {found}")
            }
            CheckpointError::Malformed { line, detail } => {
                write!(f, "malformed checkpoint at line {line}: {detail}")
            }
            CheckpointError::NoCheckpoint { dir } => {
                write!(f, "no checkpoint found in {dir}")
            }
            CheckpointError::DiskFull { path } => {
                write!(f, "no space left on device (injected) writing {path}")
            }
            CheckpointError::Quarantined { dir, quarantined } => {
                write!(
                    f,
                    "every checkpoint generation in {dir} was corrupt; quarantined {}",
                    quarantined.join(", ")
                )
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

fn io_err(path: &Path, e: &std::io::Error) -> CheckpointError {
    CheckpointError::Io { path: path.display().to_string(), detail: e.to_string() }
}

/// Serializes a checkpoint to its full file content.
///
/// # Errors
///
/// Propagates body serialization failures as [`CheckpointError::Malformed`].
pub fn encode_checkpoint(
    header: &CheckpointHeader,
    state: &CrawlCheckpointState,
) -> Result<String, CheckpointError> {
    let body = state
        .to_body()
        .map_err(|e| CheckpointError::Malformed { line: 0, detail: e.to_string() })?;
    let mut header = header.clone();
    header.version = FORMAT_VERSION;
    header.round = state.round;
    header.body_len = body.len() as u64;
    let header_json = serde_json::to_string(&header)
        .map_err(|e| CheckpointError::Malformed { line: 0, detail: e.to_string() })?;
    let payload = format!("{header_json}\n{body}");
    Ok(format!("{MAGIC_PREFIX}{FORMAT_VERSION}\n{}\n{payload}", crc32(payload.as_bytes())))
}

/// Parses and validates full checkpoint file content.
///
/// # Errors
///
/// Every corruption mode maps to a typed [`CheckpointError`]; this
/// function never panics on arbitrary input.
pub fn decode_checkpoint(
    raw: &str,
) -> Result<(CheckpointHeader, CrawlCheckpointState), CheckpointError> {
    let (magic_line, rest) = raw
        .split_once('\n')
        .ok_or_else(|| CheckpointError::Truncated { detail: "no magic line".to_string() })?;
    let version_text = magic_line.strip_prefix(MAGIC_PREFIX).ok_or_else(|| {
        CheckpointError::BadMagic { found: magic_line.chars().take(32).collect() }
    })?;
    let version: u32 = version_text.trim().parse().map_err(|_| CheckpointError::BadMagic {
        found: magic_line.chars().take(32).collect(),
    })?;
    if version != FORMAT_VERSION {
        return Err(CheckpointError::VersionSkew { found: version });
    }
    let (crc_line, payload) = rest
        .split_once('\n')
        .ok_or_else(|| CheckpointError::Truncated { detail: "no CRC line".to_string() })?;
    let expected: u32 = crc_line.trim().parse().map_err(|_| CheckpointError::Malformed {
        line: 2,
        detail: format!("unparseable CRC {crc_line:?}"),
    })?;
    let actual = crc32(payload.as_bytes());
    if actual != expected {
        return Err(CheckpointError::CrcMismatch { expected, actual });
    }
    let (header_line, body) = payload
        .split_once('\n')
        .ok_or_else(|| CheckpointError::Truncated { detail: "no header line".to_string() })?;
    let header = parse_header(header_line)?;
    if header.version != FORMAT_VERSION {
        return Err(CheckpointError::VersionSkew { found: header.version });
    }
    if body.len() as u64 != header.body_len {
        return Err(CheckpointError::Truncated {
            detail: format!("header declares {} body bytes, file holds {}", header.body_len, body.len()),
        });
    }
    let state = CrawlCheckpointState::from_body(header.round, body)
        .map_err(|(line, detail)| CheckpointError::Malformed { line: 3 + line, detail })?;
    Ok((header, state))
}

/// Per-store bookkeeping of the resilience machinery: save outcomes,
/// injected faults, quarantine and rollback events, pruned generations.
/// Counts cover this store instance's lifetime (one `run_pipeline`
/// call on the study path) — except `quarantined`, which is seeded
/// from the quarantine directory at open and therefore cumulative
/// across the directory's whole history, matching
/// [`CheckpointStore::epoch`].
#[derive(Debug, Default)]
pub struct CkptStats {
    /// Checkpoint files that landed on disk (including corrupted ones —
    /// a torn write still "succeeds" from the writer's view).
    pub saves: AtomicU64,
    /// Saves written torn (prefix only).
    pub torn_writes: AtomicU64,
    /// Saves written short (tail dropped).
    pub short_writes: AtomicU64,
    /// Saves with one byte flipped after the write.
    pub bit_flips: AtomicU64,
    /// Saves refused with simulated `ENOSPC`.
    pub disk_full: AtomicU64,
    /// Files ever moved into `quarantine/` (cumulative: seeded from
    /// the directory at open, bumped per quarantine by this store).
    pub quarantined: AtomicU64,
    /// `load_latest` walks that had to roll back past at least one
    /// corrupt generation.
    pub rollbacks: AtomicU64,
    /// Old generations pruned by the keep-K policy.
    pub pruned: AtomicU64,
}

impl CkptStats {
    fn bump(field: &AtomicU64) {
        field.fetch_add(1, Ordering::Relaxed);
    }

    /// Reads one counter.
    pub fn get(field: &AtomicU64) -> u64 {
        field.load(Ordering::Relaxed)
    }
}

/// A directory of numbered checkpoint files.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    disk_faults: DiskFaultProfile,
    seed: u64,
    keep_generations: usize,
    epoch: AtomicU64,
    stats: Arc<CkptStats>,
}

impl CheckpointStore {
    /// Opens (creating if needed) a checkpoint directory. The store
    /// starts with an inert fault profile and the default generation
    /// retention; see [`Self::with_disk_faults`] and
    /// [`Self::with_keep_generations`].
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, CheckpointError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| io_err(&dir, &e))?;
        let names: Vec<String> = match fs::read_dir(dir.join(QUARANTINE_DIR)) {
            Ok(entries) => entries
                .filter_map(Result::ok)
                .filter_map(|e| e.file_name().to_str().map(str::to_string))
                .collect(),
            Err(_) => Vec::new(),
        };
        let epoch = names.len() as u64;
        let quarantined = names.iter().filter(|n| !n.ends_with(".marker")).count() as u64;
        let stats = CkptStats::default();
        stats.quarantined.store(quarantined, Ordering::Relaxed);
        Ok(CheckpointStore {
            dir,
            disk_faults: DiskFaultProfile::none(),
            seed: 0,
            keep_generations: DEFAULT_KEEP_GENERATIONS,
            epoch: AtomicU64::new(epoch),
            stats: Arc::new(stats),
        })
    }

    /// Arms the storage-fault injector: saves roll their fate on
    /// `profile` under `seed` (see [`crate::diskfault`]).
    pub fn with_disk_faults(mut self, profile: DiskFaultProfile, seed: u64) -> Self {
        self.disk_faults = profile;
        self.seed = seed;
        self
    }

    /// Sets how many checkpoint generations [`Self::save`] retains
    /// (0 = unlimited).
    pub fn with_keep_generations(mut self, keep: usize) -> Self {
        self.keep_generations = keep;
        self
    }

    /// The directory this store writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The quarantine subdirectory (may not exist yet).
    pub fn quarantine_dir(&self) -> PathBuf {
        self.dir.join(QUARANTINE_DIR)
    }

    /// This store's resilience bookkeeping.
    pub fn stats(&self) -> &CkptStats {
        &self.stats
    }

    /// Cumulative storage-incident count of the directory: files ever
    /// moved into `quarantine/` plus injected-`ENOSPC` markers,
    /// including those left by previous store instances. Also the
    /// fault-schedule epoch: every incident re-rolls pending save
    /// fates so recovery cannot livelock on a repeating torn write or
    /// a sticky `ENOSPC`.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    fn file_name(round: u64) -> String {
        format!("ckpt-{round:06}.{EXTENSION}")
    }

    /// Atomically writes the checkpoint for `state` (numbered by its
    /// round), returning the file path, then prunes generations beyond
    /// the retention limit. An armed fault profile may corrupt the
    /// written bytes (torn/short/flip — still `Ok`: the writer cannot
    /// see it, exactly like real storage) or refuse the write.
    ///
    /// # Errors
    ///
    /// Propagates serialization and filesystem failures;
    /// [`CheckpointError::DiskFull`] when the injector refuses the
    /// write (no checkpoint lands on disk, only an epoch marker in
    /// `quarantine/` — callers may treat this as a skipped checkpoint
    /// and continue).
    pub fn save(
        &self,
        header: &CheckpointHeader,
        state: &CrawlCheckpointState,
    ) -> Result<PathBuf, CheckpointError> {
        let content = encode_checkpoint(header, state)?;
        let path = self.dir.join(Self::file_name(state.round));
        let epoch = self.epoch();
        let mut bytes = content.into_bytes();
        match self.disk_faults.fate(self.seed, state.round, epoch) {
            Some(DiskFault::Full) => {
                CkptStats::bump(&self.stats.disk_full);
                // Persist the epoch bump with a marker entry: the fate
                // is keyed on (seed, round, epoch), so without it a
                // caller that retries the same round every slice (one
                // round per scheduling slice) would roll `Full` forever
                // — a livelock the injector itself must not create.
                // Real ENOSPC clears nondeterministically; simulated
                // ENOSPC clears on the next epoch.
                let qdir = self.quarantine_dir();
                fs::create_dir_all(&qdir).map_err(|e| io_err(&qdir, &e))?;
                let marker =
                    qdir.join(format!("q{epoch:04}-enospc-{:06}.marker", state.round));
                fs::write(&marker, b"injected ENOSPC\n").map_err(|e| io_err(&marker, &e))?;
                self.epoch.fetch_add(1, Ordering::Relaxed);
                return Err(CheckpointError::DiskFull { path: path.display().to_string() });
            }
            Some(DiskFault::Torn) => {
                let cut = self.disk_faults.damage_position(self.seed, state.round, epoch, bytes.len());
                bytes.truncate(cut);
                CkptStats::bump(&self.stats.torn_writes);
            }
            Some(DiskFault::Short) => {
                let pos = self.disk_faults.damage_position(self.seed, state.round, epoch, bytes.len());
                let drop = (1 + pos % 64).min(bytes.len());
                bytes.truncate(bytes.len() - drop);
                CkptStats::bump(&self.stats.short_writes);
            }
            Some(DiskFault::BitFlip) => {
                let pos = self.disk_faults.damage_position(self.seed, state.round, epoch, bytes.len());
                if let Some(b) = bytes.get_mut(pos) {
                    *b ^= 0x01;
                }
                CkptStats::bump(&self.stats.bit_flips);
            }
            None => {}
        }
        let tmp = self.dir.join(format!(".{}.tmp", Self::file_name(state.round)));
        fs::write(&tmp, &bytes).map_err(|e| io_err(&tmp, &e))?;
        fs::rename(&tmp, &path).map_err(|e| io_err(&path, &e))?;
        CkptStats::bump(&self.stats.saves);
        self.prune()?;
        Ok(path)
    }

    /// Removes the oldest generations past the retention limit.
    fn prune(&self) -> Result<(), CheckpointError> {
        if self.keep_generations == 0 {
            return Ok(());
        }
        let files = self.list()?;
        if files.len() <= self.keep_generations {
            return Ok(());
        }
        for old in &files[..files.len() - self.keep_generations] {
            fs::remove_file(old).map_err(|e| io_err(old, &e))?;
            CkptStats::bump(&self.stats.pruned);
        }
        Ok(())
    }

    /// Loads and validates one checkpoint file.
    ///
    /// # Errors
    ///
    /// Propagates read failures and every [`decode_checkpoint`] error.
    pub fn load(path: &Path) -> Result<(CheckpointHeader, CrawlCheckpointState), CheckpointError> {
        let raw = fs::read_to_string(path).map_err(|e| io_err(path, &e))?;
        decode_checkpoint(&raw)
    }

    /// Checkpoint files present, sorted ascending by round. Quarantined
    /// files live in a subdirectory and are never listed.
    ///
    /// # Errors
    ///
    /// Propagates directory-read failures.
    pub fn list(&self) -> Result<Vec<PathBuf>, CheckpointError> {
        let mut files: Vec<PathBuf> = fs::read_dir(&self.dir)
            .map_err(|e| io_err(&self.dir, &e))?
            .filter_map(Result::ok)
            .map(|entry| entry.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("ckpt-") && n.ends_with(EXTENSION))
            })
            .collect();
        files.sort();
        Ok(files)
    }

    /// Moves a corrupt checkpoint into `quarantine/` and advances the
    /// fault-schedule epoch. The quarantined name is prefixed with the
    /// epoch so repeated quarantines of the same round never collide.
    fn quarantine(&self, path: &Path) -> Result<String, CheckpointError> {
        let qdir = self.quarantine_dir();
        fs::create_dir_all(&qdir).map_err(|e| io_err(&qdir, &e))?;
        let file = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("unnamed")
            .to_string();
        let qname = format!("q{:04}-{file}", self.epoch());
        fs::rename(path, qdir.join(&qname)).map_err(|e| io_err(path, &e))?;
        CkptStats::bump(&self.stats.quarantined);
        self.epoch.fetch_add(1, Ordering::Relaxed);
        Ok(file)
    }

    /// Restores the newest *intact* generation: walks the chain
    /// newest→oldest, quarantining every file that fails structural or
    /// CRC validation, and returns the first one that decodes.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::NoCheckpoint`] when the directory holds none;
    /// [`CheckpointError::Quarantined`] when every generation was
    /// corrupt (all moved to `quarantine/`); I/O failures propagate
    /// unchanged (a transient read error must not quarantine a possibly
    /// healthy file).
    pub fn load_latest(&self) -> Result<(CheckpointHeader, CrawlCheckpointState), CheckpointError> {
        let files = self.list()?;
        if files.is_empty() {
            return Err(CheckpointError::NoCheckpoint { dir: self.dir.display().to_string() });
        }
        let mut quarantined = Vec::new();
        for path in files.iter().rev() {
            match Self::load(path) {
                Ok(loaded) => {
                    if !quarantined.is_empty() {
                        CkptStats::bump(&self.stats.rollbacks);
                    }
                    return Ok(loaded);
                }
                Err(CheckpointError::Io { .. }) => {
                    // fs::read_to_string also fails on non-UTF-8 bytes,
                    // which *is* corruption (the format is pure text) —
                    // but a vanished/unreadable file is not provably
                    // corrupt, so only quarantine when the bytes are
                    // actually present and wrong.
                    match fs::read(path) {
                        Ok(_) => quarantined.push(self.quarantine(path)?),
                        Err(e) => return Err(io_err(path, &e)),
                    }
                }
                Err(_) => quarantined.push(self.quarantine(path)?),
            }
        }
        Err(CheckpointError::Quarantined {
            dir: self.dir.display().to_string(),
            quarantined,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slum_crawler::drive::{CrawlConfig, CrawlCursor};
    use slum_crawler::RecordStore;
    use slum_exchange::{build_exchange, params::profile};
    use slum_websim::build::WebBuilder;

    fn sample_state() -> CrawlCheckpointState {
        let mut b = WebBuilder::new(5);
        let p = profile("Otohits").unwrap();
        let mut x = build_exchange(&mut b, p, 0.05, 10_000);
        let web = b.finish();
        let config = CrawlConfig { steps: 12, seed: 5, ..Default::default() };
        let mut cursor = CrawlCursor::start(&x, &config);
        let mut store = RecordStore::new();
        let lifecycle = slum_exchange::lifecycle::ExchangeLifecycle::inert(x.name());
        let retry = slum_detect::retry::RetryPolicy::no_retries();
        slum_crawler::drive::crawl_exchange_segment(
            &web, &mut x, &config, &lifecycle, &retry, &mut cursor, &mut store, 7,
        );
        CrawlCheckpointState { round: 1, cursors: vec![cursor], stores: vec![store] }
    }

    fn sample_header() -> CheckpointHeader {
        CheckpointHeader {
            version: FORMAT_VERSION,
            seed: 5,
            crawl_scale_ppm: 300,
            domain_scale_ppm: 30_000,
            crawl_fault_profile: "none".to_string(),
            substrate: "exchange".to_string(),
            checkpoint_every: 7,
            round: 0,
            body_len: 0,
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encode_decode_round_trips() {
        let state = sample_state();
        let raw = encode_checkpoint(&sample_header(), &state).unwrap();
        assert!(raw.starts_with("SLUMCKPT 1\n"));
        let (header, back) = decode_checkpoint(&raw).unwrap();
        assert_eq!(header.round, 1);
        assert_eq!(header.seed, 5);
        assert_eq!(back, state);
    }

    #[test]
    fn save_and_load_latest_round_trips_on_disk() {
        let dir = std::env::temp_dir().join(format!("slumckpt-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = CheckpointStore::open(&dir).unwrap();
        let mut state = sample_state();
        let header = sample_header();
        store.save(&header, &state).unwrap();
        state.round = 2;
        let path2 = store.save(&header, &state).unwrap();
        assert!(path2.ends_with("ckpt-000002.slumckpt"));
        assert_eq!(store.list().unwrap().len(), 2);
        let (loaded_header, loaded) = store.load_latest().unwrap();
        assert_eq!(loaded_header.round, 2);
        assert_eq!(loaded, state);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_dir_reports_no_checkpoint() {
        let dir = std::env::temp_dir().join(format!("slumckpt-empty-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = CheckpointStore::open(&dir).unwrap();
        assert!(matches!(store.load_latest(), Err(CheckpointError::NoCheckpoint { .. })));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_magic_and_version_skew_are_typed() {
        assert!(matches!(
            decode_checkpoint("WHATEVER\nrest\n"),
            Err(CheckpointError::BadMagic { .. })
        ));
        assert!(matches!(
            decode_checkpoint("SLUMCKPT 9\n0\nx\n"),
            Err(CheckpointError::VersionSkew { found: 9 })
        ));
        assert!(matches!(decode_checkpoint(""), Err(CheckpointError::Truncated { .. })));
    }

    #[test]
    fn truncation_is_detected() {
        let raw = encode_checkpoint(&sample_header(), &sample_state()).unwrap();
        // Chop the tail: either the CRC or the body-length check trips.
        let cut = &raw[..raw.len() - 10];
        assert!(matches!(
            decode_checkpoint(cut),
            Err(CheckpointError::CrcMismatch { .. } | CheckpointError::Truncated { .. })
        ));
    }

    #[test]
    fn every_single_byte_flip_is_rejected() {
        let raw = encode_checkpoint(&sample_header(), &sample_state()).unwrap();
        let bytes = raw.as_bytes();
        // Exhaustive over a strided sample (every position for short
        // files would be slow in debug builds at full corpus size; this
        // state is small enough to do every byte).
        for i in 0..bytes.len() {
            let mut corrupt = bytes.to_vec();
            corrupt[i] ^= 0x01;
            let corrupt = String::from_utf8_lossy(&corrupt).into_owned();
            assert!(
                decode_checkpoint(&corrupt).is_err(),
                "flip at byte {i} ({:?}) must not validate",
                raw.as_bytes()[i] as char
            );
        }
    }

    #[test]
    fn header_verify_flags_mismatches() {
        let config = StudyConfig::builder()
            .seed(5)
            .crawl_scale(0.0003)
            .domain_scale(0.03)
            .build()
            .unwrap();
        let header = sample_header();
        assert!(header.verify(&config).is_ok());
        let mut wrong_seed = header.clone();
        wrong_seed.seed = 6;
        assert!(matches!(
            wrong_seed.verify(&config),
            Err(CheckpointError::ConfigMismatch { field: "seed", .. })
        ));
        let mut wrong_profile = header.clone();
        wrong_profile.crawl_fault_profile = "harsh".to_string();
        let err = wrong_profile.verify(&config).unwrap_err();
        assert!(err.to_string().contains("crawl_fault_profile"), "{err}");
        let mut wrong_substrate = header;
        wrong_substrate.substrate = "torrent".to_string();
        assert!(matches!(
            wrong_substrate.verify(&config),
            Err(CheckpointError::ConfigMismatch { field: "substrate", .. })
        ));
    }

    /// States for rounds 1..=n (same cursors, bumped round numbers —
    /// enough to exercise the store's file machinery).
    fn states(n: u64) -> Vec<CrawlCheckpointState> {
        let base = sample_state();
        (1..=n)
            .map(|round| {
                let mut s = base.clone();
                s.round = round;
                s
            })
            .collect()
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("slumckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    /// Flips one mid-file byte — enough to break the CRC.
    fn corrupt_file(path: &Path) {
        let mut bytes = fs::read(path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(path, bytes).unwrap();
    }

    #[test]
    fn generation_rollback_matrix_recovers_newest_intact() {
        // Corrupt each of the newest 3 generations in every combination
        // and pin exactly which generation load_latest restores, what
        // lands in quarantine and what the counters say.
        let header = sample_header();
        for mask in 0u64..8 {
            let corrupt: Vec<u64> =
                (1..=3).filter(|r| mask & (1 << (r - 1)) != 0).collect();
            let dir = scratch(&format!("matrix-{mask}"));
            let store = CheckpointStore::open(&dir).unwrap();
            for state in states(3) {
                store.save(&header, &state).unwrap();
            }
            for r in &corrupt {
                corrupt_file(&dir.join(CheckpointStore::file_name(*r)));
            }
            // load_latest walks newest→oldest: it quarantines exactly
            // the corrupt files *newer* than the newest intact one.
            let newest_intact = (1..=3).rev().find(|r| !corrupt.contains(r));
            let expect_quarantined = match newest_intact {
                Some(intact) => corrupt.iter().filter(|r| **r > intact).count() as u64,
                None => 3,
            };
            match store.load_latest() {
                Ok((h, state)) => {
                    let intact = newest_intact.expect("recovered despite all corrupt");
                    assert_eq!(h.round, intact, "mask {mask}: wrong generation restored");
                    assert_eq!(state.round, intact);
                    assert_eq!(
                        CkptStats::get(&store.stats().rollbacks),
                        u64::from(expect_quarantined > 0),
                        "mask {mask}: rollback count"
                    );
                }
                Err(CheckpointError::Quarantined { quarantined, .. }) => {
                    assert_eq!(newest_intact, None, "mask {mask}: spurious Quarantined");
                    assert_eq!(quarantined.len(), 3, "mask {mask}");
                }
                Err(e) => panic!("mask {mask}: unexpected error {e}"),
            }
            assert_eq!(
                CkptStats::get(&store.stats().quarantined),
                expect_quarantined,
                "mask {mask}: quarantine counter"
            );
            assert_eq!(store.epoch(), expect_quarantined, "mask {mask}: epoch");
            let in_quarantine = match fs::read_dir(store.quarantine_dir()) {
                Ok(entries) => entries.count() as u64,
                Err(_) => 0,
            };
            assert_eq!(in_quarantine, expect_quarantined, "mask {mask}: quarantine dir");
            // Surviving (non-quarantined) files are still listed.
            assert_eq!(
                store.list().unwrap().len() as u64,
                3 - expect_quarantined,
                "mask {mask}: remaining generations"
            );
            fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn save_prunes_to_the_retention_limit() {
        let dir = scratch("prune");
        let store = CheckpointStore::open(&dir).unwrap().with_keep_generations(4);
        let header = sample_header();
        for state in states(6) {
            store.save(&header, &state).unwrap();
        }
        let files = store.list().unwrap();
        assert_eq!(files.len(), 4, "keeps exactly K generations");
        assert!(files[0].ends_with("ckpt-000003.slumckpt"), "oldest kept is round 3");
        assert_eq!(CkptStats::get(&store.stats().pruned), 2);
        // Unlimited retention keeps everything.
        let dir2 = scratch("prune-unlimited");
        let store2 = CheckpointStore::open(&dir2).unwrap().with_keep_generations(0);
        for state in states(6) {
            store2.save(&header, &state).unwrap();
        }
        assert_eq!(store2.list().unwrap().len(), 6);
        fs::remove_dir_all(&dir).unwrap();
        fs::remove_dir_all(&dir2).unwrap();
    }

    #[test]
    fn epoch_survives_reopen_and_rerolls_fates() {
        // A quarantine by one store instance must advance the fault
        // schedule seen by the next instance over the same directory —
        // that is what breaks the repeated-torn-write livelock.
        let dir = scratch("epoch");
        let header = sample_header();
        let store = CheckpointStore::open(&dir).unwrap();
        for state in states(2) {
            store.save(&header, &state).unwrap();
        }
        corrupt_file(&dir.join(CheckpointStore::file_name(2)));
        let (h, _) = store.load_latest().unwrap();
        assert_eq!(h.round, 1);
        assert_eq!(store.epoch(), 1);
        let reopened = CheckpointStore::open(&dir).unwrap();
        assert_eq!(reopened.epoch(), 1, "epoch rebuilt from the quarantine dir");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_faults_follow_the_seeded_schedule() {
        use crate::diskfault::{DiskFault, DiskFaultProfile};
        let profile = DiskFaultProfile::harsh();
        let seed = 2016u64;
        let header = sample_header();
        let dir = scratch("faults");
        let store = CheckpointStore::open(&dir)
            .unwrap()
            .with_disk_faults(profile.clone(), seed)
            .with_keep_generations(0);
        let mut landed = Vec::new();
        // Each injected ENOSPC persistently advances the epoch (that is
        // the anti-livelock mechanism), so the expected schedule walks
        // the same moving key.
        let mut epoch = 0u64;
        for state in states(300) {
            match store.save(&header, &state) {
                Ok(path) => landed.push((state.round, epoch, path)),
                Err(CheckpointError::DiskFull { .. }) => {
                    assert_eq!(
                        profile.fate(seed, state.round, epoch),
                        Some(DiskFault::Full),
                        "round {}: ENOSPC off schedule",
                        state.round
                    );
                    epoch += 1;
                    assert_eq!(store.epoch(), epoch, "ENOSPC must bump the epoch");
                }
                Err(e) => panic!("round {}: {e}", state.round),
            }
        }
        let s = store.stats();
        assert!(CkptStats::get(&s.torn_writes) > 0, "harsh must tear some writes");
        assert!(CkptStats::get(&s.short_writes) > 0);
        assert!(CkptStats::get(&s.bit_flips) > 0);
        assert!(CkptStats::get(&s.disk_full) > 0);
        // Every file the schedule says was damaged must fail to decode;
        // every clean one must load.
        for (round, epoch, path) in &landed {
            let loadable = CheckpointStore::load(path).is_ok();
            match profile.fate(seed, *round, *epoch) {
                None => assert!(loadable, "round {round}: clean save must load"),
                Some(DiskFault::Full) => unreachable!("ENOSPC never lands a file"),
                Some(_) => assert!(!loadable, "round {round}: damaged save must not load"),
            }
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pre_substrate_headers_default_to_exchange() {
        // A header JSON without the substrate field (written before the
        // substrate refactor) must still parse and verify as exchange.
        let json = r#"{"version":1,"seed":5,"crawl_scale_ppm":300,"domain_scale_ppm":30000,"crawl_fault_profile":"none","checkpoint_every":7,"round":0,"body_len":0}"#;
        let header = parse_header(json).unwrap();
        assert_eq!(header.substrate, "exchange");
        assert_eq!(header.seed, 5);
        assert_eq!(header.checkpoint_every, 7);
    }
}
