//! Shortened-URL statistics (Table IV, §IV-A5).
//!
//! For every malicious shortened URL encountered on the exchanges, the
//! paper tabulates the public hit statistics the shortening services
//! expose: the short URL's hit count, the aggregate hit count of the
//! long URL it points to, the top visitor country, and the top referrer.

use std::collections::BTreeSet;

use slum_crawler::CrawlRecord;
use slum_websim::{SyntheticWeb, Url};

use crate::scanpipe::ScanOutcome;

/// One Table IV row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShortenedRow {
    /// The shortened URL (e.g. `http://goo.gl/VAdNHA`).
    pub short_url: Url,
    /// Hits on the shortened URL.
    pub short_hits: u64,
    /// Aggregate hits across all short codes of this service pointing at
    /// the same long URL.
    pub long_url_hits: u64,
    /// Top visitor country, `"-"` when unknown.
    pub top_country: String,
    /// Top referrer, `"-"` when the hits carried no referrer.
    pub top_referrer: String,
}

/// Builds Table IV: collects the distinct malicious shortened URLs in
/// the corpus and queries the services' public statistics.
pub fn shortened_rows(
    web: &SyntheticWeb,
    pairs: &[(&CrawlRecord, &ScanOutcome)],
) -> Vec<ShortenedRow> {
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut rows = Vec::new();
    for (record, outcome) in pairs {
        if !outcome.malicious || !record.via_shortener {
            continue;
        }
        // The short URL is the first shortener host on the chain — for
        // listings the surfed URL itself. Exchanges append tracking
        // query parameters; the canonical short link is host + code.
        let short_url = if web.shorteners().is_shortener_host(record.url.host()) {
            Url::http(record.url.host(), record.url.path())
        } else {
            continue;
        };
        if !seen.insert(short_url.canonical()) {
            continue;
        }
        let service = web
            .shorteners()
            .service(short_url.host())
            .expect("host checked as shortener");
        let code = short_url.path().trim_start_matches('/');
        let Some(stats) = service.stats(code) else { continue };
        let long_url_hits = service
            .peek(code)
            .map(|target| service.long_url_hits(&target))
            .unwrap_or(stats.hits);
        rows.push(ShortenedRow {
            short_url,
            short_hits: stats.hits,
            long_url_hits,
            top_country: stats.top_country().unwrap_or("-").to_string(),
            top_referrer: stats.top_referrer().unwrap_or("-").to_string(),
        });
    }
    rows.sort_by_key(|r| std::cmp::Reverse(r.short_hits));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use slum_browser::Browser;
    use slum_detect::quttera::{QutteraReport, QutteraVerdict};
    use slum_detect::virustotal::VtReport;
    use slum_websim::build::WebBuilder;
    use slum_websim::{ContentCategory, Tld};

    fn outcome(malicious: bool) -> ScanOutcome {
        ScanOutcome {
            malicious,
            vt: VtReport { detections: vec![], total_engines: 12, threshold: 2 },
            quttera: QutteraReport {
                url: Url::parse("http://x.example/").unwrap(),
                findings: vec![],
                verdict: QutteraVerdict::Clean,
            },
            blacklisted_domain: None,
            needed_content_upload: false,
            source: crate::scanpipe::VerdictSource::Full,
            faults: crate::scanpipe::FaultLog::default(),
        }
    }

    #[test]
    fn rows_built_from_crawled_short_urls() {
        let mut b = WebBuilder::new(220);
        let spec1 = b.shortened_site(Tld::Com, ContentCategory::Business);
        let spec2 = b.shortened_site(Tld::Net, ContentCategory::Advertisement);
        let web = b.finish();

        let records: Vec<CrawlRecord> = [&spec1.url, &spec2.url]
            .iter()
            .map(|u| {
                let load = Browser::new(&web).load(u);
                CrawlRecord::from_load("X", 0, 0, &load)
            })
            .collect();
        let outcomes = vec![outcome(true), outcome(true)];
        let pairs: Vec<_> = records.iter().zip(&outcomes).collect();
        let rows = shortened_rows(&web, &pairs);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(web.shorteners().is_shortener_host(row.short_url.host()));
            assert!(row.short_hits > 1_000, "organic traffic seeded: {}", row.short_hits);
            assert!(row.long_url_hits >= row.short_hits);
            assert_ne!(row.top_country, "");
        }
        // Sorted by hits descending.
        assert!(rows[0].short_hits >= rows[1].short_hits);
    }

    #[test]
    fn duplicates_and_benign_excluded() {
        let mut b = WebBuilder::new(221);
        let spec = b.shortened_site(Tld::Com, ContentCategory::Business);
        let web = b.finish();
        let load = Browser::new(&web).load(&spec.url);
        let rec = CrawlRecord::from_load("X", 0, 0, &load);
        let records = vec![rec.clone(), rec.clone(), rec];
        let outcomes = vec![outcome(true), outcome(true), outcome(false)];
        let pairs: Vec<_> = records.iter().zip(&outcomes).collect();
        let rows = shortened_rows(&web, &pairs);
        assert_eq!(rows.len(), 1, "dedup by short URL; benign visit ignored");
    }

    #[test]
    fn non_shortener_records_skipped() {
        let mut b = WebBuilder::new(222);
        let site = b.benign_site(Default::default());
        let web = b.finish();
        let load = Browser::new(&web).load(&site.url);
        let mut rec = CrawlRecord::from_load("X", 0, 0, &load);
        rec.via_shortener = true; // inconsistent flag; host check must catch it
        let o = outcome(true);
        let rows = shortened_rows(&web, &[(&rec, &o)]);
        assert!(rows.is_empty());
    }

    #[test]
    fn empty_store_yields_no_rows() {
        let b = WebBuilder::new(223);
        let web = b.finish();
        assert!(shortened_rows(&web, &[]).is_empty());
    }
}
