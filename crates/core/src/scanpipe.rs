//! Scanning orchestration: VirusTotal + Quttera + blacklists, with the
//! cloaking-defeating content-upload fallback.
//!
//! Methodology (§III-B + footnote 1): every regular URL is scanned
//! through the detection services. Some malicious sites cloak — they
//! serve benign content to scanner fetches — so for URLs whose URL scan
//! comes back clean, the pipeline uploads the page content the crawler's
//! *browser* captured, which defeats the cloak.

use std::collections::HashMap;

use slum_browser::Browser;
use slum_crawler::CrawlRecord;
use slum_detect::blacklist::BlacklistDb;
use slum_detect::quttera::{Quttera, QutteraFinding, QutteraReport};
use slum_detect::virustotal::{VirusTotal, VtReport};
use slum_detect::Features;
use slum_websim::{RequestContext, SyntheticWeb, Url};

/// Verdict and evidence for one scanned record.
#[derive(Debug, Clone)]
pub struct ScanOutcome {
    /// Final verdict.
    pub malicious: bool,
    /// VirusTotal report (URL scan, or content scan when that was the
    /// deciding path).
    pub vt: VtReport,
    /// Quttera report.
    pub quttera: QutteraReport,
    /// Blacklist consensus hit on any chain domain.
    pub blacklisted_domain: Option<String>,
    /// Whether the verdict required the content-upload path (i.e. the
    /// URL scan was clean but the uploaded browser capture was not).
    pub needed_content_upload: bool,
}

impl ScanOutcome {
    /// All threat labels from the VT report.
    pub fn labels(&self) -> Vec<&str> {
        self.vt.labels()
    }

    /// Quttera findings.
    pub fn findings(&self) -> &[QutteraFinding] {
        &self.quttera.findings
    }
}

/// The scanning pipeline, holding the services and a feature cache.
pub struct ScanPipeline<'w> {
    web: &'w SyntheticWeb,
    vt: VirusTotal<'w>,
    quttera: Quttera<'w>,
    blacklists: BlacklistDb,
    /// URL-scan features cache: one scanner fetch per distinct URL.
    url_features: HashMap<String, Features>,
}

impl<'w> ScanPipeline<'w> {
    /// Creates the pipeline; blacklists are populated from the web
    /// oracle (standing in for the six public snapshots).
    pub fn new(web: &'w SyntheticWeb) -> Self {
        ScanPipeline {
            web,
            vt: VirusTotal::new(web),
            quttera: Quttera::new(web),
            blacklists: BlacklistDb::populate_from_web(web),
            url_features: HashMap::new(),
        }
    }

    /// Direct access to the blacklist database.
    pub fn blacklists(&self) -> &BlacklistDb {
        &self.blacklists
    }

    /// Scans one crawl record.
    pub fn scan(&mut self, record: &CrawlRecord) -> ScanOutcome {
        // 1. Blacklist consensus over every domain on the redirect chain
        //    (the entry URL may be benign while the destination is not).
        let blacklisted_domain = record
            .chain_hosts
            .iter()
            .map(|h| slum_websim::domain::registered_domain(h))
            .find(|d| self.blacklists.check(d).is_blacklisted());

        // 2. URL scans (scanner-side fetch; cloaking applies).
        let url_features = self.url_features(&record.url);
        let key = record.url.canonical();
        let mut vt = self.vt.aggregate(&key, &url_features);
        let mut quttera = self.quttera.report(&record.url, &url_features);
        let mut needed_content_upload = false;

        // 3. Content upload for URL-scan-clean pages with captured
        //    content (the cloaking defeat).
        if !vt.is_malicious() && !quttera.is_malicious() {
            if let Some(content) = &record.content {
                let vt_content = self.vt.scan_content(&record.url, content);
                let quttera_content = self.quttera.scan_content(&record.url, content);
                if vt_content.is_malicious() || quttera_content.is_malicious() {
                    needed_content_upload = true;
                    vt = vt_content;
                    quttera = quttera_content;
                }
            }
        }

        let malicious =
            vt.is_malicious() || quttera.is_malicious() || blacklisted_domain.is_some();
        ScanOutcome { malicious, vt, quttera, blacklisted_domain, needed_content_upload }
    }

    /// Scans a batch, preserving order.
    pub fn scan_all(&mut self, records: &[CrawlRecord]) -> Vec<ScanOutcome> {
        records.iter().map(|r| self.scan(r)).collect()
    }

    /// Cached feature extraction for the URL-scan path: one scanner
    /// fetch per distinct URL, shared between VT and Quttera. Redirected
    /// loads mark the redirect feature the way the Quttera URL scan
    /// does.
    fn url_features(&mut self, url: &Url) -> Features {
        let key = url.canonical();
        if let Some(f) = self.url_features.get(&key) {
            return f.clone();
        }
        let browser =
            Browser::new(self.web).with_context(RequestContext::scanner("pipeline"));
        let load = browser.load(url);
        let mut features = Features::from_load(&load);
        if load.was_redirected() {
            features.js_redirect = true;
        }
        self.url_features.insert(key, features.clone());
        features
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slum_browser::Browser;
    use slum_crawler::CrawlRecord;
    use slum_websim::build::{BenignOptions, MaliciousOptions, WebBuilder};
    use slum_websim::{ContentCategory, JsAttack, MaliceKind, Tld};

    fn record_for(web: &SyntheticWeb, url: &Url) -> CrawlRecord {
        let load = Browser::new(web).load(url);
        CrawlRecord::from_load("test", 0, 0, &load)
    }

    #[test]
    fn benign_record_scans_clean() {
        let mut b = WebBuilder::new(200);
        let site = b.benign_site(BenignOptions::default());
        let web = b.finish();
        let mut pipe = ScanPipeline::new(&web);
        let outcome = pipe.scan(&record_for(&web, &site.url));
        assert!(!outcome.malicious);
        assert!(!outcome.needed_content_upload);
    }

    #[test]
    fn blacklisted_record_flagged_via_consensus() {
        let mut b = WebBuilder::new(201);
        let spec = b.malicious_site(MaliciousOptions {
            kind: Some(MaliceKind::Blacklisted),
            cloaked: Some(false),
            ..Default::default()
        });
        let web = b.finish();
        let mut pipe = ScanPipeline::new(&web);
        let outcome = pipe.scan(&record_for(&web, &spec.url));
        assert!(outcome.malicious);
        assert_eq!(outcome.blacklisted_domain, Some(spec.url.registered_domain()));
    }

    #[test]
    fn js_attack_flagged_by_engines() {
        let mut b = WebBuilder::new(202);
        let spec = b.js_site(JsAttack::DynamicIframe, Tld::Com, ContentCategory::Business, false);
        let web = b.finish();
        let mut pipe = ScanPipeline::new(&web);
        let outcome = pipe.scan(&record_for(&web, &spec.url));
        assert!(outcome.malicious);
        assert!(outcome.vt.is_malicious() || outcome.quttera.is_malicious());
    }

    #[test]
    fn cloaked_misc_needs_content_upload() {
        let mut b = WebBuilder::new(203);
        let spec = b.misc_site(Tld::Com, ContentCategory::Business, true);
        let web = b.finish();
        let mut pipe = ScanPipeline::new(&web);
        let outcome = pipe.scan(&record_for(&web, &spec.url));
        assert!(outcome.malicious);
        assert!(outcome.needed_content_upload, "cloak must force the upload path");
    }

    #[test]
    fn cloaked_page_without_capture_evades_entirely() {
        let mut b = WebBuilder::new(204);
        let spec = b.misc_site(Tld::Com, ContentCategory::Business, true);
        let web = b.finish();
        let mut pipe = ScanPipeline::new(&web);
        let mut record = record_for(&web, &spec.url);
        record.content = None; // crawler didn't keep the page
        let outcome = pipe.scan(&record);
        assert!(!outcome.malicious, "no content, no blacklist entry, cloaked: evades");
    }

    #[test]
    fn scan_all_preserves_order_and_caches() {
        let mut b = WebBuilder::new(205);
        let benign = b.benign_site(BenignOptions::default());
        let bad = b.js_site(JsAttack::HiddenIframe, Tld::Com, ContentCategory::Business, false);
        let web = b.finish();
        let mut pipe = ScanPipeline::new(&web);
        let records = vec![
            record_for(&web, &benign.url),
            record_for(&web, &bad.url),
            record_for(&web, &benign.url),
        ];
        let outcomes = pipe.scan_all(&records);
        assert_eq!(outcomes.len(), 3);
        assert!(!outcomes[0].malicious);
        assert!(outcomes[1].malicious);
        assert!(!outcomes[2].malicious);
    }
}
