//! Scanning orchestration: VirusTotal + Quttera + blacklists, with the
//! cloaking-defeating content-upload fallback.
//!
//! Methodology (§III-B + footnote 1): every regular URL is scanned
//! through the detection services. Some malicious sites cloak — they
//! serve benign content to scanner fetches — so for URLs whose URL scan
//! comes back clean, the pipeline uploads the page content the crawler's
//! *browser* captured, which defeats the cloak.
//!
//! The pipeline is data-parallel: [`ScanPipeline::scan`] takes `&self`,
//! all memoization lives in sharded concurrent caches
//! ([`slum_detect::ShardedCache`]), and [`ScanPipeline::scan_all_parallel`]
//! fans a batch out over scoped worker threads while keeping the output
//! order — and the verdicts themselves — identical to the serial path.

use slum_browser::Browser;
use slum_crawler::CrawlRecord;
use slum_detect::blacklist::BlacklistDb;
use slum_detect::quttera::{Quttera, QutteraFinding, QutteraReport};
use slum_detect::virustotal::{VirusTotal, VtReport};
use slum_detect::{Features, ShardedCache};
use slum_websim::{RequestContext, SyntheticWeb, Url};

/// Verdict and evidence for one scanned record.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanOutcome {
    /// Final verdict.
    pub malicious: bool,
    /// VirusTotal report (URL scan, or content scan when that was the
    /// deciding path).
    pub vt: VtReport,
    /// Quttera report.
    pub quttera: QutteraReport,
    /// Blacklist consensus hit on any chain domain.
    pub blacklisted_domain: Option<String>,
    /// Whether the verdict required the content-upload path (i.e. the
    /// URL scan was clean but the uploaded browser capture was not).
    pub needed_content_upload: bool,
}

impl ScanOutcome {
    /// All threat labels from the VT report.
    pub fn labels(&self) -> Vec<&str> {
        self.vt.labels()
    }

    /// Quttera findings.
    pub fn findings(&self) -> &[QutteraFinding] {
        &self.quttera.findings
    }
}

/// The scanning pipeline: detection services plus the shared
/// memoization caches. Every method takes `&self`, so one pipeline can
/// be driven from many scan workers at once.
pub struct ScanPipeline<'w> {
    web: &'w SyntheticWeb,
    vt: VirusTotal<'w>,
    quttera: Quttera<'w>,
    blacklists: BlacklistDb,
    /// URL-scan features: one scanner fetch per distinct canonical URL.
    url_features: ShardedCache<Features>,
    /// Host → registered domain, so chain hosts repeated across records
    /// don't re-derive the suffix computation.
    host_domains: ShardedCache<String>,
    /// Registered domain → blacklist-consensus verdict. The consensus
    /// walks all six lists; memoizing it per domain collapses that to
    /// one walk per distinct domain across the whole corpus.
    domain_blacklisted: ShardedCache<bool>,
}

impl<'w> ScanPipeline<'w> {
    /// Creates the pipeline; blacklists are populated from the web
    /// oracle (standing in for the six public snapshots).
    pub fn new(web: &'w SyntheticWeb) -> Self {
        ScanPipeline {
            web,
            vt: VirusTotal::new(web),
            quttera: Quttera::new(web),
            blacklists: BlacklistDb::populate_from_web(web),
            url_features: ShardedCache::new(),
            host_domains: ShardedCache::new(),
            domain_blacklisted: ShardedCache::new(),
        }
    }

    /// Direct access to the blacklist database.
    pub fn blacklists(&self) -> &BlacklistDb {
        &self.blacklists
    }

    /// Drops all memoized state (URL features, domain derivations,
    /// consensus verdicts). Verdicts are deterministic with or without
    /// warm caches; benchmarks use this to measure cold scans without
    /// paying pipeline construction again.
    pub fn clear_caches(&self) {
        self.url_features.clear();
        self.host_domains.clear();
        self.domain_blacklisted.clear();
    }

    /// Number of distinct URLs whose scan features are currently cached.
    pub fn cached_urls(&self) -> usize {
        self.url_features.len()
    }

    /// Lookup/entry/hit statistics for each of the three memoization
    /// caches, keyed by the metric group name used under
    /// `scan.cache.*`. Hits are derived (`lookups - entries`), so the
    /// numbers are deterministic for every worker count.
    pub fn cache_stats(&self) -> [(&'static str, slum_detect::CacheStats); 3] {
        [
            ("url_features", self.url_features.stats()),
            ("host_domains", self.host_domains.stats()),
            ("domain_blacklisted", self.domain_blacklisted.stats()),
        ]
    }

    /// Scans one crawl record.
    pub fn scan(&self, record: &CrawlRecord) -> ScanOutcome {
        // 1. Blacklist consensus over every domain on the redirect chain
        //    (the entry URL may be benign while the destination is not).
        let blacklisted_domain = self.chain_blacklist_hit(record);

        // 2. URL scans (scanner-side fetch; cloaking applies).
        let url_features = self.url_features(&record.url);
        let key = record.url.canonical();
        let mut vt = self.vt.aggregate(&key, &url_features);
        let mut quttera = self.quttera.report(&record.url, &url_features);
        let mut needed_content_upload = false;

        // 3. Content upload for URL-scan-clean pages with captured
        //    content (the cloaking defeat).
        if !vt.is_malicious() && !quttera.is_malicious() {
            if let Some(content) = &record.content {
                let vt_content = self.vt.scan_content(&record.url, content);
                let quttera_content = self.quttera.scan_content(&record.url, content);
                if vt_content.is_malicious() || quttera_content.is_malicious() {
                    needed_content_upload = true;
                    vt = vt_content;
                    quttera = quttera_content;
                }
            }
        }

        let malicious =
            vt.is_malicious() || quttera.is_malicious() || blacklisted_domain.is_some();
        ScanOutcome { malicious, vt, quttera, blacklisted_domain, needed_content_upload }
    }

    /// Scans a batch serially, preserving order.
    pub fn scan_all(&self, records: &[CrawlRecord]) -> Vec<ScanOutcome> {
        records.iter().map(|r| self.scan(r)).collect()
    }

    /// Scans a batch across `workers` scoped threads.
    ///
    /// Records are split into contiguous chunks, each worker scans its
    /// chunk independently against the shared caches, and the per-chunk
    /// results are concatenated in input order — so the output is
    /// index-aligned with `records` and identical to
    /// [`ScanPipeline::scan_all`] for every worker count (verdicts are
    /// pure functions of the record; caches only change *when* work
    /// happens, never its result).
    pub fn scan_all_parallel(&self, records: &[CrawlRecord], workers: usize) -> Vec<ScanOutcome> {
        let workers = workers.max(1).min(records.len().max(1));
        if workers == 1 {
            return self.scan_all(records);
        }
        let chunk_len = records.len().div_ceil(workers);
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = records
                .chunks(chunk_len)
                .map(|chunk| scope.spawn(move |_| self.scan_all(chunk)))
                .collect();
            let mut merged = Vec::with_capacity(records.len());
            for handle in handles {
                merged.extend(handle.join().expect("scan worker panicked"));
            }
            merged
        })
        .expect("scan scope panicked")
    }

    /// Chain-wide blacklist check: first registered domain on the
    /// redirect chain that hits the list consensus. Domain derivation is
    /// memoized per host and the consensus per domain, so repeated
    /// chains cost two cache reads per hop.
    fn chain_blacklist_hit(&self, record: &CrawlRecord) -> Option<String> {
        for host in &record.chain_hosts {
            let domain = self
                .host_domains
                .get_or_insert_with(host, || slum_websim::domain::registered_domain(host));
            let hit = self
                .domain_blacklisted
                .get_or_insert_with(&domain, || self.blacklists.check(&domain).is_blacklisted());
            if hit {
                return Some(domain);
            }
        }
        None
    }

    /// Cached feature extraction for the URL-scan path: one scanner
    /// fetch per distinct URL, shared between VT and Quttera (and
    /// between scan workers). Redirected loads mark the redirect
    /// feature the way the Quttera URL scan does.
    fn url_features(&self, url: &Url) -> Features {
        self.url_features.get_or_insert_with(&url.canonical(), || {
            let browser =
                Browser::new(self.web).with_context(RequestContext::scanner("pipeline"));
            let load = browser.load(url);
            let mut features = Features::from_load(&load);
            if load.was_redirected() {
                features.js_redirect = true;
            }
            features
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slum_browser::Browser;
    use slum_crawler::CrawlRecord;
    use slum_websim::build::{BenignOptions, MaliciousOptions, WebBuilder};
    use slum_websim::{ContentCategory, JsAttack, MaliceKind, Tld};

    fn record_for(web: &SyntheticWeb, url: &Url) -> CrawlRecord {
        let load = Browser::new(web).load(url);
        CrawlRecord::from_load("test", 0, 0, &load)
    }

    #[test]
    fn benign_record_scans_clean() {
        let mut b = WebBuilder::new(200);
        let site = b.benign_site(BenignOptions::default());
        let web = b.finish();
        let pipe = ScanPipeline::new(&web);
        let outcome = pipe.scan(&record_for(&web, &site.url));
        assert!(!outcome.malicious);
        assert!(!outcome.needed_content_upload);
    }

    #[test]
    fn blacklisted_record_flagged_via_consensus() {
        let mut b = WebBuilder::new(201);
        let spec = b.malicious_site(MaliciousOptions {
            kind: Some(MaliceKind::Blacklisted),
            cloaked: Some(false),
            ..Default::default()
        });
        let web = b.finish();
        let pipe = ScanPipeline::new(&web);
        let outcome = pipe.scan(&record_for(&web, &spec.url));
        assert!(outcome.malicious);
        assert_eq!(outcome.blacklisted_domain, Some(spec.url.registered_domain()));
    }

    #[test]
    fn js_attack_flagged_by_engines() {
        let mut b = WebBuilder::new(202);
        let spec = b.js_site(JsAttack::DynamicIframe, Tld::Com, ContentCategory::Business, false);
        let web = b.finish();
        let pipe = ScanPipeline::new(&web);
        let outcome = pipe.scan(&record_for(&web, &spec.url));
        assert!(outcome.malicious);
        assert!(outcome.vt.is_malicious() || outcome.quttera.is_malicious());
    }

    #[test]
    fn cloaked_misc_needs_content_upload() {
        let mut b = WebBuilder::new(203);
        let spec = b.misc_site(Tld::Com, ContentCategory::Business, true);
        let web = b.finish();
        let pipe = ScanPipeline::new(&web);
        let outcome = pipe.scan(&record_for(&web, &spec.url));
        assert!(outcome.malicious);
        assert!(outcome.needed_content_upload, "cloak must force the upload path");
    }

    #[test]
    fn cloaked_page_without_capture_evades_entirely() {
        let mut b = WebBuilder::new(204);
        let spec = b.misc_site(Tld::Com, ContentCategory::Business, true);
        let web = b.finish();
        let pipe = ScanPipeline::new(&web);
        let mut record = record_for(&web, &spec.url);
        record.content = None; // crawler didn't keep the page
        let outcome = pipe.scan(&record);
        assert!(!outcome.malicious, "no content, no blacklist entry, cloaked: evades");
    }

    #[test]
    fn scan_all_preserves_order_and_caches() {
        let mut b = WebBuilder::new(205);
        let benign = b.benign_site(BenignOptions::default());
        let bad = b.js_site(JsAttack::HiddenIframe, Tld::Com, ContentCategory::Business, false);
        let web = b.finish();
        let pipe = ScanPipeline::new(&web);
        let records = vec![
            record_for(&web, &benign.url),
            record_for(&web, &bad.url),
            record_for(&web, &benign.url),
        ];
        let outcomes = pipe.scan_all(&records);
        assert_eq!(outcomes.len(), 3);
        assert!(!outcomes[0].malicious);
        assert!(outcomes[1].malicious);
        assert!(!outcomes[2].malicious);
        // Two distinct URLs => two cached feature entries.
        assert_eq!(pipe.cached_urls(), 2);
        pipe.clear_caches();
        assert_eq!(pipe.cached_urls(), 0);
    }

    #[test]
    fn parallel_matches_serial_even_with_more_workers_than_records() {
        let mut b = WebBuilder::new(206);
        let specs = [
            b.benign_site(BenignOptions::default()),
            b.js_site(JsAttack::HiddenIframe, Tld::Com, ContentCategory::Business, false),
            b.misc_site(Tld::Com, ContentCategory::Business, true),
        ];
        let web = b.finish();
        let pipe = ScanPipeline::new(&web);
        let records: Vec<CrawlRecord> =
            specs.iter().map(|s| record_for(&web, &s.url)).collect();
        let serial = pipe.scan_all(&records);
        for workers in [2, 3, 16] {
            pipe.clear_caches();
            assert_eq!(pipe.scan_all_parallel(&records, workers), serial, "workers={workers}");
        }
    }
}
