//! Scanning orchestration: VirusTotal + Quttera + blacklists, with the
//! cloaking-defeating content-upload fallback.
//!
//! Methodology (§III-B + footnote 1): every regular URL is scanned
//! through the detection services. Some malicious sites cloak — they
//! serve benign content to scanner fetches — so for URLs whose URL scan
//! comes back clean, the pipeline uploads the page content the crawler's
//! *browser* captured, which defeats the cloak.
//!
//! The pipeline is data-parallel: [`ScanPipeline::scan`] takes `&self`,
//! all memoization lives in sharded concurrent caches
//! ([`slum_detect::ShardedCache`]), and [`ScanPipeline::scan_all_parallel`]
//! fans a batch out over scoped worker threads while keeping the output
//! order — and the verdicts themselves — identical to the serial path.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use slum_browser::Browser;
use slum_crawler::CrawlRecord;
use slum_detect::blacklist::BlacklistDb;
use slum_detect::fault::{FaultPlan, ScanService, ServiceDecision};
use slum_detect::hash::fnv1a;
use slum_detect::quttera::{Quttera, QutteraFinding, QutteraReport, QutteraVerdict};
use slum_detect::virustotal::{VirusTotal, VtReport};
use slum_detect::{Features, Interner, JsModuleCache, ShardedCache};
use slum_js::sandbox::{JsEngine, SandboxReport};
use slum_js::ModuleStore;
use slum_websim::{RequestContext, SyntheticWeb, Url};

/// Which services contributed to a verdict — the provenance record the
/// related mal-activity-measurement literature argues must accompany
/// any verdict produced under partial service failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VerdictSource {
    /// Every service answered: VirusTotal, Quttera and the blacklists.
    Full,
    /// At least one scanner (VT or Quttera) answered, but some service
    /// was unavailable.
    Degraded,
    /// Both scanners were down; only the blacklist consensus answered.
    BlacklistOnly,
    /// Everything was down: the verdict defaults to benign and carries
    /// no evidence.
    Unresolved,
}

impl VerdictSource {
    /// Stable metric-segment name.
    pub fn name(self) -> &'static str {
        match self {
            VerdictSource::Full => "full",
            VerdictSource::Degraded => "degraded",
            VerdictSource::BlacklistOnly => "blacklist_only",
            VerdictSource::Unresolved => "unresolved",
        }
    }

    fn classify(vt_up: bool, quttera_up: bool, blacklist_up: bool) -> VerdictSource {
        match (vt_up, quttera_up, blacklist_up) {
            (true, true, true) => VerdictSource::Full,
            (true, _, _) | (_, true, _) => VerdictSource::Degraded,
            (false, false, true) => VerdictSource::BlacklistOnly,
            (false, false, false) => VerdictSource::Unresolved,
        }
    }
}

/// What the fault layer cost one record: injected faults observed,
/// retries issued, virtual backoff spent, services skipped by an open
/// breaker. All-zero when fault injection is inert, so tallies derived
/// from it stay deterministic and strictly opt-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultLog {
    /// Failed attempts across all services (each is one injected fault
    /// the pipeline observed).
    pub injected: u32,
    /// Retries issued across all services.
    pub retries: u32,
    /// Total virtual backoff spent waiting between attempts.
    pub backoff_nanos: u64,
    /// Services skipped outright because their breaker was open.
    pub breaker_skips: u32,
}

impl FaultLog {
    fn from_decisions(decisions: &[ServiceDecision; 3]) -> FaultLog {
        let mut log = FaultLog::default();
        for d in decisions {
            log.injected += d.injected();
            log.retries += d.retries();
            log.backoff_nanos += d.backoff_nanos();
            if *d == ServiceDecision::BreakerSkip {
                log.breaker_skips += 1;
            }
        }
        log
    }
}

/// The schedule-independent identity of a record in a fault plan:
/// `exchange#seq` is unique per corpus and fixed by the crawl, never by
/// scan-worker chunking.
///
/// Only plan *compilation* materializes these strings (once per
/// record); the scan hot path looks decisions up allocation-free via
/// [`FaultPlan::decisions_for`] with the record's own fields.
pub fn scan_key(record: &CrawlRecord) -> String {
    format!("{}#{}", record.exchange, record.seq)
}

/// Default scan work-unit size: records per chunk pulled by a parallel
/// scan worker, and the surf-slot budget per streamed crawl chunk in
/// the overlapped pipeline. Small enough to load-balance, large enough
/// that the atomic pull and channel hop amortize to noise.
pub const DEFAULT_SCAN_CHUNK: usize = 256;

/// Default corpus size below which the scan phase runs serially.
///
/// Thread spawn/join and cold shared caches cost more than they save on
/// small corpora (the crawl_scale 0.001 CI runs measured parallel scans
/// *slower* than serial), so below this many records the study ignores
/// the configured worker count and takes the serial path.
pub const DEFAULT_SERIAL_SCAN_THRESHOLD: usize = 4096;

/// The worker count the scan phase actually uses for `record_count`
/// records when the caller asked for `requested` workers.
///
/// Three clamps, in order: below `serial_threshold` records the answer
/// is 1 (spawn overhead dominates — the small-corpus regression this
/// fixes); the count never exceeds the host's available parallelism
/// (extra threads on a saturated host only add contention); and it
/// never exceeds the record count. The choice is invisible in results —
/// outputs are identical for every worker count — so this is purely a
/// scheduling decision.
pub fn effective_scan_workers(
    record_count: usize,
    requested: usize,
    serial_threshold: usize,
) -> usize {
    if record_count < serial_threshold {
        return 1;
    }
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(usize::MAX);
    requested.max(1).min(cores).min(record_count.max(1))
}

/// Verdict and evidence for one scanned record.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanOutcome {
    /// Final verdict.
    pub malicious: bool,
    /// VirusTotal report (URL scan, or content scan when that was the
    /// deciding path).
    pub vt: VtReport,
    /// Quttera report.
    pub quttera: QutteraReport,
    /// Blacklist consensus hit on any chain domain (interned: every
    /// record hitting the same domain shares one allocation).
    pub blacklisted_domain: Option<Arc<str>>,
    /// Whether the verdict required the content-upload path (i.e. the
    /// URL scan was clean but the uploaded browser capture was not).
    pub needed_content_upload: bool,
    /// Which services contributed to the verdict.
    pub source: VerdictSource,
    /// What the fault layer cost this record (all-zero without faults).
    pub faults: FaultLog,
}

impl ScanOutcome {
    /// All threat labels from the VT report.
    pub fn labels(&self) -> Vec<&str> {
        self.vt.labels()
    }

    /// Quttera findings.
    pub fn findings(&self) -> &[QutteraFinding] {
        &self.quttera.findings
    }
}

/// The complete memoization state of a [`ScanPipeline`], split out so
/// several pipelines can share one warm set via `Arc` — the slum-serve
/// daemon hands the same `ScanCaches` to every tenant studying the same
/// synthetic web, so a URL scanned for one tenant answers from cache
/// for the next.
///
/// Sharing is sound only between pipelines scanning the *same* web
/// (same seed, scales, substrate and JS engine): every cached value is
/// a pure function of `(web, key)`, so a shared entry is bit-identical
/// to what a cold cache would recompute. Verdicts and artifacts cannot
/// change under sharing — only the `scan.cache.*` / `js.vm.*` hit
/// counters observe it.
pub struct ScanCaches {
    /// URL-scan features: one scanner fetch per distinct canonical URL.
    url_features: ShardedCache<Features>,
    /// Content-upload features, keyed `canonical#content-hash`: the VT
    /// file scan and the Quttera content scan both need them, and the
    /// same capture recurs across records, so extraction runs once per
    /// distinct capture instead of twice per record.
    content_features: ShardedCache<Features>,
    /// Host → registered domain (interned), so chain hosts repeated
    /// across records don't re-derive the suffix computation or
    /// allocate a fresh domain string per hop.
    host_domains: ShardedCache<Arc<str>>,
    /// Registered domain → blacklist-consensus verdict. The consensus
    /// walks all six lists; memoizing it per domain collapses that to
    /// one walk per distinct domain across the whole corpus.
    domain_blacklisted: ShardedCache<bool>,
    /// Deduplicating pool behind `host_domains` values and
    /// `blacklisted_domain` outcomes.
    interner: Interner,
    /// Compiled-module cache shared across scan workers: campaign pages
    /// reusing the same packed payload compile it once. Only consulted
    /// under [`JsEngine::Vm`].
    js_modules: Arc<JsModuleCache>,
    /// Per-sample JS execution stats, keyed like the feature caches
    /// (canonical URL for URL scans, `canon#hash` for content uploads).
    /// Memoizing per sample makes the `js.vm.*` execution counters
    /// deterministic across worker counts: racing duplicate computes
    /// collapse to one entry per distinct sample.
    js_stats: ShardedCache<JsRunStats>,
}

impl ScanCaches {
    /// Fresh, cold caches.
    pub fn new() -> Self {
        ScanCaches {
            url_features: ShardedCache::new(),
            content_features: ShardedCache::new(),
            host_domains: ShardedCache::new(),
            domain_blacklisted: ShardedCache::new(),
            interner: Interner::new(),
            js_modules: Arc::new(JsModuleCache::new()),
            js_stats: ShardedCache::new(),
        }
    }

    /// Drops all memoized state except the compiled-module cache (see
    /// [`ScanPipeline::clear_caches`] for the rationale).
    pub fn clear(&self) {
        self.url_features.clear();
        self.content_features.clear();
        self.host_domains.clear();
        self.domain_blacklisted.clear();
        self.js_stats.clear();
    }

    /// Drops the compiled-JS module cache too (fully cold scans).
    pub fn clear_modules(&self) {
        self.js_modules.clear();
    }

    /// Number of distinct URLs whose scan features are currently cached.
    pub fn cached_urls(&self) -> usize {
        self.url_features.len()
    }

    /// Lookup/entry/hit statistics for each of the four memoization
    /// caches, keyed by the metric group name used under
    /// `scan.cache.*`. Hits are derived (`lookups - entries`), so the
    /// numbers are deterministic for every worker count.
    pub fn stats(&self) -> [(&'static str, slum_detect::CacheStats); 4] {
        [
            ("url_features", self.url_features.stats()),
            ("content_features", self.content_features.stats()),
            ("host_domains", self.host_domains.stats()),
            ("domain_blacklisted", self.domain_blacklisted.stats()),
        ]
    }

    /// Aggregated JS-engine statistics (see [`JsVmStats`]).
    pub fn js_vm_stats(&self) -> JsVmStats {
        let per_sample = self.js_stats.fold(JsRunStats::default(), |acc, _key, s| JsRunStats {
            instructions: acc.instructions + s.instructions,
            module_lookups: acc.module_lookups + s.module_lookups,
            budget_exhaustions: acc.budget_exhaustions + s.budget_exhaustions,
        });
        let compiles = self.js_modules.len() as u64;
        JsVmStats {
            compiles,
            compile_nanos: self.js_modules.total_compile_nanos(),
            module_lookups: per_sample.module_lookups,
            module_hits: per_sample.module_lookups.saturating_sub(compiles),
            instructions: per_sample.instructions,
            budget_exhaustions: per_sample.budget_exhaustions,
        }
    }
}

impl Default for ScanCaches {
    fn default() -> Self {
        ScanCaches::new()
    }
}

/// The scanning pipeline: detection services plus the shared
/// memoization caches. Every method takes `&self`, so one pipeline can
/// be driven from many scan workers at once.
pub struct ScanPipeline<'w> {
    web: &'w SyntheticWeb,
    vt: VirusTotal<'w>,
    quttera: Quttera<'w>,
    blacklists: BlacklistDb,
    /// Memoization state — per-pipeline by default, shared across
    /// pipelines when installed via [`ScanPipeline::with_shared_caches`].
    caches: Arc<ScanCaches>,
    /// Optional compiled fault schedule. `None` (the default) keeps the
    /// pipeline infallible and bit-identical to the pre-fault-layer
    /// behaviour.
    fault_plan: Option<FaultPlan>,
    /// Which JavaScript engine sandboxed page execution uses (the
    /// bytecode VM by default; the tree-walking interpreter as the
    /// differential oracle). The choice is invisible in verdicts — the
    /// engines are observably identical — only throughput and the
    /// `js.vm.*` counters differ.
    js_engine: JsEngine,
}

/// JS execution counters for one distinct scanned sample.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct JsRunStats {
    /// Bytecode instructions the VM dispatched (0 under the tree-walk
    /// engine).
    instructions: u64,
    /// Module-cache lookups the VM issued (one per script + eval layer).
    module_lookups: u64,
    /// Scripts that ran out of step budget.
    budget_exhaustions: u64,
}

impl JsRunStats {
    fn from_report(report: &SandboxReport) -> JsRunStats {
        JsRunStats {
            instructions: report.vm_instructions,
            module_lookups: report.vm_module_lookups,
            budget_exhaustions: report
                .errors
                .iter()
                .filter(|e| e.contains("step budget exhausted"))
                .count() as u64,
        }
    }
}

/// Aggregated `js.vm.*` statistics of one [`ScanPipeline`], read via
/// [`ScanPipeline::js_vm_stats`].
///
/// Every field except `compile_nanos` is derived from per-sample
/// memoized stats and the module cache's entry set, both of which are
/// schedule-independent — so the numbers are identical for every worker
/// count. `compile_nanos` is wall-clock and excluded from determinism
/// contracts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JsVmStats {
    /// Distinct modules compiled (== module-cache entries == the
    /// compilations a serial run would perform).
    pub compiles: u64,
    /// Total wall-clock nanoseconds spent compiling those modules
    /// (wall-clock; not deterministic).
    pub compile_nanos: u64,
    /// Module-cache lookups across all distinct samples.
    pub module_lookups: u64,
    /// Lookups served from cache (`module_lookups - compiles`,
    /// saturating).
    pub module_hits: u64,
    /// Bytecode instructions executed across all distinct samples.
    pub instructions: u64,
    /// Scripts that exhausted their step budget.
    pub budget_exhaustions: u64,
}

impl<'w> ScanPipeline<'w> {
    /// Creates the pipeline; blacklists are populated from the web
    /// oracle (standing in for the six public snapshots).
    pub fn new(web: &'w SyntheticWeb) -> Self {
        ScanPipeline {
            web,
            vt: VirusTotal::new(web),
            quttera: Quttera::new(web),
            blacklists: BlacklistDb::populate_from_web(web),
            caches: Arc::new(ScanCaches::new()),
            fault_plan: None,
            js_engine: JsEngine::default(),
        }
    }

    /// Selects the JavaScript engine for sandboxed page execution.
    /// Verdicts are bit-identical either way; only throughput and the
    /// `js.vm.*` counters change.
    pub fn with_js_engine(mut self, engine: JsEngine) -> Self {
        self.js_engine = engine;
        self
    }

    /// Installs a shared cache set (replacing this pipeline's own).
    /// Callers must only share caches between pipelines scanning the
    /// same synthetic web with the same JS engine — see [`ScanCaches`]
    /// for why that makes sharing invisible in verdicts.
    pub fn with_shared_caches(mut self, caches: Arc<ScanCaches>) -> Self {
        self.caches = caches;
        self
    }

    /// The pipeline's cache set (shared or private).
    pub fn caches(&self) -> &Arc<ScanCaches> {
        &self.caches
    }

    /// The JS engine this pipeline scans with.
    pub fn js_engine(&self) -> JsEngine {
        self.js_engine
    }

    /// Attaches a compiled fault schedule: every subsequent
    /// [`ScanPipeline::scan`] replays the plan's frozen per-request
    /// decisions (so verdicts stay bit-identical across worker counts).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// The attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Direct access to the blacklist database.
    pub fn blacklists(&self) -> &BlacklistDb {
        &self.blacklists
    }

    /// Drops all memoized state (URL features, domain derivations,
    /// consensus verdicts, per-sample JS stats). Verdicts are
    /// deterministic with or without warm caches; benchmarks use this
    /// to measure cold scans without paying pipeline construction
    /// again.
    ///
    /// The compiled-module cache survives: modules are keyed by content
    /// hash and behaviourally inert, and warm-module/cold-feature is
    /// exactly the configuration the JS-VM benchmark measures. Use
    /// [`ScanPipeline::clear_module_cache`] for a fully cold run.
    pub fn clear_caches(&self) {
        self.caches.clear();
    }

    /// Drops the compiled-JS module cache too (fully cold scans).
    pub fn clear_module_cache(&self) {
        self.caches.clear_modules();
    }

    /// Number of distinct URLs whose scan features are currently cached.
    pub fn cached_urls(&self) -> usize {
        self.caches.cached_urls()
    }

    /// Lookup/entry/hit statistics for each of the four memoization
    /// caches, keyed by the metric group name used under
    /// `scan.cache.*`. Hits are derived (`lookups - entries`), so the
    /// numbers are deterministic for every worker count.
    pub fn cache_stats(&self) -> [(&'static str, slum_detect::CacheStats); 4] {
        self.caches.stats()
    }

    /// Aggregated JS-engine statistics (see [`JsVmStats`]). All-zero
    /// under [`JsEngine::TreeWalk`] and before any scan, so the
    /// `js.vm.*` counters derived from this are always present.
    pub fn js_vm_stats(&self) -> JsVmStats {
        self.caches.js_vm_stats()
    }

    /// Scans one crawl record, degrading gracefully when the fault plan
    /// says a service is unavailable for it: an unavailable service is
    /// simply not consulted (its report stays empty), the verdict is
    /// built from whatever answered, and [`VerdictSource`] records the
    /// provenance. With no plan (or an all-Ok decision) the path is
    /// byte-for-byte the historical one.
    pub fn scan(&self, record: &CrawlRecord) -> ScanOutcome {
        let decisions = match &self.fault_plan {
            Some(plan) => plan.decisions_for(&record.exchange, record.seq),
            None => [ServiceDecision::Ok; 3],
        };
        let vt_up = decisions[ScanService::VirusTotal.index()].available();
        let quttera_up = decisions[ScanService::Quttera.index()].available();
        let blacklist_up = decisions[ScanService::Blacklist.index()].available();

        // 1. Blacklist consensus over every domain on the redirect chain
        //    (the entry URL may be benign while the destination is not).
        let blacklisted_domain =
            if blacklist_up { self.chain_blacklist_hit(record) } else { None };

        // Reports stay `None` for unreachable services until the end, so
        // the degraded path constructs nothing it won't keep.
        let mut vt: Option<VtReport> = None;
        let mut quttera: Option<QutteraReport> = None;
        let mut needed_content_upload = false;

        if vt_up || quttera_up {
            // 2. URL scans (scanner-side fetch; cloaking applies). The
            //    feature extraction is shared, so it runs once even when
            //    only one scanner is reachable; the canonical form is
            //    computed once and reused as both cache and sample key.
            let canon = record.url.canonical();
            let url_features = self.url_features(&record.url, &canon);
            if vt_up {
                vt = Some(self.vt.aggregate(&canon, &url_features));
            }
            if quttera_up {
                quttera = Some(self.quttera.report(&record.url, &url_features));
            }

            // 3. Content upload for URL-scan-clean pages with captured
            //    content (the cloaking defeat) — only to reachable
            //    services. Feature extraction over the capture is shared
            //    between both scanners and memoized per distinct
            //    (URL, content) pair; the sample key matches the one
            //    `VirusTotal::scan_content` derives, so engine decisions
            //    are unchanged.
            let url_scan_clean = !vt.as_ref().is_some_and(VtReport::is_malicious)
                && !quttera.as_ref().is_some_and(QutteraReport::is_malicious);
            if url_scan_clean {
                if let Some(content) = &record.content {
                    let content_key = format!("{canon}#{:x}", fnv1a(content.as_bytes()));
                    let features =
                        self.caches.content_features.get_or_insert_with(&content_key, || {
                            let (features, report) = Features::from_content_with_engine(
                                &record.url,
                                content,
                                self.js_engine,
                                self.module_store(),
                            );
                            self.caches.js_stats.get_or_insert_with(&content_key, || {
                                JsRunStats::from_report(&report)
                            });
                            features
                        });
                    let vt_content =
                        vt_up.then(|| self.vt.aggregate(&content_key, &features));
                    let quttera_content =
                        quttera_up.then(|| self.quttera.report(&record.url, &features));
                    if vt_content.as_ref().is_some_and(VtReport::is_malicious)
                        || quttera_content.as_ref().is_some_and(QutteraReport::is_malicious)
                    {
                        needed_content_upload = true;
                        if vt_up {
                            vt = vt_content;
                        }
                        if quttera_up {
                            quttera = quttera_content;
                        }
                    }
                }
            }
        }

        let vt = vt.unwrap_or_else(empty_vt_report);
        let quttera = quttera.unwrap_or_else(|| empty_quttera_report(&record.url));
        let malicious =
            vt.is_malicious() || quttera.is_malicious() || blacklisted_domain.is_some();
        ScanOutcome {
            malicious,
            vt,
            quttera,
            blacklisted_domain,
            needed_content_upload,
            source: VerdictSource::classify(vt_up, quttera_up, blacklist_up),
            faults: FaultLog::from_decisions(&decisions),
        }
    }

    /// Scans a batch serially, preserving order.
    pub fn scan_all(&self, records: &[CrawlRecord]) -> Vec<ScanOutcome> {
        records.iter().map(|r| self.scan(r)).collect()
    }

    /// Scans a batch across `workers` scoped threads with the default
    /// work-unit size ([`DEFAULT_SCAN_CHUNK`]); see
    /// [`ScanPipeline::scan_all_parallel_chunked`].
    pub fn scan_all_parallel(&self, records: &[CrawlRecord], workers: usize) -> Vec<ScanOutcome> {
        self.scan_all_parallel_chunked(records, workers, DEFAULT_SCAN_CHUNK)
    }

    /// Scans a batch across `workers` scoped threads, distributing the
    /// records as fixed-size chunks pulled from a shared atomic index.
    ///
    /// Unlike one contiguous mega-chunk per worker, chunk-sized work
    /// units load-balance: a worker that drew cache-cold records keeps
    /// pulling small chunks while its peers do the same, so no thread
    /// idles behind one unlucky stretch of the corpus. Each worker tags
    /// its results with the chunk index and the chunks are reassembled
    /// in order — so the output is index-aligned with `records` and
    /// identical to [`ScanPipeline::scan_all`] for every worker count
    /// and chunk size (verdicts are pure functions of the record;
    /// caches only change *when* work happens, never its result).
    pub fn scan_all_parallel_chunked(
        &self,
        records: &[CrawlRecord],
        workers: usize,
        chunk: usize,
    ) -> Vec<ScanOutcome> {
        let workers = workers.max(1).min(records.len().max(1));
        if workers == 1 {
            return self.scan_all(records);
        }
        let chunk = chunk.max(1);
        let n_chunks = records.len().div_ceil(chunk);
        let next = AtomicUsize::new(0);
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    scope.spawn(move |_| {
                        let mut parts: Vec<(usize, Vec<ScanOutcome>)> = Vec::new();
                        loop {
                            let c = next.fetch_add(1, Ordering::Relaxed);
                            if c >= n_chunks {
                                break;
                            }
                            let lo = c * chunk;
                            let hi = (lo + chunk).min(records.len());
                            parts.push((c, self.scan_all(&records[lo..hi])));
                        }
                        parts
                    })
                })
                .collect();
            let mut by_chunk: Vec<Option<Vec<ScanOutcome>>> = vec![None; n_chunks];
            for handle in handles {
                for (c, outcomes) in handle.join().expect("scan worker panicked") {
                    by_chunk[c] = Some(outcomes);
                }
            }
            let mut merged = Vec::with_capacity(records.len());
            for outcomes in by_chunk {
                merged.extend(outcomes.expect("every chunk scanned exactly once"));
            }
            merged
        })
        .expect("scan scope panicked")
    }

    /// Chain-wide blacklist check: first registered domain on the
    /// redirect chain that hits the list consensus. Domain derivation is
    /// memoized per host and the consensus per domain, so repeated
    /// chains cost two cache reads per hop.
    fn chain_blacklist_hit(&self, record: &CrawlRecord) -> Option<Arc<str>> {
        for host in &record.chain_hosts {
            let domain = self.caches.host_domains.get_or_insert_with(host, || {
                self.caches.interner.intern(&slum_websim::domain::registered_domain(host))
            });
            let hit = self
                .caches
                .domain_blacklisted
                .get_or_insert_with(&domain, || self.blacklists.check(&domain).is_blacklisted());
            if hit {
                return Some(domain);
            }
        }
        None
    }

    /// Cached feature extraction for the URL-scan path: one scanner
    /// fetch per distinct URL, shared between VT and Quttera (and
    /// between scan workers). `canon` is the URL's canonical form,
    /// computed once by the caller. Redirected loads mark the redirect
    /// feature the way the Quttera URL scan does.
    fn url_features(&self, url: &Url, canon: &str) -> Features {
        self.caches.url_features.get_or_insert_with(canon, || {
            let mut browser = Browser::new(self.web)
                .with_context(RequestContext::scanner("pipeline"))
                .with_js_engine(self.js_engine);
            if let Some(store) = self.module_store() {
                browser = browser.with_module_store(store);
            }
            let load = browser.load(url);
            self.caches.js_stats.get_or_insert_with(canon, || JsRunStats::from_report(&load.js));
            let mut features = Features::from_load(&load);
            if load.was_redirected() {
                features.js_redirect = true;
            }
            features
        })
    }

    /// The shared module store, when the engine can use one.
    fn module_store(&self) -> Option<Arc<dyn ModuleStore>> {
        match self.js_engine {
            JsEngine::Vm => Some(self.caches.js_modules.clone()),
            JsEngine::TreeWalk => None,
        }
    }
}

/// The report an unreachable VirusTotal contributes: no detections, no
/// engines consulted (same shape the study splices for filtered
/// records).
fn empty_vt_report() -> VtReport {
    VtReport { detections: Vec::new(), total_engines: 0, threshold: 2 }
}

/// The report an unreachable Quttera contributes.
fn empty_quttera_report(url: &Url) -> QutteraReport {
    QutteraReport { url: url.clone(), findings: Vec::new(), verdict: QutteraVerdict::Clean }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slum_browser::Browser;
    use slum_crawler::CrawlRecord;
    use slum_websim::build::{BenignOptions, MaliciousOptions, WebBuilder};
    use slum_websim::{ContentCategory, JsAttack, MaliceKind, Tld};

    fn record_for(web: &SyntheticWeb, url: &Url) -> CrawlRecord {
        let load = Browser::new(web).load(url);
        CrawlRecord::from_load("test", 0, 0, &load)
    }

    #[test]
    fn benign_record_scans_clean() {
        let mut b = WebBuilder::new(200);
        let site = b.benign_site(BenignOptions::default());
        let web = b.finish();
        let pipe = ScanPipeline::new(&web);
        let outcome = pipe.scan(&record_for(&web, &site.url));
        assert!(!outcome.malicious);
        assert!(!outcome.needed_content_upload);
    }

    #[test]
    fn blacklisted_record_flagged_via_consensus() {
        let mut b = WebBuilder::new(201);
        let spec = b.malicious_site(MaliciousOptions {
            kind: Some(MaliceKind::Blacklisted),
            cloaked: Some(false),
            ..Default::default()
        });
        let web = b.finish();
        let pipe = ScanPipeline::new(&web);
        let outcome = pipe.scan(&record_for(&web, &spec.url));
        assert!(outcome.malicious);
        assert_eq!(outcome.blacklisted_domain.as_deref(), Some(spec.url.registered_domain().as_str()));
    }

    #[test]
    fn js_attack_flagged_by_engines() {
        let mut b = WebBuilder::new(202);
        let spec = b.js_site(JsAttack::DynamicIframe, Tld::Com, ContentCategory::Business, false);
        let web = b.finish();
        let pipe = ScanPipeline::new(&web);
        let outcome = pipe.scan(&record_for(&web, &spec.url));
        assert!(outcome.malicious);
        assert!(outcome.vt.is_malicious() || outcome.quttera.is_malicious());
    }

    #[test]
    fn cloaked_misc_needs_content_upload() {
        let mut b = WebBuilder::new(203);
        let spec = b.misc_site(Tld::Com, ContentCategory::Business, true);
        let web = b.finish();
        let pipe = ScanPipeline::new(&web);
        let outcome = pipe.scan(&record_for(&web, &spec.url));
        assert!(outcome.malicious);
        assert!(outcome.needed_content_upload, "cloak must force the upload path");
    }

    #[test]
    fn cloaked_page_without_capture_evades_entirely() {
        let mut b = WebBuilder::new(204);
        let spec = b.misc_site(Tld::Com, ContentCategory::Business, true);
        let web = b.finish();
        let pipe = ScanPipeline::new(&web);
        let mut record = record_for(&web, &spec.url);
        record.content = None; // crawler didn't keep the page
        let outcome = pipe.scan(&record);
        assert!(!outcome.malicious, "no content, no blacklist entry, cloaked: evades");
    }

    #[test]
    fn scan_all_preserves_order_and_caches() {
        let mut b = WebBuilder::new(205);
        let benign = b.benign_site(BenignOptions::default());
        let bad = b.js_site(JsAttack::HiddenIframe, Tld::Com, ContentCategory::Business, false);
        let web = b.finish();
        let pipe = ScanPipeline::new(&web);
        let records = vec![
            record_for(&web, &benign.url),
            record_for(&web, &bad.url),
            record_for(&web, &benign.url),
        ];
        let outcomes = pipe.scan_all(&records);
        assert_eq!(outcomes.len(), 3);
        assert!(!outcomes[0].malicious);
        assert!(outcomes[1].malicious);
        assert!(!outcomes[2].malicious);
        // Two distinct URLs => two cached feature entries.
        assert_eq!(pipe.cached_urls(), 2);
        pipe.clear_caches();
        assert_eq!(pipe.cached_urls(), 0);
    }

    #[test]
    fn chunked_parallel_matches_serial_for_every_chunk_size() {
        let mut b = WebBuilder::new(206);
        let benign = b.benign_site(BenignOptions::default());
        let bad = b.js_site(JsAttack::HiddenIframe, Tld::Com, ContentCategory::Business, false);
        let cloaked = b.misc_site(Tld::Com, ContentCategory::Business, true);
        let web = b.finish();
        let pipe = ScanPipeline::new(&web);
        let records: Vec<CrawlRecord> = (0..25)
            .map(|i| {
                let url = match i % 3 {
                    0 => &benign.url,
                    1 => &bad.url,
                    _ => &cloaked.url,
                };
                let mut r = record_for(&web, url);
                r.seq = i;
                r
            })
            .collect();
        let baseline = pipe.scan_all(&records);
        for workers in [2usize, 3, 8] {
            for chunk in [1usize, 4, 64, 4096] {
                pipe.clear_caches();
                let outcomes = pipe.scan_all_parallel_chunked(&records, workers, chunk);
                assert_eq!(
                    outcomes, baseline,
                    "chunked scan diverged at {workers} workers, chunk {chunk}"
                );
            }
        }
    }

    #[test]
    fn effective_workers_fall_back_to_serial_below_threshold() {
        // The crawl_scale 0.001 corpus (1,145 records) must resolve to
        // the serial plan no matter how many workers were requested —
        // the regression where 8 workers ran slower than 1.
        for requested in [1usize, 2, 4, 8] {
            assert_eq!(effective_scan_workers(1_145, requested, DEFAULT_SERIAL_SCAN_THRESHOLD), 1);
        }
        // At or above the threshold the request is honored up to the
        // host's parallelism and the record count.
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(usize::MAX);
        assert_eq!(effective_scan_workers(10_000, 4, 4096), 4.min(cores));
        assert_eq!(effective_scan_workers(10_000, 0, 4096), 1, "zero request clamps to 1");
        assert_eq!(effective_scan_workers(5_000, 8, 0), 8.min(cores), "threshold 0 disables");
    }

    /// A profile that takes the given services down for the whole span
    /// (one outage window longer than any corpus) with no retries.
    fn downed(services: &[ScanService]) -> slum_detect::fault::FaultProfile {
        let mut profile = slum_detect::fault::FaultProfile::none();
        for s in services {
            profile.services[s.index()].outage_windows = 1;
            profile.services[s.index()].outage_secs = 1_000_000;
        }
        profile
    }

    fn plan_for(
        profile: &slum_detect::fault::FaultProfile,
        record: &CrawlRecord,
    ) -> FaultPlan {
        FaultPlan::compile(profile, 1, &[(scan_key(record), record.at)])
    }

    #[test]
    fn vt_outage_degrades_but_quttera_still_answers() {
        let mut b = WebBuilder::new(207);
        let spec = b.js_site(JsAttack::DynamicIframe, Tld::Com, ContentCategory::Business, false);
        let web = b.finish();
        let record = record_for(&web, &spec.url);
        let plan = plan_for(&downed(&[ScanService::VirusTotal]), &record);
        let pipe = ScanPipeline::new(&web).with_fault_plan(plan);
        let outcome = pipe.scan(&record);
        assert_eq!(outcome.source, VerdictSource::Degraded);
        assert!(outcome.vt.detections.is_empty(), "unreachable VT contributes nothing");
        assert!(outcome.faults.injected >= 1);
    }

    #[test]
    fn blacklist_only_verdict_when_both_scanners_down() {
        let mut b = WebBuilder::new(208);
        let spec = b.malicious_site(MaliciousOptions {
            kind: Some(MaliceKind::Blacklisted),
            cloaked: Some(false),
            ..Default::default()
        });
        let web = b.finish();
        let record = record_for(&web, &spec.url);
        let plan =
            plan_for(&downed(&[ScanService::VirusTotal, ScanService::Quttera]), &record);
        let pipe = ScanPipeline::new(&web).with_fault_plan(plan);
        let outcome = pipe.scan(&record);
        assert_eq!(outcome.source, VerdictSource::BlacklistOnly);
        assert!(outcome.malicious, "blacklist consensus alone must still convict");
        assert_eq!(outcome.blacklisted_domain.as_deref(), Some(spec.url.registered_domain().as_str()));
        assert_eq!(pipe.cached_urls(), 0, "no scanner up, no feature fetch");
    }

    #[test]
    fn unresolved_when_every_service_is_down() {
        let mut b = WebBuilder::new(209);
        let spec = b.malicious_site(MaliciousOptions {
            kind: Some(MaliceKind::Blacklisted),
            cloaked: Some(false),
            ..Default::default()
        });
        let web = b.finish();
        let record = record_for(&web, &spec.url);
        let plan = plan_for(&downed(&ScanService::ALL), &record);
        let pipe = ScanPipeline::new(&web).with_fault_plan(plan);
        let outcome = pipe.scan(&record);
        assert_eq!(outcome.source, VerdictSource::Unresolved);
        assert!(!outcome.malicious, "nothing answered, so no conviction");
        assert_eq!(outcome.blacklisted_domain, None);
        assert!(outcome.faults.injected >= 3);
    }

    #[test]
    fn inert_plan_matches_no_plan_bit_for_bit() {
        let mut b = WebBuilder::new(210);
        let specs = [
            b.benign_site(BenignOptions::default()),
            b.js_site(JsAttack::HiddenIframe, Tld::Com, ContentCategory::Business, false),
            b.misc_site(Tld::Com, ContentCategory::Business, true),
        ];
        let web = b.finish();
        let records: Vec<CrawlRecord> =
            specs.iter().map(|s| record_for(&web, &s.url)).collect();
        let requests: Vec<(String, u64)> =
            records.iter().map(|r| (scan_key(r), r.at)).collect();

        let bare = ScanPipeline::new(&web);
        let baseline = bare.scan_all(&records);
        let inert = FaultPlan::compile(&slum_detect::fault::FaultProfile::none(), 9, &requests);
        let faulted = ScanPipeline::new(&web).with_fault_plan(inert);
        assert_eq!(faulted.scan_all(&records), baseline);
        for outcome in &baseline {
            assert_eq!(outcome.source, VerdictSource::Full);
            assert_eq!(outcome.faults, FaultLog::default());
        }
    }

    #[test]
    fn parallel_matches_serial_even_with_more_workers_than_records() {
        let mut b = WebBuilder::new(206);
        let specs = [
            b.benign_site(BenignOptions::default()),
            b.js_site(JsAttack::HiddenIframe, Tld::Com, ContentCategory::Business, false),
            b.misc_site(Tld::Com, ContentCategory::Business, true),
        ];
        let web = b.finish();
        let pipe = ScanPipeline::new(&web);
        let records: Vec<CrawlRecord> =
            specs.iter().map(|s| record_for(&web, &s.url)).collect();
        let serial = pipe.scan_all(&records);
        for workers in [2, 3, 16] {
            pipe.clear_caches();
            assert_eq!(pipe.scan_all_parallel(&records, workers), serial, "workers={workers}");
        }
    }
}
