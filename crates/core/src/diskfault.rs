//! Deterministic storage-fault injection for the checkpoint store.
//!
//! A [`DiskFaultProfile`] decides, per checkpoint save, whether the
//! write is corrupted — torn (only a prefix lands), short (the tail is
//! dropped), bit-flipped (one byte is damaged after the fact) — or
//! refused outright with a simulated `ENOSPC`. The schedule is a pure
//! function of `(profile, seed, round, epoch)` hashed through FNV-1a:
//! no RNG state is consumed, so threading a profile through a study
//! never perturbs the crawl or scan streams, and the same seed replays
//! the same faults in any process, thread count or slice interleaving.
//!
//! The `epoch` input is the store's cumulative quarantine count. Every
//! quarantined file advances it, so a save that was torn at round R is
//! re-rolled — not replayed — when recovery re-reaches R: a fault costs
//! one slice of re-crawl, never a livelock of identical torn writes.
//!
//! Like the scan- and crawl-fault layers (PR 4/5), injection is
//! strictly opt-in: the [`DiskFaultProfile::none`] default is inert and
//! the artifact contract holds regardless — corrupted checkpoints are
//! detected at load, rolled back past, and the lost rounds re-crawled
//! deterministically, so final exports stay bit-identical to a
//! fault-free run.

use slum_detect::hash::fnv1a;

/// What the injector did to one checkpoint save.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFault {
    /// Only a keyed prefix of the file content was written.
    Torn,
    /// The last few bytes of the file content were dropped.
    Short,
    /// One byte of the written file was flipped.
    BitFlip,
    /// The write was refused: simulated `ENOSPC`, nothing touched disk.
    Full,
}

impl DiskFault {
    /// Stable lowercase name (metric suffixes, logs).
    pub fn name(self) -> &'static str {
        match self {
            DiskFault::Torn => "torn",
            DiskFault::Short => "short",
            DiskFault::BitFlip => "bitflip",
            DiskFault::Full => "full",
        }
    }
}

/// A named, seeded storage-fault profile for checkpoint writes.
///
/// Rates are per-mille of saves and mutually exclusive (one roll per
/// save picks at most one fault), so their sum must stay ≤ 1000.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiskFaultProfile {
    /// Profile name (echoed in reports; `none` is the inert default).
    pub name: String,
    /// Salt mixed into the fate hash, so the same study can be faulted
    /// independently per profile.
    pub seed_salt: u64,
    /// Per-mille of saves that land only a prefix of the file.
    pub torn_per_mille: u32,
    /// Per-mille of saves that drop the last few bytes.
    pub short_per_mille: u32,
    /// Per-mille of saves that flip one byte after the write.
    pub flip_per_mille: u32,
    /// Per-mille of saves refused with simulated `ENOSPC`.
    pub full_per_mille: u32,
}

impl Default for DiskFaultProfile {
    fn default() -> Self {
        DiskFaultProfile::none()
    }
}

impl DiskFaultProfile {
    /// The inert profile: every save lands intact. This is the
    /// [`Default`], so storage-fault injection is strictly opt-in.
    pub fn none() -> Self {
        DiskFaultProfile {
            name: "none".to_string(),
            seed_salt: 0,
            torn_per_mille: 0,
            short_per_mille: 0,
            flip_per_mille: 0,
            full_per_mille: 0,
        }
    }

    /// The moderate operational profile: occasional torn/short writes
    /// and `ENOSPC` refusals, the kind a long-lived measurement box on
    /// cheap disks actually sees.
    pub fn default_profile() -> Self {
        DiskFaultProfile {
            name: "default".to_string(),
            seed_salt: 0xd15c,
            torn_per_mille: 15,
            short_per_mille: 10,
            flip_per_mille: 10,
            full_per_mille: 20,
        }
    }

    /// The harsh profile: roughly a quarter of all saves are damaged or
    /// refused — for stress-testing rollback and re-crawl recovery.
    pub fn harsh() -> Self {
        DiskFaultProfile {
            name: "harsh".to_string(),
            seed_salt: 0xd15c_bad,
            torn_per_mille: 60,
            short_per_mille: 40,
            flip_per_mille: 50,
            full_per_mille: 100,
        }
    }

    /// Parses a profile by CLI name (`none`/`off`, `default`, `harsh`).
    pub fn parse(name: &str) -> Option<DiskFaultProfile> {
        match name {
            "none" | "off" => Some(DiskFaultProfile::none()),
            "default" => Some(DiskFaultProfile::default_profile()),
            "harsh" => Some(DiskFaultProfile::harsh()),
            _ => None,
        }
    }

    /// Every named profile (for help text).
    pub const NAMES: [&'static str; 3] = ["none", "default", "harsh"];

    /// True when the profile can never inject a fault.
    pub fn is_inert(&self) -> bool {
        self.torn_per_mille == 0
            && self.short_per_mille == 0
            && self.flip_per_mille == 0
            && self.full_per_mille == 0
    }

    /// Validates the profile's parameters.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first invalid field:
    /// a per-mille rate above 1000, or rates that sum past 1000 (the
    /// fates are exclusive alternatives of one roll).
    pub fn validate(&self) -> Result<(), String> {
        for (field, rate) in [
            ("torn_per_mille", self.torn_per_mille),
            ("short_per_mille", self.short_per_mille),
            ("flip_per_mille", self.flip_per_mille),
            ("full_per_mille", self.full_per_mille),
        ] {
            if rate > 1000 {
                return Err(format!("{field} must be <= 1000, got {rate}"));
            }
        }
        let sum = self.torn_per_mille
            + self.short_per_mille
            + self.flip_per_mille
            + self.full_per_mille;
        if sum > 1000 {
            return Err(format!(
                "fault rates are exclusive per-mille shares and must sum to <= 1000, got {sum}"
            ));
        }
        Ok(())
    }

    /// The fate of the save at `round` under `seed`, given the store's
    /// current quarantine `epoch`. Pure and RNG-free: the same inputs
    /// always roll the same fate.
    pub fn fate(&self, seed: u64, round: u64, epoch: u64) -> Option<DiskFault> {
        if self.is_inert() {
            return None;
        }
        let roll = (self.fate_hash(seed, round, epoch, "fate") % 1000) as u32;
        let mut threshold = self.torn_per_mille;
        if roll < threshold {
            return Some(DiskFault::Torn);
        }
        threshold += self.short_per_mille;
        if roll < threshold {
            return Some(DiskFault::Short);
        }
        threshold += self.flip_per_mille;
        if roll < threshold {
            return Some(DiskFault::BitFlip);
        }
        threshold += self.full_per_mille;
        if roll < threshold {
            return Some(DiskFault::Full);
        }
        None
    }

    /// A keyed position for damage placement: where to cut a torn
    /// write, how many tail bytes a short write drops, which byte a
    /// flip hits. Derived from the same inputs as [`Self::fate`] under
    /// a different domain tag so fate and position are independent.
    pub fn damage_position(&self, seed: u64, round: u64, epoch: u64, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        (self.fate_hash(seed, round, epoch, "pos") % len as u64) as usize
    }

    fn fate_hash(&self, seed: u64, round: u64, epoch: u64, domain: &str) -> u64 {
        let key = format!(
            "diskfault&{domain}&salt={:x}&seed={seed}&round={round}&epoch={epoch}",
            self.seed_salt
        );
        fnv1a(key.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inert_and_never_faults() {
        let p = DiskFaultProfile::none();
        assert!(p.is_inert());
        assert!(p.validate().is_ok());
        for round in 0..500 {
            assert_eq!(p.fate(2016, round, 0), None);
        }
    }

    #[test]
    fn named_profiles_parse_and_validate() {
        for name in DiskFaultProfile::NAMES {
            let p = DiskFaultProfile::parse(name).expect("named profile");
            assert_eq!(p.name, name);
            assert!(p.validate().is_ok(), "{name} must validate");
        }
        assert_eq!(DiskFaultProfile::parse("off"), Some(DiskFaultProfile::none()));
        assert!(DiskFaultProfile::parse("catastrophic").is_none());
        assert!(!DiskFaultProfile::harsh().is_inert());
    }

    #[test]
    fn invalid_rates_are_rejected() {
        let mut p = DiskFaultProfile::harsh();
        p.torn_per_mille = 1001;
        assert!(p.validate().unwrap_err().contains("torn_per_mille"));
        let mut p = DiskFaultProfile::harsh();
        p.torn_per_mille = 400;
        p.short_per_mille = 400;
        p.flip_per_mille = 400;
        assert!(p.validate().unwrap_err().contains("sum"));
    }

    #[test]
    fn fate_is_deterministic_and_epoch_keyed() {
        let p = DiskFaultProfile::harsh();
        for round in 0..200 {
            assert_eq!(p.fate(7, round, 0), p.fate(7, round, 0));
        }
        // Advancing the epoch re-rolls fates: some round faulted at
        // epoch 0 must be clean at a later epoch (no livelock).
        let faulted: Vec<u64> =
            (0..200).filter(|r| p.fate(7, *r, 0).is_some()).collect();
        assert!(!faulted.is_empty(), "harsh must fault some of 200 rounds");
        assert!(
            faulted.iter().any(|r| (1..8).any(|e| p.fate(7, *r, e).is_none())),
            "every faulted round stayed faulted across 8 epochs"
        );
    }

    #[test]
    fn harsh_hits_every_fault_kind() {
        let p = DiskFaultProfile::harsh();
        let mut seen = std::collections::BTreeSet::new();
        for round in 0..2000 {
            if let Some(f) = p.fate(2016, round, 0) {
                seen.insert(f.name());
            }
        }
        assert_eq!(
            seen.into_iter().collect::<Vec<_>>(),
            vec!["bitflip", "full", "short", "torn"],
            "2000 rolls must exercise all four fault kinds"
        );
    }

    #[test]
    fn damage_position_is_in_bounds() {
        let p = DiskFaultProfile::harsh();
        for len in [1usize, 2, 63, 4096] {
            for round in 0..50 {
                assert!(p.damage_position(7, round, 0, len) < len);
            }
        }
        assert_eq!(p.damage_position(7, 0, 0, 0), 0);
    }
}
