//! Countermeasures (§VI).
//!
//! The paper's conclusion names two stakeholders who can act on its
//! findings: **ad networks**, who "should look out for potential fraud
//! in ad impressions, view counts, and clicks" (reputable networks like
//! AdSense and DoubleClick already ban traffic exchanges), and
//! **users**, who "could be shown a warning before they visit a traffic
//! exchange website, incorporated via a plugin or extension". This
//! module implements both as working prototypes over the simulation.

use std::collections::{BTreeMap, BTreeSet};

use slum_crawler::CrawlRecord;
use slum_exchange::ExchangeProfile;

use crate::scanpipe::ScanOutcome;

/// An ad network's traffic-exchange fraud filter.
///
/// Classifies impressions by referrer: traffic generated through a
/// known exchange is fraudulent under the network's terms. Mirrors how
/// AdSense/DoubleClick vet impression figures.
#[derive(Debug, Clone)]
pub struct AdNetworkGuard {
    exchange_hosts: BTreeSet<String>,
}

/// Verdict for one ad impression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImpressionVerdict {
    /// Organic traffic — billable.
    Billable,
    /// Exchange-originated — fraudulent under network terms.
    ExchangeFraud,
}

/// Aggregate fraud report across a traffic log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FraudReport {
    /// Impressions judged billable.
    pub billable: u64,
    /// Impressions judged fraudulent.
    pub fraudulent: u64,
    /// Fraudulent impressions per exchange host.
    pub by_exchange: BTreeMap<String, u64>,
}

impl FraudReport {
    /// Fraction of impressions that were fraudulent.
    pub fn fraud_rate(&self) -> f64 {
        let total = self.billable + self.fraudulent;
        if total == 0 {
            0.0
        } else {
            self.fraudulent as f64 / total as f64
        }
    }
}

impl AdNetworkGuard {
    /// Builds a guard that knows the given exchanges.
    pub fn new<'a>(profiles: impl IntoIterator<Item = &'a ExchangeProfile>) -> Self {
        AdNetworkGuard {
            exchange_hosts: profiles.into_iter().map(|p| p.host.to_string()).collect(),
        }
    }

    /// Adds an extra exchange host discovered out of band.
    pub fn with_exchange_host(mut self, host: impl Into<String>) -> Self {
        self.exchange_hosts.insert(host.into());
        self
    }

    /// Classifies one impression by the referrer chain of the page view
    /// that produced it. An impression is fraud when any hop of the
    /// delivering page's request chain carries an exchange referrer.
    pub fn classify(&self, record: &CrawlRecord) -> ImpressionVerdict {
        let via_exchange = record
            .har
            .entries
            .iter()
            .any(|e| self.exchange_hosts.contains(&e.referrer))
            || self.exchange_hosts.contains(record.url.host())
            || record.chain_hosts.iter().any(|h| self.exchange_hosts.contains(h));
        if via_exchange {
            ImpressionVerdict::ExchangeFraud
        } else {
            ImpressionVerdict::Billable
        }
    }

    /// Audits a full traffic log. In the crawl model every member-site
    /// visit arrives through an exchange surfbar, so the referrer field
    /// of the *first* request records the exchange; organic visits have
    /// none.
    pub fn audit(&self, records: &[CrawlRecord], surf_referrers: &[String]) -> FraudReport {
        assert_eq!(
            records.len(),
            surf_referrers.len(),
            "records and referrers must align"
        );
        let mut report =
            FraudReport { billable: 0, fraudulent: 0, by_exchange: BTreeMap::new() };
        for (record, referrer) in records.iter().zip(surf_referrers) {
            let verdict = if self.exchange_hosts.contains(referrer) {
                ImpressionVerdict::ExchangeFraud
            } else {
                self.classify(record)
            };
            match verdict {
                ImpressionVerdict::Billable => report.billable += 1,
                ImpressionVerdict::ExchangeFraud => {
                    report.fraudulent += 1;
                    let key = if self.exchange_hosts.contains(referrer) {
                        referrer.clone()
                    } else {
                        record.url.host().to_string()
                    };
                    *report.by_exchange.entry(key).or_insert(0) += 1;
                }
            }
        }
        report
    }
}

/// The browser-extension warning the paper proposes for users.
///
/// Carries the study's measured per-exchange risk so the warning can be
/// quantitative: "N of every 100 pages surfed here were malicious".
#[derive(Debug, Clone)]
pub struct SurfWarning {
    /// exchange host → measured malicious fraction of regular URLs.
    risk_by_host: BTreeMap<String, f64>,
}

/// What the extension shows before navigation proceeds.
#[derive(Debug, Clone, PartialEq)]
pub enum WarningDecision {
    /// Not an exchange — navigate silently.
    Allow,
    /// A known exchange — interpose a warning.
    Warn {
        /// Exchange host.
        host: String,
        /// Expected malicious pages per 100 surfed (from the study).
        expected_malicious_per_100: f64,
        /// Rendered warning text.
        message: String,
    },
}

impl SurfWarning {
    /// Builds the warning database from study output: exchange profiles
    /// plus the measured Table I rows.
    pub fn from_study(study: &crate::study::Study) -> Self {
        let table1 = study.table1();
        let mut risk_by_host = BTreeMap::new();
        for row in &table1.rows {
            if let Some(profile) =
                slum_exchange::params::profile(&row.exchange)
            {
                risk_by_host.insert(profile.host.to_string(), row.malicious_fraction());
            }
        }
        SurfWarning { risk_by_host }
    }

    /// Builds from the paper's published Table I instead of a fresh run.
    pub fn from_paper() -> Self {
        let risk_by_host = slum_exchange::params::PROFILES
            .iter()
            .map(|p| (p.host.to_string(), p.malicious_fraction()))
            .collect();
        SurfWarning { risk_by_host }
    }

    /// Number of exchanges known to the extension.
    pub fn known_exchanges(&self) -> usize {
        self.risk_by_host.len()
    }

    /// The pre-navigation hook.
    pub fn before_navigate(&self, url: &slum_websim::Url) -> WarningDecision {
        match self.risk_by_host.get(url.host()) {
            None => WarningDecision::Allow,
            Some(&risk) => {
                let per_100 = risk * 100.0;
                WarningDecision::Warn {
                    host: url.host().to_string(),
                    expected_malicious_per_100: per_100,
                    message: format!(
                        "{} is a traffic exchange. In a measurement study, {:.0} of every \
                         100 pages surfed here were malicious. Surfing exposes you to \
                         drive-by downloads and social engineering. Continue?",
                        url.host(),
                        per_100
                    ),
                }
            }
        }
    }
}

/// Detection-quality ablation: how much each scanning path contributes.
/// Supports the repository's ablation benches and quantifies the §III
/// design choices (multi-engine aggregation, content upload, blacklist
/// consensus).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DetectionAblation {
    /// Malicious via VT/Quttera URL scans alone.
    pub url_scan_only: u64,
    /// Additional detections from content uploads.
    pub added_by_upload: u64,
    /// Additional detections from blacklist consensus alone (no engine
    /// hit).
    pub added_by_blacklists: u64,
    /// Total malicious.
    pub total: u64,
}

/// Computes the detection-path ablation over scanned outcomes.
pub fn detection_ablation(outcomes: &[ScanOutcome]) -> DetectionAblation {
    let mut ablation = DetectionAblation::default();
    for outcome in outcomes {
        if !outcome.malicious {
            continue;
        }
        ablation.total += 1;
        let engines_hit = outcome.vt.is_malicious() || outcome.quttera.is_malicious();
        if outcome.needed_content_upload {
            ablation.added_by_upload += 1;
        } else if engines_hit {
            ablation.url_scan_only += 1;
        } else if outcome.blacklisted_domain.is_some() {
            ablation.added_by_blacklists += 1;
        }
    }
    ablation
}

#[cfg(test)]
mod tests {
    use super::*;
    use slum_browser::Browser;
    use slum_exchange::params::PROFILES;
    use slum_websim::build::WebBuilder;
    use slum_websim::Url;

    #[test]
    fn guard_flags_exchange_referred_impressions() {
        let guard = AdNetworkGuard::new(PROFILES.iter());
        let mut b = WebBuilder::new(400);
        let site = b.benign_site(Default::default());
        let web = b.finish();
        let load = Browser::new(&web).load(&site.url);
        let record = slum_crawler::CrawlRecord::from_load("10KHits", 0, 0, &load);

        let organic = guard.audit(std::slice::from_ref(&record), &[String::new()]);
        assert_eq!(organic.fraudulent, 0);
        assert_eq!(organic.fraud_rate(), 0.0);

        let surfed = guard.audit(
            std::slice::from_ref(&record),
            &["10khits.exchange.example".to_string()],
        );
        assert_eq!(surfed.fraudulent, 1);
        assert_eq!(surfed.fraud_rate(), 1.0);
        assert_eq!(
            surfed.by_exchange.get("10khits.exchange.example"),
            Some(&1)
        );
    }

    #[test]
    fn guard_flags_self_referral_visits_by_host() {
        let guard = AdNetworkGuard::new(PROFILES.iter());
        let mut b = WebBuilder::new(401);
        let home = b.exchange_home("otohits.exchange.example");
        let web = b.finish();
        let load = Browser::new(&web).load(&home.url);
        let record = slum_crawler::CrawlRecord::from_load("Otohits", 0, 0, &load);
        assert_eq!(guard.classify(&record), ImpressionVerdict::ExchangeFraud);
    }

    #[test]
    fn warning_interposes_on_exchanges_only() {
        let warning = SurfWarning::from_paper();
        assert_eq!(warning.known_exchanges(), 9);

        let allow = warning.before_navigate(&Url::http("ordinary-site.example.com", "/"));
        assert_eq!(allow, WarningDecision::Allow);

        match warning.before_navigate(&Url::http("sendsurf.exchange.example", "/surf")) {
            WarningDecision::Warn { expected_malicious_per_100, message, .. } => {
                // SendSurf: 51.9% malicious in the paper.
                assert!((51.0..53.0).contains(&expected_malicious_per_100));
                assert!(message.contains("traffic exchange"));
            }
            other => panic!("expected warning, got {other:?}"),
        }
    }

    #[test]
    fn warning_from_study_uses_measured_rates() {
        let study = crate::study::Study::run(&crate::study::StudyConfig {
            seed: 5,
            crawl_scale: 0.0002,
            domain_scale: 0.03,
            ..Default::default()
        });
        let warning = SurfWarning::from_study(&study);
        assert_eq!(warning.known_exchanges(), 9);
        let decision = warning.before_navigate(&Url::http("10khits.exchange.example", "/"));
        assert!(matches!(decision, WarningDecision::Warn { .. }));
    }

    #[test]
    fn ablation_partitions_detections() {
        let study = crate::study::Study::run(&crate::study::StudyConfig {
            seed: 6,
            crawl_scale: 0.0005,
            domain_scale: 0.04,
            ..Default::default()
        });
        let ablation = detection_ablation(&study.outcomes);
        assert!(ablation.total > 0);
        assert_eq!(
            ablation.url_scan_only + ablation.added_by_upload + ablation.added_by_blacklists,
            ablation.total,
            "every detection is attributed to exactly one path"
        );
        assert!(ablation.url_scan_only > 0, "engines catch most malware");
    }
}
