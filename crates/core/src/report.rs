//! Table and figure structures plus text rendering — the artifacts the
//! paper's evaluation section publishes.
//!
//! Every artifact payload implements [`Render`], so callers can print
//! any of them — or a whole [`Artifact`] — through one interface
//! instead of picking the right `render_*` free function. The free
//! functions survive as thin wrappers over the trait.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use serde::Serialize;

use crate::artifact::Artifact;
use crate::breakdown::{ContentBreakdown, DomainRow, TldBreakdown};
use crate::categorize::{Category, CategoryCounts};
use crate::redirects::{ChainExhibit, RedirectHistogram};
use crate::shortened::ShortenedRow;
use crate::substrate::SubstrateComparison;
use crate::temporal::CumulativeSeries;

/// Plain-text rendering of a published table or figure.
///
/// Implemented by every artifact payload and by [`Artifact`] itself
/// (which dispatches to its payload), so `repro`-style tooling can loop
/// over [`crate::artifact::ArtifactKind::ALL`] and print everything
/// uniformly.
pub trait Render {
    /// Renders the artifact as terminal-ready text (trailing newline
    /// included where the layout wants one).
    fn render(&self) -> String;
}

impl Render for Artifact {
    fn render(&self) -> String {
        match self {
            Artifact::Table1(t) => t.render(),
            Artifact::Table2(rows) => rows.as_slice().render(),
            Artifact::Table3(counts) => counts.render(),
            Artifact::Table4(rows) => rows.as_slice().render(),
            Artifact::Fig2(bars) => bars.as_slice().render(),
            Artifact::Fig3(series) => series.as_slice().render(),
            Artifact::Fig4(Some(chain)) => chain.render(),
            Artifact::Fig4(None) => "(no malicious redirect chain at this scale)\n".to_string(),
            Artifact::Fig5(hist) => hist.render(),
            Artifact::Fig6(tld) => tld.render(),
            Artifact::Fig7(content) => content.render(),
            Artifact::SubstrateComparison(cmp) => cmp.render(),
        }
    }
}

impl Render for SubstrateComparison {
    fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "substrate: {}", self.substrate);
        let _ = writeln!(
            out,
            "{:<16} {:<12} {:>9} {:>7} {:>9} {:>9} {:>10} {:>7}",
            "Source", "Type", "Crawled", "Self", "Popular", "Regular", "Malicious", "%Mal"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<16} {:<12} {:>9} {:>7} {:>9} {:>9} {:>10} {:>6.1}%",
                r.source,
                r.kind.label(),
                r.crawled,
                r.self_referrals,
                r.popular_referrals,
                r.regular,
                r.malicious,
                r.malicious_fraction() * 100.0
            );
        }
        let _ = writeln!(
            out,
            "{:<16} overall: {} malicious / {} regular ({:.1}%)",
            "",
            self.total_malicious(),
            self.total_regular(),
            self.overall_malicious_fraction() * 100.0
        );
        out
    }
}

/// One Table I row.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Table1Row {
    /// Exchange name.
    pub exchange: String,
    /// "Auto-surf" / "Manual-surf".
    pub kind: String,
    /// URLs crawled.
    pub crawled: u64,
    /// Self-referrals.
    pub self_referrals: u64,
    /// Popular referrals.
    pub popular_referrals: u64,
    /// Regular URLs.
    pub regular: u64,
    /// Malicious URLs.
    pub malicious: u64,
}

impl Table1Row {
    /// "% Malicious URLs" column.
    pub fn malicious_fraction(&self) -> f64 {
        if self.regular == 0 {
            0.0
        } else {
            self.malicious as f64 / self.regular as f64
        }
    }
}

/// Table I: statistics of data from traffic exchanges.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Table1 {
    /// Rows in profile order.
    pub rows: Vec<Table1Row>,
}

impl Table1 {
    /// Overall malicious fraction across all regular URLs (the paper's
    /// ">26%" headline).
    pub fn overall_malicious_fraction(&self) -> f64 {
        let regular: u64 = self.rows.iter().map(|r| r.regular).sum();
        let malicious: u64 = self.rows.iter().map(|r| r.malicious).sum();
        if regular == 0 {
            0.0
        } else {
            malicious as f64 / regular as f64
        }
    }

}

impl Render for Table1 {
    fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<16} {:<12} {:>9} {:>7} {:>9} {:>9} {:>10} {:>7}",
            "Exchange", "Type", "Crawled", "Self", "Popular", "Regular", "Malicious", "%Mal"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<16} {:<12} {:>9} {:>7} {:>9} {:>9} {:>10} {:>6.1}%",
                r.exchange,
                r.kind,
                r.crawled,
                r.self_referrals,
                r.popular_referrals,
                r.regular,
                r.malicious,
                r.malicious_fraction() * 100.0
            );
        }
        let _ = writeln!(
            out,
            "{:<16} overall malicious fraction: {:.1}%",
            "",
            self.overall_malicious_fraction() * 100.0
        );
        out
    }
}

impl Render for [DomainRow] {
    fn render(&self) -> String {
        let mut out = String::new();
        let _ =
            writeln!(out, "{:<16} {:>9} {:>9} {:>9}", "Exchange", "#Domains", "#Malware", "%Malware");
        for r in self {
            let _ = writeln!(
                out,
                "{:<16} {:>9} {:>9} {:>8.1}%",
                r.exchange,
                r.domains,
                r.malware_domains,
                r.malware_fraction() * 100.0
            );
        }
        out
    }
}

/// Table II render helper (wrapper over [`Render`]).
pub fn render_table2(rows: &[DomainRow]) -> String {
    rows.render()
}

impl Render for CategoryCounts {
    fn render(&self) -> String {
        let mut out = String::new();
        let _ =
            writeln!(out, "{:<26} {:>9} {:>10} {:>10}", "Category", "Count", "Measured", "Paper");
        for category in Category::ALL {
            if category == Category::Misc {
                continue;
            }
            let _ = writeln!(
                out,
                "{:<26} {:>9} {:>9.1}% {:>9.1}%",
                category.label(),
                self.count(category),
                self.categorized_share(category) * 100.0,
                category.paper_share().unwrap_or(0.0) * 100.0
            );
        }
        let _ = writeln!(
            out,
            "{:<26} {:>9} ({:.1}% of all malicious; paper 66.4%)",
            "Miscellaneous",
            self.count(Category::Misc),
            self.misc_fraction() * 100.0
        );
        out
    }
}

/// Table III render helper: measured vs paper shares (wrapper over
/// [`Render`]).
pub fn render_table3(counts: &CategoryCounts) -> String {
    counts.render()
}

impl Render for [ShortenedRow] {
    fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<30} {:>10} {:>12} {:<12} {:<28}",
            "Shortened URL", "Hits", "LongHits", "TopCountry", "TopReferrer"
        );
        for r in self {
            let _ = writeln!(
                out,
                "{:<30} {:>10} {:>12} {:<12} {:<28}",
                r.short_url.to_string(),
                r.short_hits,
                r.long_url_hits,
                r.top_country,
                r.top_referrer
            );
        }
        out
    }
}

/// Table IV render helper (wrapper over [`Render`]).
pub fn render_table4(rows: &[ShortenedRow]) -> String {
    rows.render()
}

/// Figure 2 data: per-exchange benign/malware counts (the stacked-bar
/// content).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Fig2Bar {
    /// Exchange name.
    pub exchange: String,
    /// Benign regular URLs.
    pub benign: u64,
    /// Malicious regular URLs.
    pub malicious: u64,
}

impl Render for [Fig2Bar] {
    fn render(&self) -> String {
        let mut out = String::new();
        for bar in self {
            let total = (bar.benign + bar.malicious).max(1);
            let frac = bar.malicious as f64 / total as f64;
            let filled = (frac * 40.0).round() as usize;
            let _ = writeln!(
                out,
                "{:<16} [{}{}] {:>5.1}%  (benign {} / malware {})",
                bar.exchange,
                "#".repeat(filled),
                "-".repeat(40 - filled),
                frac * 100.0,
                bar.benign,
                bar.malicious
            );
        }
        out
    }
}

/// Renders Figure 2 as a text bar chart (wrapper over [`Render`]).
pub fn render_fig2(bars: &[Fig2Bar]) -> String {
    bars.render()
}

impl Render for [CumulativeSeries] {
    fn render(&self) -> String {
        let mut out = String::new();
        for s in self {
            let _ = writeln!(
                out,
                "{}: crawled {} / malicious {} / burstiness {:.2}",
                s.exchange,
                s.len(),
                s.total_malicious(),
                s.burstiness((s.len() / 20).max(5))
            );
            let samples = s.downsample(10);
            let line: Vec<String> =
                samples.iter().map(|(i, c)| format!("{i}:{c}")).collect();
            let _ = writeln!(out, "  {}", line.join("  "));
        }
        out
    }
}

/// Renders a Figure 3 series bundle as downsampled text (wrapper over
/// [`Render`]).
pub fn render_fig3(series: &[CumulativeSeries]) -> String {
    series.render()
}

impl Render for ChainExhibit {
    fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "observed on {}, {} hops:", self.exchange, self.hops);
        for (i, host) in self.hosts.iter().enumerate() {
            let _ = writeln!(out, "  {}{host}", if i == 0 { "" } else { "-> " });
        }
        out
    }
}

impl Render for RedirectHistogram {
    fn render(&self) -> String {
        let mut out = String::new();
        let max = self.counts.values().max().copied().unwrap_or(1).max(1);
        for (hops, count) in &self.counts {
            let filled = ((*count as f64 / max as f64) * 40.0).round() as usize;
            let _ = writeln!(out, "{hops} redirects {:>6}  {}", count, "#".repeat(filled));
        }
        out
    }
}

/// Renders the Figure 5 histogram as text bars (wrapper over
/// [`Render`]).
pub fn render_fig5(hist: &RedirectHistogram) -> String {
    hist.render()
}

impl Render for TldBreakdown {
    fn render(&self) -> String {
        let paper: BTreeMap<&str, f64> = [
            ("com", 0.70),
            ("net", 0.22),
            ("de", 0.02),
            ("org", 0.01),
            ("others", 0.05),
        ]
        .into_iter()
        .collect();
        let mut out = String::new();
        let _ = writeln!(out, "{:<8} {:>9} {:>10} {:>10}", "TLD", "Count", "Measured", "Paper");
        for (bucket, expected) in paper {
            let _ = writeln!(
                out,
                "{:<8} {:>9} {:>9.1}% {:>9.1}%",
                bucket,
                self.counts.get(bucket).copied().unwrap_or(0),
                self.share(bucket) * 100.0,
                expected * 100.0
            );
        }
        out
    }
}

/// Renders Figure 6 with paper comparison (wrapper over [`Render`]).
pub fn render_fig6(tld: &TldBreakdown) -> String {
    tld.render()
}

impl Render for ContentBreakdown {
    fn render(&self) -> String {
        let paper: [(&str, f64); 5] = [
            ("Business", 0.586),
            ("Advertisement", 0.218),
            ("Entertainment", 0.087),
            ("Information Technology", 0.086),
            ("Others", 0.026),
        ];
        let mut out = String::new();
        let _ =
            writeln!(out, "{:<24} {:>9} {:>10} {:>10}", "Category", "Count", "Measured", "Paper");
        for (label, expected) in paper {
            let _ = writeln!(
                out,
                "{:<24} {:>9} {:>9.1}% {:>9.1}%",
                label,
                self.counts.get(label).copied().unwrap_or(0),
                self.share(label) * 100.0,
                expected * 100.0
            );
        }
        out
    }
}

/// Renders Figure 7 with paper comparison (wrapper over [`Render`]).
pub fn render_fig7(content: &ContentBreakdown) -> String {
    content.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table1() -> Table1 {
        Table1 {
            rows: vec![
                Table1Row {
                    exchange: "A".into(),
                    kind: "Auto-surf".into(),
                    crawled: 100,
                    self_referrals: 10,
                    popular_referrals: 10,
                    regular: 80,
                    malicious: 40,
                },
                Table1Row {
                    exchange: "B".into(),
                    kind: "Manual-surf".into(),
                    crawled: 50,
                    self_referrals: 5,
                    popular_referrals: 5,
                    regular: 40,
                    malicious: 4,
                },
            ],
        }
    }

    #[test]
    fn table1_fractions() {
        let t = table1();
        assert!((t.rows[0].malicious_fraction() - 0.5).abs() < 1e-9);
        assert!((t.overall_malicious_fraction() - 44.0 / 120.0).abs() < 1e-9);
    }

    #[test]
    fn renders_contain_key_numbers() {
        let t = table1();
        let text = t.render();
        assert!(text.contains("50.0%"));
        assert!(text.contains("Auto-surf"));
        assert!(text.contains("overall malicious fraction"));
    }

    #[test]
    fn fig2_bars_render_scaled() {
        let bars = vec![Fig2Bar { exchange: "X".into(), benign: 50, malicious: 50 }];
        let text = render_fig2(&bars);
        assert!(text.contains("50.0%"));
        assert!(text.contains("####################"));
    }

    #[test]
    fn fig5_render_handles_empty() {
        let hist = RedirectHistogram::default();
        assert!(render_fig5(&hist).is_empty());
    }

    #[test]
    fn artifact_render_dispatches_to_payload() {
        let t = table1();
        let direct = t.render();
        assert_eq!(Artifact::Table1(t).render(), direct);
        assert_eq!(
            Artifact::Fig4(None).render(),
            "(no malicious redirect chain at this scale)\n"
        );
        let chain = ChainExhibit {
            exchange: "Otohits".into(),
            hops: 2,
            hosts: vec!["a.com".into(), "b.com".into(), "c.com".into()],
        };
        let text = Artifact::Fig4(Some(chain)).render();
        assert!(text.contains("observed on Otohits, 2 hops:"));
        assert!(text.contains("-> c.com"));
    }

    #[test]
    fn zero_regular_rows_do_not_divide_by_zero() {
        let row = Table1Row {
            exchange: "Z".into(),
            kind: "Auto-surf".into(),
            crawled: 0,
            self_referrals: 0,
            popular_referrals: 0,
            regular: 0,
            malicious: 0,
        };
        assert_eq!(row.malicious_fraction(), 0.0);
        let t = Table1 { rows: vec![row] };
        assert_eq!(t.overall_malicious_fraction(), 0.0);
    }
}
