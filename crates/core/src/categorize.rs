//! Malware categorization (§IV-A, Table III).
//!
//! The paper's procedure, in precedence order: shortened URLs are
//! recognized by their shortening-service hosts; suspicious redirections
//! by an initial/final URL mismatch; JavaScript and Flash malware by the
//! detailed scan findings; blacklisted URLs by the multi-list consensus;
//! everything else that was detected but carries no category-defining
//! detail lands in the miscellaneous bucket.

use slum_crawler::CrawlRecord;
use slum_detect::quttera::QutteraFinding;

use crate::scanpipe::ScanOutcome;

/// The Table III categories (plus miscellaneous).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// Domain on multiple public blacklists.
    Blacklisted,
    /// Malicious JavaScript (hidden/injected iframes, deceptive
    /// downloads, fingerprinting, obfuscated payloads).
    MaliciousJs,
    /// Suspicious server-side redirection.
    SuspiciousRedirect,
    /// Malicious target behind a URL-shortening service.
    MaliciousShortened,
    /// Malicious Flash.
    MaliciousFlash,
    /// Detected malicious without category-defining detail.
    Misc,
}

impl Category {
    /// All categories in Table III order (misc last).
    pub const ALL: [Category; 6] = [
        Category::Blacklisted,
        Category::MaliciousJs,
        Category::SuspiciousRedirect,
        Category::MaliciousShortened,
        Category::MaliciousFlash,
        Category::Misc,
    ];

    /// Table III row label.
    pub fn label(self) -> &'static str {
        match self {
            Category::Blacklisted => "Blacklisted",
            Category::MaliciousJs => "Malicious JavaScript",
            Category::SuspiciousRedirect => "Suspicious Redirection",
            Category::MaliciousShortened => "Malicious Shortened URLs",
            Category::MaliciousFlash => "Malicious Flash",
            Category::Misc => "Miscellaneous",
        }
    }

    /// The paper's Table III share among *categorized* (non-misc)
    /// malicious URLs.
    pub fn paper_share(self) -> Option<f64> {
        match self {
            Category::Blacklisted => Some(0.748),
            Category::MaliciousJs => Some(0.188),
            Category::SuspiciousRedirect => Some(0.058),
            Category::MaliciousShortened => Some(0.005),
            Category::MaliciousFlash => Some(0.001),
            Category::Misc => None,
        }
    }
}

/// Categorizes one detected-malicious record.
///
/// Returns `None` when the outcome was not malicious.
pub fn categorize(record: &CrawlRecord, outcome: &ScanOutcome) -> Option<Category> {
    if !outcome.malicious {
        return None;
    }
    // Shortening services first: their hop would otherwise read as a
    // generic redirect.
    if record.via_shortener {
        return Some(Category::MaliciousShortened);
    }
    // The paper's opening rule: "classified the malicious URLs as
    // suspicious if their initial and final URL did not match".
    if record.url != record.final_url || record.via_js_redirect {
        return Some(Category::SuspiciousRedirect);
    }
    let findings = outcome.findings();
    let is_flash = findings.contains(&QutteraFinding::MaliciousFlash);
    if is_flash {
        return Some(Category::MaliciousFlash);
    }
    let js_findings = [
        QutteraFinding::HiddenIframe,
        QutteraFinding::JsInjectedIframe,
        QutteraFinding::ObfuscatedJs,
        QutteraFinding::DeceptiveDownload,
        QutteraFinding::Fingerprinting,
    ];
    if findings.iter().any(|f| js_findings.contains(f)) {
        return Some(Category::MaliciousJs);
    }
    if outcome.blacklisted_domain.is_some() {
        return Some(Category::Blacklisted);
    }
    Some(Category::Misc)
}

/// Aggregated categorization counts over a scanned corpus.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CategoryCounts {
    /// `(category, count)` in [`Category::ALL`] order.
    pub counts: [(Option<Category>, u64); 6],
    /// Total malicious records.
    pub total_malicious: u64,
}

/// Tallies categories over `(record, outcome)` pairs (borrowed, as
/// produced by [`crate::Study::regular_pairs`]).
pub fn tally(pairs: &[(&CrawlRecord, &ScanOutcome)]) -> CategoryCounts {
    let mut counts = CategoryCounts {
        counts: [
            (Some(Category::Blacklisted), 0),
            (Some(Category::MaliciousJs), 0),
            (Some(Category::SuspiciousRedirect), 0),
            (Some(Category::MaliciousShortened), 0),
            (Some(Category::MaliciousFlash), 0),
            (Some(Category::Misc), 0),
        ],
        total_malicious: 0,
    };
    for (record, outcome) in pairs {
        if let Some(category) = categorize(record, outcome) {
            counts.total_malicious += 1;
            let idx = Category::ALL.iter().position(|c| *c == category).expect("known");
            counts.counts[idx].1 += 1;
        }
    }
    counts
}

impl CategoryCounts {
    /// Count for one category.
    pub fn count(&self, category: Category) -> u64 {
        let idx = Category::ALL.iter().position(|c| *c == category).expect("known");
        self.counts[idx].1
    }

    /// Share of `category` among categorized (non-misc) malicious URLs —
    /// the Table III percentages.
    pub fn categorized_share(&self, category: Category) -> f64 {
        let categorized: u64 = Category::ALL
            .iter()
            .filter(|c| **c != Category::Misc)
            .map(|c| self.count(*c))
            .sum();
        if categorized == 0 || category == Category::Misc {
            return 0.0;
        }
        self.count(category) as f64 / categorized as f64
    }

    /// The miscellaneous fraction of all malicious URLs (§IV-A reports
    /// 142,405 / 214,527 ≈ 66%).
    pub fn misc_fraction(&self) -> f64 {
        if self.total_malicious == 0 {
            0.0
        } else {
            self.count(Category::Misc) as f64 / self.total_malicious as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slum_browser::har::HarLog;
    use slum_detect::quttera::{QutteraReport, QutteraVerdict};
    use slum_detect::virustotal::VtReport;
    use slum_websim::Url;

    fn record(url: &str, final_url: &str, via_shortener: bool) -> CrawlRecord {
        CrawlRecord {
            exchange: "t".into(),
            seq: 0,
            at: 0,
            url: Url::parse(url).unwrap(),
            final_url: Url::parse(final_url).unwrap(),
            redirect_hops: u32::from(url != final_url),
            chain_hosts: vec![],
            via_shortener,
            via_js_redirect: false,
            content: None,
            download_filenames: vec![],
            har: HarLog::new(),
            failed: false,
        }
    }

    fn outcome(
        malicious: bool,
        findings: Vec<QutteraFinding>,
        blacklisted_domain: Option<&str>,
    ) -> ScanOutcome {
        let verdict = if findings.is_empty() {
            QutteraVerdict::Clean
        } else {
            QutteraVerdict::Malicious
        };
        ScanOutcome {
            malicious,
            vt: VtReport { detections: vec![], total_engines: 12, threshold: 2 },
            quttera: QutteraReport {
                url: Url::parse("http://x.example/").unwrap(),
                findings,
                verdict,
            },
            blacklisted_domain: blacklisted_domain.map(std::sync::Arc::from),
            needed_content_upload: false,
            source: crate::scanpipe::VerdictSource::Full,
            faults: crate::scanpipe::FaultLog::default(),
        }
    }

    #[test]
    fn benign_is_uncategorized() {
        let r = record("http://a.example/", "http://a.example/", false);
        assert_eq!(categorize(&r, &outcome(false, vec![], None)), None);
    }

    #[test]
    fn shortener_takes_precedence_over_redirect() {
        let r = record("http://goo.gl/abc", "http://landing.example/", true);
        let o = outcome(true, vec![QutteraFinding::SuspiciousRedirect], Some("landing.example"));
        assert_eq!(categorize(&r, &o), Some(Category::MaliciousShortened));
    }

    #[test]
    fn url_mismatch_is_suspicious_redirect() {
        let r = record("http://entry.example/", "http://dest.example/", false);
        let o = outcome(true, vec![], None);
        assert_eq!(categorize(&r, &o), Some(Category::SuspiciousRedirect));
    }

    #[test]
    fn flash_beats_js_findings() {
        let r = record("http://f.example/", "http://f.example/", false);
        let o = outcome(
            true,
            vec![QutteraFinding::MaliciousFlash, QutteraFinding::ObfuscatedJs],
            None,
        );
        assert_eq!(categorize(&r, &o), Some(Category::MaliciousFlash));
    }

    #[test]
    fn js_findings_categorize_as_js() {
        for finding in [
            QutteraFinding::HiddenIframe,
            QutteraFinding::JsInjectedIframe,
            QutteraFinding::ObfuscatedJs,
            QutteraFinding::DeceptiveDownload,
            QutteraFinding::Fingerprinting,
        ] {
            let r = record("http://j.example/", "http://j.example/", false);
            let o = outcome(true, vec![finding], None);
            assert_eq!(categorize(&r, &o), Some(Category::MaliciousJs), "{finding:?}");
        }
    }

    #[test]
    fn blacklist_without_structure_is_blacklisted() {
        let r = record("http://b.example/", "http://b.example/", false);
        let o = outcome(true, vec![], Some("b.example"));
        assert_eq!(categorize(&r, &o), Some(Category::Blacklisted));
    }

    #[test]
    fn detected_without_detail_is_misc() {
        let r = record("http://m.example/", "http://m.example/", false);
        let o = outcome(true, vec![QutteraFinding::GenericMalware], None);
        assert_eq!(categorize(&r, &o), Some(Category::Misc));
    }

    #[test]
    fn tally_and_shares() {
        let records = vec![
            record("http://a.example/", "http://a.example/", false), // blacklisted
            record("http://b.example/", "http://b.example/", false), // js
            record("http://c.example/", "http://c.example/", false), // benign
            record("http://d.example/", "http://d.example/", false), // misc
        ];
        let outcomes = vec![
            outcome(true, vec![], Some("a.example")),
            outcome(true, vec![QutteraFinding::HiddenIframe], None),
            outcome(false, vec![], None),
            outcome(true, vec![QutteraFinding::GenericMalware], None),
        ];
        let pairs: Vec<_> = records.iter().zip(&outcomes).collect();
        let counts = tally(&pairs);
        assert_eq!(counts.total_malicious, 3);
        assert_eq!(counts.count(Category::Blacklisted), 1);
        assert_eq!(counts.count(Category::MaliciousJs), 1);
        assert_eq!(counts.count(Category::Misc), 1);
        assert!((counts.categorized_share(Category::Blacklisted) - 0.5).abs() < 1e-9);
        assert!((counts.misc_fraction() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn paper_shares_sum_to_one() {
        let total: f64 = Category::ALL.iter().filter_map(|c| c.paper_share()).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_tally_is_zero() {
        let counts = tally(&[]);
        assert_eq!(counts.total_malicious, 0);
        assert!(counts.counts.iter().all(|(_, n)| *n == 0));
    }
}
