//! Machine-readable export of a completed study: every table and figure
//! as one JSON document, so downstream tooling (plotting, dashboards,
//! regression tracking) can consume the reproduction without touching
//! the Rust API.

use serde::Serialize;

use slum_detect::fault::ScanService;

use crate::artifact::ArtifactKind;
use crate::categorize::Category;
use crate::study::Study;

/// The full study output as a serializable document.
#[derive(Debug, Clone, Serialize)]
pub struct StudyExport {
    /// Configuration echoes.
    pub seed: u64,
    /// Crawl scale used.
    pub crawl_scale: f64,
    /// Traffic substrate the study crawled (`exchange`, `adnet`, or
    /// `torrent`).
    pub substrate: String,
    /// Corpus statistics.
    pub corpus: CorpusExport,
    /// Table I rows.
    pub table1: Vec<Table1Export>,
    /// Table II rows.
    pub table2: Vec<Table2Export>,
    /// Table III rows (category, count, categorized share).
    pub table3: Vec<Table3Export>,
    /// Table IV rows.
    pub table4: Vec<Table4Export>,
    /// Figure 3 series, downsampled.
    pub fig3: Vec<Fig3Export>,
    /// Figure 5 histogram.
    pub fig5: Vec<(u32, u64)>,
    /// Figure 6 buckets.
    pub fig6: Vec<(String, u64)>,
    /// Figure 7 buckets.
    pub fig7: Vec<(String, u64)>,
    /// Fault-injection summary (all-zero for fault-free runs).
    pub faults: FaultSummaryExport,
    /// Crawl-resilience summary: crawl-fault profile, aggregate costs
    /// and per-exchange health (all-clean for fault-free runs).
    pub crawl_resilience: CrawlResilienceExport,
    /// Cross-substrate comparison rows: per-source malice tallies under
    /// the substrate this study ran. Join documents from runs with
    /// different `substrate` echoes to compare ecosystems.
    pub substrate_comparison: Vec<SubstrateRowExport>,
}

/// One traffic source's row in the substrate-comparison section.
#[derive(Debug, Clone, Serialize)]
pub struct SubstrateRowExport {
    /// Source name.
    pub source: String,
    /// Source kind label.
    pub kind: String,
    /// URLs crawled.
    pub crawled: u64,
    /// Regular URLs.
    pub regular: u64,
    /// Malicious URLs.
    pub malicious: u64,
    /// Malicious fraction.
    pub malicious_fraction: f64,
}

/// Crawl-resilience summary: which crawl-fault profile ran, what it
/// cost in aggregate, and the per-exchange health logs. Fully
/// deterministic (derived from the health logs, never from wall-clock
/// or resume bookkeeping), so a resumed run exports byte-identical
/// JSON to an uninterrupted one.
#[derive(Debug, Clone, Serialize)]
pub struct CrawlResilienceExport {
    /// Crawl-fault-profile name (`none` for fault-free runs).
    pub profile: String,
    /// Surf slots lost to faults across all exchanges.
    pub lost_steps: u64,
    /// Faults injected during the crawl phase.
    pub faults_injected: u64,
    /// Retries issued against fault windows.
    pub retries: u64,
    /// Virtual seconds spent down (backoff + reconnects).
    pub downtime_secs: u64,
    /// Exchanges that permanently shut down mid-crawl.
    pub shutdowns: u64,
    /// Per-exchange health rows, in exchange input order.
    pub health: Vec<CrawlHealthExport>,
}

/// One exchange's crawl-health row.
#[derive(Debug, Clone, Serialize)]
pub struct CrawlHealthExport {
    /// Exchange name.
    pub exchange: String,
    /// Pages logged.
    pub pages: u64,
    /// Slots lost to faults.
    pub lost_steps: u64,
    /// Steps that hit an outage window.
    pub outage_hits: u64,
    /// Steps that hit an anti-abuse ban.
    pub ban_hits: u64,
    /// Steps that hit a CAPTCHA lockout.
    pub captcha_lockouts: u64,
    /// Surf sessions dropped after a logged page.
    pub session_drops: u64,
    /// Virtual seconds this exchange's crawl spent down.
    pub downtime_secs: u64,
    /// Virtual second of the permanent shutdown, if one hit.
    pub shutdown_at: Option<u64>,
}

/// Fault-layer summary: which profile ran, what it cost, and where the
/// circuit breakers ended up. Derived from the study's deterministic
/// counters, so the section is identical for every worker count.
#[derive(Debug, Clone, Serialize)]
pub struct FaultSummaryExport {
    /// Fault-profile name (`none` for fault-free runs).
    pub profile: String,
    /// Faults injected during the scan phase.
    pub injected: u64,
    /// Retries issued.
    pub retries: u64,
    /// Virtual backoff spent between attempts (nanoseconds).
    pub backoff_nanos: u64,
    /// Service consultations skipped by an open breaker.
    pub breaker_skips: u64,
    /// Verdicts with at least one scanner up while something was down.
    pub degraded_verdicts: u64,
    /// Verdicts from the blacklist consensus alone.
    pub blacklist_only_verdicts: u64,
    /// Verdicts with no service available at all.
    pub unresolved_verdicts: u64,
    /// Per-service breaker trajectory.
    pub breakers: Vec<BreakerExport>,
}

/// One service's circuit-breaker summary.
#[derive(Debug, Clone, Serialize)]
pub struct BreakerExport {
    /// Service name.
    pub service: String,
    /// Times the breaker tripped open.
    pub opens: u64,
    /// Final state gauge (0 closed, 1 open, 2 half-open).
    pub final_state: i64,
}

/// Corpus-level statistics.
#[derive(Debug, Clone, Serialize)]
pub struct CorpusExport {
    /// Total visits logged.
    pub visits: usize,
    /// Distinct URLs.
    pub distinct_urls: usize,
    /// Distinct registered domains.
    pub distinct_domains: usize,
    /// Overall malicious fraction of regular URLs.
    pub overall_malicious_fraction: f64,
}

/// One Table I row.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Export {
    /// Exchange name.
    pub exchange: String,
    /// Exchange kind label.
    pub kind: String,
    /// URLs crawled.
    pub crawled: u64,
    /// Self-referrals.
    pub self_referrals: u64,
    /// Popular referrals.
    pub popular_referrals: u64,
    /// Regular URLs.
    pub regular: u64,
    /// Malicious URLs.
    pub malicious: u64,
    /// Malicious fraction.
    pub malicious_fraction: f64,
}

/// One Table II row.
#[derive(Debug, Clone, Serialize)]
pub struct Table2Export {
    /// Exchange name.
    pub exchange: String,
    /// Distinct domains.
    pub domains: u64,
    /// Malware-hosting domains.
    pub malware_domains: u64,
    /// Malware fraction.
    pub malware_fraction: f64,
}

/// One Table III row.
#[derive(Debug, Clone, Serialize)]
pub struct Table3Export {
    /// Category label.
    pub category: String,
    /// Count.
    pub count: u64,
    /// Share among categorized malicious URLs (0 for miscellaneous).
    pub categorized_share: f64,
}

/// One Table IV row.
#[derive(Debug, Clone, Serialize)]
pub struct Table4Export {
    /// Shortened URL.
    pub short_url: String,
    /// Short-URL hits.
    pub short_hits: u64,
    /// Aggregate long-URL hits.
    pub long_url_hits: u64,
    /// Top visitor country.
    pub top_country: String,
    /// Top referrer.
    pub top_referrer: String,
}

/// One Figure 3 series.
#[derive(Debug, Clone, Serialize)]
pub struct Fig3Export {
    /// Exchange name.
    pub exchange: String,
    /// `(crawled index, cumulative malicious)` samples.
    pub samples: Vec<(usize, u64)>,
    /// Burstiness score.
    pub burstiness: f64,
}

/// Builds the export document from a completed study. Every artifact is
/// fetched through the unified [`Study::artifact`] API.
pub fn export(study: &Study) -> StudyExport {
    let table1 =
        study.artifact(ArtifactKind::Table1).into_table1().expect("Table1 artifact");
    let counts =
        study.artifact(ArtifactKind::Table3).into_table3().expect("Table3 artifact");
    StudyExport {
        seed: study.config().seed,
        crawl_scale: study.config().crawl_scale,
        substrate: study.config().substrate.name().to_string(),
        corpus: CorpusExport {
            visits: study.store.len(),
            distinct_urls: study.store.distinct_urls(),
            distinct_domains: study.store.distinct_domains(),
            overall_malicious_fraction: table1.overall_malicious_fraction(),
        },
        table1: table1
            .rows
            .iter()
            .map(|r| Table1Export {
                exchange: r.exchange.clone(),
                kind: r.kind.clone(),
                crawled: r.crawled,
                self_referrals: r.self_referrals,
                popular_referrals: r.popular_referrals,
                regular: r.regular,
                malicious: r.malicious,
                malicious_fraction: r.malicious_fraction(),
            })
            .collect(),
        table2: study
            .artifact(ArtifactKind::Table2)
            .into_table2()
            .expect("Table2 artifact")
            .iter()
            .map(|r| Table2Export {
                exchange: r.exchange.clone(),
                domains: r.domains,
                malware_domains: r.malware_domains,
                malware_fraction: r.malware_fraction(),
            })
            .collect(),
        table3: Category::ALL
            .iter()
            .map(|c| Table3Export {
                category: c.label().to_string(),
                count: counts.count(*c),
                categorized_share: counts.categorized_share(*c),
            })
            .collect(),
        table4: study
            .artifact(ArtifactKind::Table4)
            .into_table4()
            .expect("Table4 artifact")
            .iter()
            .map(|r| Table4Export {
                short_url: r.short_url.to_string(),
                short_hits: r.short_hits,
                long_url_hits: r.long_url_hits,
                top_country: r.top_country.clone(),
                top_referrer: r.top_referrer.clone(),
            })
            .collect(),
        fig3: study
            .artifact(ArtifactKind::Fig3)
            .into_fig3()
            .expect("Fig3 artifact")
            .iter()
            .map(|s| Fig3Export {
                exchange: s.exchange.clone(),
                samples: s.downsample(50),
                burstiness: s.burstiness((s.len() / 20).max(5)),
            })
            .collect(),
        fig5: study
            .artifact(ArtifactKind::Fig5)
            .into_fig5()
            .expect("Fig5 artifact")
            .counts
            .into_iter()
            .collect(),
        fig6: study
            .artifact(ArtifactKind::Fig6)
            .into_fig6()
            .expect("Fig6 artifact")
            .counts
            .into_iter()
            .collect(),
        fig7: study
            .artifact(ArtifactKind::Fig7)
            .into_fig7()
            .expect("Fig7 artifact")
            .counts
            .into_iter()
            .collect(),
        faults: fault_summary(study),
        crawl_resilience: crawl_resilience_summary(study),
        substrate_comparison: study
            .artifact(ArtifactKind::SubstrateComparison)
            .into_substrate_comparison()
            .expect("SubstrateComparison artifact")
            .rows
            .iter()
            .map(|r| SubstrateRowExport {
                source: r.source.clone(),
                kind: r.kind.label().to_string(),
                crawled: r.crawled,
                regular: r.regular,
                malicious: r.malicious,
                malicious_fraction: r.malicious_fraction(),
            })
            .collect(),
    }
}

/// Builds the crawl-resilience section from the per-exchange health
/// logs.
fn crawl_resilience_summary(study: &Study) -> CrawlResilienceExport {
    let health = &study.health;
    let sum = |f: fn(&slum_crawler::CrawlHealth) -> u64| health.iter().map(f).sum::<u64>();
    CrawlResilienceExport {
        profile: study.config().crawl_fault_profile.name.clone(),
        lost_steps: sum(|h| h.lost_steps),
        faults_injected: sum(|h| h.faults_injected),
        retries: sum(|h| h.retries),
        downtime_secs: sum(|h| h.downtime_secs),
        shutdowns: health.iter().filter(|h| h.shutdown_at.is_some()).count() as u64,
        health: health
            .iter()
            .map(|h| CrawlHealthExport {
                exchange: h.exchange.clone(),
                pages: h.pages,
                lost_steps: h.lost_steps,
                outage_hits: h.outage_hits,
                ban_hits: h.ban_hits,
                captcha_lockouts: h.captcha_lockouts,
                session_drops: h.session_drops,
                downtime_secs: h.downtime_secs,
                shutdown_at: h.shutdown_at,
            })
            .collect(),
    }
}

/// Builds the fault section from the study's deterministic counters.
fn fault_summary(study: &Study) -> FaultSummaryExport {
    let m = study.metrics();
    FaultSummaryExport {
        profile: study.config().fault_profile.name.clone(),
        injected: m.counter("scan.faults.injected"),
        retries: m.counter("scan.retries"),
        backoff_nanos: m.counter("scan.backoff_nanos"),
        breaker_skips: m.counter("scan.breaker.skips"),
        degraded_verdicts: m.counter("scan.degraded_verdicts"),
        blacklist_only_verdicts: m.counter("scan.blacklist_only_verdicts"),
        unresolved_verdicts: m.counter("scan.unresolved_verdicts"),
        breakers: ScanService::ALL
            .iter()
            .map(|service| BreakerExport {
                service: service.name().to_string(),
                opens: m.counter(&format!("scan.breaker.{}.opens", service.name())),
                final_state: m.gauge(&format!("scan.breaker.{}.state", service.name())),
            })
            .collect(),
    }
}

/// Serializes the export to pretty JSON.
///
/// # Errors
///
/// Propagates `serde_json` failures (practically unreachable).
pub fn to_json(study: &Study) -> Result<String, serde_json::Error> {
    serde_json::to_string_pretty(&export(study))
}

/// FNV-1a digest of the study's export JSON — a compact artifact
/// fingerprint. Two studies digest equal iff their exports are
/// byte-identical, so this is what the slum-serve daemon reports in
/// study-status responses and what determinism checks compare without
/// shipping whole documents around.
///
/// # Errors
///
/// Propagates `serde_json` failures (practically unreachable).
pub fn artifact_digest(study: &Study) -> Result<String, serde_json::Error> {
    Ok(format!("{:016x}", slum_detect::hash::fnv1a(to_json(study)?.as_bytes())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::StudyConfig;

    fn tiny() -> Study {
        let config = StudyConfig::builder()
            .seed(500)
            .crawl_scale(0.0002)
            .domain_scale(0.03)
            .build()
            .expect("valid test config");
        Study::run(&config)
    }

    #[test]
    fn export_is_internally_consistent() {
        let study = tiny();
        let doc = export(&study);
        assert_eq!(doc.table1.len(), 9);
        assert_eq!(doc.table2.len(), 9);
        assert_eq!(doc.table3.len(), 6);
        assert_eq!(doc.fig3.len(), 9);
        let crawled: u64 = doc.table1.iter().map(|r| r.crawled).sum();
        assert_eq!(crawled as usize, doc.corpus.visits);
        let malicious_t1: u64 = doc.table1.iter().map(|r| r.malicious).sum();
        let malicious_t3: u64 = doc.table3.iter().map(|r| r.count).sum();
        assert_eq!(malicious_t1, malicious_t3);
    }

    #[test]
    fn fault_free_export_carries_inert_fault_section() {
        let doc = export(&tiny());
        assert_eq!(doc.faults.profile, "none");
        assert_eq!(doc.faults.injected, 0);
        assert_eq!(doc.faults.degraded_verdicts, 0);
        assert_eq!(doc.faults.breakers.len(), 3);
        assert!(doc.faults.breakers.iter().all(|b| b.opens == 0 && b.final_state == 0));
    }

    #[test]
    fn fault_free_export_carries_clean_crawl_resilience_section() {
        let doc = export(&tiny());
        let section = &doc.crawl_resilience;
        assert_eq!(section.profile, "none");
        assert_eq!(section.lost_steps, 0);
        assert_eq!(section.faults_injected, 0);
        assert_eq!(section.downtime_secs, 0);
        assert_eq!(section.shutdowns, 0);
        assert_eq!(section.health.len(), 9);
        assert!(section.health.iter().all(|h| h.lost_steps == 0 && h.shutdown_at.is_none()));
    }

    #[test]
    fn faulted_crawl_export_reports_losses() {
        let config = StudyConfig::builder()
            .seed(500)
            .crawl_scale(0.0002)
            .domain_scale(0.03)
            .crawl_fault_profile(slum_crawler::CrawlFaultProfile::default_profile())
            .build()
            .expect("valid test config");
        let doc = export(&Study::run(&config));
        let section = &doc.crawl_resilience;
        assert_eq!(section.profile, "default");
        assert!(section.faults_injected > 0);
        assert!(section.lost_steps > 0);
        // The corpus still covers all nine exchanges and Table I's
        // crawled column matches pages per health row.
        assert_eq!(doc.table1.len(), 9);
        for (row, h) in doc.table1.iter().zip(&section.health) {
            assert_eq!(row.exchange, h.exchange);
            assert_eq!(row.crawled, h.pages);
        }
    }

    #[test]
    fn export_carries_substrate_section() {
        let doc = export(&tiny());
        assert_eq!(doc.substrate, "exchange");
        assert_eq!(doc.substrate_comparison.len(), 9);
        for (row, t1) in doc.substrate_comparison.iter().zip(&doc.table1) {
            assert_eq!(row.source, t1.exchange);
            assert_eq!(row.crawled, t1.crawled);
            assert_eq!(row.malicious, t1.malicious);
        }
    }

    #[test]
    fn adnet_export_reports_its_own_sources() {
        let config = StudyConfig::builder()
            .seed(500)
            .crawl_scale(0.0002)
            .domain_scale(0.03)
            .substrate(crate::substrate::Substrate::AdNet)
            .build()
            .expect("valid test config");
        let doc = export(&Study::run(&config));
        assert_eq!(doc.substrate, "adnet");
        assert_eq!(doc.substrate_comparison.len(), 4);
        assert_eq!(doc.table1.len(), 4);
        assert_eq!(doc.crawl_resilience.health.len(), 4);
        let crawled: u64 = doc.substrate_comparison.iter().map(|r| r.crawled).sum();
        assert_eq!(crawled as usize, doc.corpus.visits);
    }

    #[test]
    fn json_serializes_and_carries_key_fields() {
        let study = tiny();
        let json = to_json(&study).expect("serialize");
        assert!(json.contains("\"overall_malicious_fraction\""));
        assert!(json.contains("SendSurf"));
        assert!(json.contains("\"Blacklisted\""));
        // Parses back as generic JSON.
        let value: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(value["table1"].as_array().map(Vec::len), Some(9));
    }
}
