//! TLD and content-category breakdowns of malicious URLs
//! (Figures 6 and 7) and per-exchange domain statistics (Table II).

use std::collections::{BTreeMap, BTreeSet};

use slum_crawler::CrawlRecord;
use slum_websim::{SyntheticWeb, Url};

use crate::scanpipe::ScanOutcome;

/// Figure 6: malicious URLs bucketed by top-level domain
/// (`com`/`net`/`de`/`org`/`others`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TldBreakdown {
    /// bucket → count.
    pub counts: BTreeMap<String, u64>,
}

impl TldBreakdown {
    /// Builds the breakdown over malicious records (keyed by the surfed
    /// URL's TLD, matching the paper's per-URL accounting).
    pub fn build(pairs: &[(&CrawlRecord, &ScanOutcome)]) -> TldBreakdown {
        let mut counts = BTreeMap::new();
        for (record, outcome) in pairs {
            if outcome.malicious {
                let bucket = record.url.tld().figure6_bucket().to_string();
                *counts.entry(bucket).or_insert(0) += 1;
            }
        }
        TldBreakdown { counts }
    }

    /// Total malicious URLs counted.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Share of one bucket.
    pub fn share(&self, bucket: &str) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        self.counts.get(bucket).copied().unwrap_or(0) as f64 / total as f64
    }
}

/// Figure 7: malicious URLs bucketed by content category.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ContentBreakdown {
    /// category label → count.
    pub counts: BTreeMap<String, u64>,
}

impl ContentBreakdown {
    /// Builds the breakdown. Category comes from the synthetic web's
    /// page metadata for the *final* URL (standing in for the
    /// VirusTotal category feed the paper used); URLs whose landing page
    /// is unknown fall into "Others".
    pub fn build(
        web: &SyntheticWeb,
        pairs: &[(&CrawlRecord, &ScanOutcome)],
    ) -> ContentBreakdown {
        let mut counts = BTreeMap::new();
        for (record, outcome) in pairs {
            if outcome.malicious {
                let category = page_category(web, &record.final_url)
                    .or_else(|| page_category(web, &record.url))
                    .unwrap_or("Others");
                *counts.entry(category.to_string()).or_insert(0) += 1;
            }
        }
        ContentBreakdown { counts }
    }

    /// Total malicious URLs counted.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Share of one category label.
    pub fn share(&self, label: &str) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        self.counts.get(label).copied().unwrap_or(0) as f64 / total as f64
    }
}

fn page_category<'w>(web: &'w SyntheticWeb, url: &Url) -> Option<&'w str> {
    web.oracle_page(url).map(|p| p.category.label())
}

/// One Table II row: per-exchange domain statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainRow {
    /// Exchange name.
    pub exchange: String,
    /// Distinct registered domains among regular URLs.
    pub domains: u64,
    /// Domains with at least one malicious URL.
    pub malware_domains: u64,
}

impl DomainRow {
    /// Table II's "% Malware" column.
    pub fn malware_fraction(&self) -> f64 {
        if self.domains == 0 {
            0.0
        } else {
            self.malware_domains as f64 / self.domains as f64
        }
    }
}

/// Builds Table II: for each exchange, distinct domains and the subset
/// hosting malware. `regular` marks which records survived referral
/// filtering.
pub fn domain_rows(
    records: &[CrawlRecord],
    outcomes: &[ScanOutcome],
    regular: &[bool],
) -> Vec<DomainRow> {
    assert_eq!(records.len(), outcomes.len(), "records and outcomes must align");
    assert_eq!(records.len(), regular.len(), "records and regular flags must align");
    let mut per_exchange: BTreeMap<&str, (BTreeSet<String>, BTreeSet<String>)> = BTreeMap::new();
    for ((record, outcome), &is_regular) in records.iter().zip(outcomes).zip(regular) {
        if !is_regular {
            continue;
        }
        let entry = per_exchange.entry(record.exchange.as_str()).or_default();
        let domain = record.domain();
        entry.0.insert(domain.clone());
        if outcome.malicious {
            entry.1.insert(domain);
        }
    }
    per_exchange
        .into_iter()
        .map(|(exchange, (domains, malware))| DomainRow {
            exchange: exchange.to_string(),
            domains: domains.len() as u64,
            malware_domains: malware.len() as u64,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use slum_browser::har::HarLog;
    use slum_detect::quttera::{QutteraReport, QutteraVerdict};
    use slum_detect::virustotal::VtReport;

    fn record(exchange: &str, url: &str) -> CrawlRecord {
        let u = Url::parse(url).unwrap();
        CrawlRecord {
            exchange: exchange.into(),
            seq: 0,
            at: 0,
            url: u.clone(),
            final_url: u,
            redirect_hops: 0,
            chain_hosts: vec![],
            via_shortener: false,
            via_js_redirect: false,
            content: None,
            download_filenames: vec![],
            har: HarLog::new(),
            failed: false,
        }
    }

    fn outcome(malicious: bool) -> ScanOutcome {
        ScanOutcome {
            malicious,
            vt: VtReport { detections: vec![], total_engines: 12, threshold: 2 },
            quttera: QutteraReport {
                url: Url::parse("http://x.example/").unwrap(),
                findings: vec![],
                verdict: QutteraVerdict::Clean,
            },
            blacklisted_domain: None,
            needed_content_upload: false,
            source: crate::scanpipe::VerdictSource::Full,
            faults: crate::scanpipe::FaultLog::default(),
        }
    }

    #[test]
    fn tld_breakdown_buckets() {
        let records = vec![
            record("X", "http://a-site.com/"),
            record("X", "http://b-site.com/"),
            record("X", "http://c-site.net/"),
            record("X", "http://d-site.ru/"),
            record("X", "http://e-site.org/"),
        ];
        let outcomes: Vec<_> = (0..5).map(|_| outcome(true)).collect();
        let pairs: Vec<_> = records.iter().zip(&outcomes).collect();
        let t = TldBreakdown::build(&pairs);
        assert_eq!(t.total(), 5);
        assert!((t.share("com") - 0.4).abs() < 1e-9);
        assert!((t.share("net") - 0.2).abs() < 1e-9);
        assert!((t.share("others") - 0.2).abs() < 1e-9);
        assert!((t.share("org") - 0.2).abs() < 1e-9);
        assert_eq!(t.share("de"), 0.0);
    }

    #[test]
    fn benign_records_excluded_from_breakdowns() {
        let records = vec![record("X", "http://a-site.com/"), record("X", "http://b-site.net/")];
        let outcomes = vec![outcome(true), outcome(false)];
        let pairs: Vec<_> = records.iter().zip(&outcomes).collect();
        let t = TldBreakdown::build(&pairs);
        assert_eq!(t.total(), 1);
    }

    #[test]
    fn domain_rows_count_distinct_and_malicious() {
        let records = vec![
            record("A", "http://one-site.com/p1"),
            record("A", "http://one-site.com/p2"),
            record("A", "http://two-site.com/"),
            record("A", "http://10khits.exchange.example/"),
            record("B", "http://three-site.net/"),
        ];
        let outcomes =
            vec![outcome(true), outcome(false), outcome(false), outcome(false), outcome(true)];
        let regular = vec![true, true, true, false, true];
        let rows = domain_rows(&records, &outcomes, &regular);
        assert_eq!(rows.len(), 2);
        let a = rows.iter().find(|r| r.exchange == "A").unwrap();
        assert_eq!(a.domains, 2, "self-referral excluded, one-site deduped");
        assert_eq!(a.malware_domains, 1);
        assert!((a.malware_fraction() - 0.5).abs() < 1e-9);
        let b = rows.iter().find(|r| r.exchange == "B").unwrap();
        assert_eq!((b.domains, b.malware_domains), (1, 1));
    }

    #[test]
    fn content_breakdown_uses_oracle_categories() {
        use slum_websim::build::{MaliciousOptions, WebBuilder};
        use slum_websim::{ContentCategory, MaliceKind};

        let mut b = WebBuilder::new(210);
        let spec = b.malicious_site(MaliciousOptions {
            kind: Some(MaliceKind::Misc),
            category: Some(ContentCategory::Business),
            cloaked: Some(false),
            ..Default::default()
        });
        let web = b.finish();
        let records = vec![record("X", &spec.url.to_string())];
        let outcomes = vec![outcome(true)];
        let pairs: Vec<_> = records.iter().zip(&outcomes).collect();
        let c = ContentBreakdown::build(&web, &pairs);
        assert_eq!(c.counts.get("Business"), Some(&1));
    }

    #[test]
    fn unknown_landing_page_falls_to_others() {
        let b = slum_websim::build::WebBuilder::new(211);
        let web = b.finish();
        let records = vec![record("X", "http://ghost-site.com/")];
        let outcomes = vec![outcome(true)];
        let pairs: Vec<_> = records.iter().zip(&outcomes).collect();
        let c = ContentBreakdown::build(&web, &pairs);
        assert_eq!(c.counts.get("Others"), Some(&1));
    }
}
