//! The unified artifact API: every table and figure the paper's
//! evaluation publishes, behind one enum.
//!
//! Callers that used to reach for twelve ad-hoc `Study::table1()` /
//! `Study::fig7()` methods can now iterate [`ArtifactKind::ALL`], build
//! any artifact with [`Study::artifact`], and print it generically via
//! [`crate::report::Render`]. The historical per-artifact methods
//! survive as thin delegating wrappers (see `study.rs`) so existing
//! code keeps compiling; new code should go through this module.

use crate::breakdown::{domain_rows, ContentBreakdown, DomainRow, TldBreakdown};
use crate::categorize::{tally, CategoryCounts};
use crate::filter::ReferralClass;
use crate::redirects::{longest_chain, ChainExhibit, RedirectHistogram};
use crate::report::{Fig2Bar, Table1, Table1Row};
use crate::shortened::{shortened_rows, ShortenedRow};
use crate::study::Study;
use crate::substrate::SubstrateComparison;
use crate::temporal::CumulativeSeries;

/// Which published artifact to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ArtifactKind {
    /// Table I: per-exchange crawl statistics.
    Table1,
    /// Table II: per-exchange domain statistics.
    Table2,
    /// Table III: malware categorization counts.
    Table3,
    /// Table IV: malicious shortened-URL statistics.
    Table4,
    /// Figure 2: per-exchange benign vs malware bars.
    Fig2,
    /// Figure 3: per-exchange cumulative malicious series.
    Fig3,
    /// Figure 4: the longest malicious redirect chain observed.
    Fig4,
    /// Figure 5: redirect-count histogram.
    Fig5,
    /// Figure 6: TLD breakdown of malicious URLs.
    Fig6,
    /// Figure 7: content-category breakdown of malicious URLs.
    Fig7,
    /// Cross-substrate malice comparison: per-source statistics in a
    /// substrate-agnostic shape (this reproduction's extension; not a
    /// paper artifact).
    SubstrateComparison,
}

impl ArtifactKind {
    /// Every artifact, in publication order.
    pub const ALL: [ArtifactKind; 11] = [
        ArtifactKind::Table1,
        ArtifactKind::Table2,
        ArtifactKind::Table3,
        ArtifactKind::Table4,
        ArtifactKind::Fig2,
        ArtifactKind::Fig3,
        ArtifactKind::Fig4,
        ArtifactKind::Fig5,
        ArtifactKind::Fig6,
        ArtifactKind::Fig7,
        ArtifactKind::SubstrateComparison,
    ];

    /// The short CLI name (`table1`, `fig5`, ...).
    pub fn name(self) -> &'static str {
        match self {
            ArtifactKind::Table1 => "table1",
            ArtifactKind::Table2 => "table2",
            ArtifactKind::Table3 => "table3",
            ArtifactKind::Table4 => "table4",
            ArtifactKind::Fig2 => "fig2",
            ArtifactKind::Fig3 => "fig3",
            ArtifactKind::Fig4 => "fig4",
            ArtifactKind::Fig5 => "fig5",
            ArtifactKind::Fig6 => "fig6",
            ArtifactKind::Fig7 => "fig7",
            ArtifactKind::SubstrateComparison => "substrates",
        }
    }

    /// The publication title used as a section header.
    pub fn title(self) -> &'static str {
        match self {
            ArtifactKind::Table1 => "Table I: statistics of data from traffic exchanges",
            ArtifactKind::Table2 => "Table II: statistics of domains on traffic exchanges",
            ArtifactKind::Table3 => "Table III: malware categorization",
            ArtifactKind::Table4 => "Table IV: statistics of malicious shortened URLs",
            ArtifactKind::Fig2 => "Figure 2: malware ratio in exchanges",
            ArtifactKind::Fig3 => "Figure 3: time series of malicious URLs",
            ArtifactKind::Fig4 => "Figure 4: example suspicious redirection chain",
            ArtifactKind::Fig5 => "Figure 5: distribution of URL redirection count",
            ArtifactKind::Fig6 => "Figure 6: malicious URLs across TLDs",
            ArtifactKind::Fig7 => "Figure 7: malicious content across categories",
            ArtifactKind::SubstrateComparison => {
                "Substrate comparison: malice across traffic ecosystems"
            }
        }
    }

    /// Parses a CLI name back into a kind.
    pub fn parse(name: &str) -> Option<ArtifactKind> {
        ArtifactKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// One built artifact: the typed payload for each [`ArtifactKind`].
#[derive(Debug, Clone)]
pub enum Artifact {
    /// Table I.
    Table1(Table1),
    /// Table II rows.
    Table2(Vec<DomainRow>),
    /// Table III counts.
    Table3(CategoryCounts),
    /// Table IV rows.
    Table4(Vec<ShortenedRow>),
    /// Figure 2 bars.
    Fig2(Vec<Fig2Bar>),
    /// Figure 3 series.
    Fig3(Vec<CumulativeSeries>),
    /// Figure 4 exhibit (absent when no malicious chain was observed).
    Fig4(Option<ChainExhibit>),
    /// Figure 5 histogram.
    Fig5(RedirectHistogram),
    /// Figure 6 breakdown.
    Fig6(TldBreakdown),
    /// Figure 7 breakdown.
    Fig7(ContentBreakdown),
    /// Substrate-comparison rows.
    SubstrateComparison(SubstrateComparison),
}

macro_rules! artifact_accessor {
    ($(#[$doc:meta])* $fn_name:ident, $variant:ident, $payload:ty) => {
        $(#[$doc])*
        pub fn $fn_name(self) -> Option<$payload> {
            match self {
                Artifact::$variant(payload) => Some(payload),
                _ => None,
            }
        }
    };
}

impl Artifact {
    /// The kind this artifact was built for.
    pub fn kind(&self) -> ArtifactKind {
        match self {
            Artifact::Table1(_) => ArtifactKind::Table1,
            Artifact::Table2(_) => ArtifactKind::Table2,
            Artifact::Table3(_) => ArtifactKind::Table3,
            Artifact::Table4(_) => ArtifactKind::Table4,
            Artifact::Fig2(_) => ArtifactKind::Fig2,
            Artifact::Fig3(_) => ArtifactKind::Fig3,
            Artifact::Fig4(_) => ArtifactKind::Fig4,
            Artifact::Fig5(_) => ArtifactKind::Fig5,
            Artifact::Fig6(_) => ArtifactKind::Fig6,
            Artifact::Fig7(_) => ArtifactKind::Fig7,
            Artifact::SubstrateComparison(_) => ArtifactKind::SubstrateComparison,
        }
    }

    artifact_accessor!(
        /// The Table I payload, if this is a [`Artifact::Table1`].
        into_table1, Table1, Table1);
    artifact_accessor!(
        /// The Table II payload, if this is a [`Artifact::Table2`].
        into_table2, Table2, Vec<DomainRow>);
    artifact_accessor!(
        /// The Table III payload, if this is a [`Artifact::Table3`].
        into_table3, Table3, CategoryCounts);
    artifact_accessor!(
        /// The Table IV payload, if this is a [`Artifact::Table4`].
        into_table4, Table4, Vec<ShortenedRow>);
    artifact_accessor!(
        /// The Figure 2 payload, if this is a [`Artifact::Fig2`].
        into_fig2, Fig2, Vec<Fig2Bar>);
    artifact_accessor!(
        /// The Figure 3 payload, if this is a [`Artifact::Fig3`].
        into_fig3, Fig3, Vec<CumulativeSeries>);
    artifact_accessor!(
        /// The Figure 4 payload, if this is a [`Artifact::Fig4`].
        into_fig4, Fig4, Option<ChainExhibit>);
    artifact_accessor!(
        /// The Figure 5 payload, if this is a [`Artifact::Fig5`].
        into_fig5, Fig5, RedirectHistogram);
    artifact_accessor!(
        /// The Figure 6 payload, if this is a [`Artifact::Fig6`].
        into_fig6, Fig6, TldBreakdown);
    artifact_accessor!(
        /// The Figure 7 payload, if this is a [`Artifact::Fig7`].
        into_fig7, Fig7, ContentBreakdown);
    artifact_accessor!(
        /// The comparison payload, if this is a
        /// [`Artifact::SubstrateComparison`].
        into_substrate_comparison, SubstrateComparison, SubstrateComparison);
}

impl Study {
    /// Builds any published artifact from the completed study — the
    /// single entry point `export` and `repro` route through.
    pub fn artifact(&self, kind: ArtifactKind) -> Artifact {
        match kind {
            ArtifactKind::Table1 => Artifact::Table1(build_table1(self)),
            ArtifactKind::Table2 => Artifact::Table2(domain_rows(
                self.store.records(),
                &self.outcomes,
                &self.regular_mask(),
            )),
            ArtifactKind::Table3 => Artifact::Table3(tally(&self.regular_pairs())),
            ArtifactKind::Table4 => {
                Artifact::Table4(shortened_rows(&self.web, &self.regular_pairs()))
            }
            ArtifactKind::Fig2 => Artifact::Fig2(build_fig2(self)),
            ArtifactKind::Fig3 => Artifact::Fig3(build_fig3(self)),
            ArtifactKind::Fig4 => Artifact::Fig4(longest_chain(&self.regular_pairs())),
            ArtifactKind::Fig5 => Artifact::Fig5(RedirectHistogram::build(&self.regular_pairs())),
            ArtifactKind::Fig6 => Artifact::Fig6(TldBreakdown::build(&self.regular_pairs())),
            ArtifactKind::Fig7 => {
                Artifact::Fig7(ContentBreakdown::build(&self.web, &self.regular_pairs()))
            }
            ArtifactKind::SubstrateComparison => {
                Artifact::SubstrateComparison(SubstrateComparison::build(
                    self.config().substrate,
                    &self.sources,
                    self.store.records(),
                    &self.referrals,
                    &self.outcomes,
                ))
            }
        }
    }
}

/// Table I: per-source crawl statistics (one row per traffic source of
/// the substrate that ran; the nine exchanges under the default).
fn build_table1(study: &Study) -> Table1 {
    let rows = study
        .sources
        .iter()
        .map(|meta| {
            let mut row = Table1Row {
                exchange: meta.name.clone(),
                kind: meta.kind.label().to_string(),
                crawled: 0,
                self_referrals: 0,
                popular_referrals: 0,
                regular: 0,
                malicious: 0,
            };
            for ((record, outcome), class) in
                study.store.records().iter().zip(&study.outcomes).zip(&study.referrals)
            {
                if record.exchange != meta.name {
                    continue;
                }
                row.crawled += 1;
                match class {
                    ReferralClass::SelfReferral => row.self_referrals += 1,
                    ReferralClass::PopularReferral => row.popular_referrals += 1,
                    ReferralClass::Regular => {
                        row.regular += 1;
                        if outcome.malicious {
                            row.malicious += 1;
                        }
                    }
                }
            }
            row
        })
        .collect();
    Table1 { rows }
}

/// Figure 2 bars (per-exchange benign vs malware).
fn build_fig2(study: &Study) -> Vec<Fig2Bar> {
    build_table1(study)
        .rows
        .into_iter()
        .map(|r| Fig2Bar {
            exchange: r.exchange,
            benign: r.regular - r.malicious,
            malicious: r.malicious,
        })
        .collect()
}

/// Figure 3: per-source cumulative malicious series (regular URLs,
/// crawl order).
fn build_fig3(study: &Study) -> Vec<CumulativeSeries> {
    study
        .sources
        .iter()
        .map(|meta| {
            let flags: Vec<bool> = study
                .store
                .records()
                .iter()
                .zip(&study.outcomes)
                .zip(&study.referrals)
                .filter(|((record, _), class)| {
                    record.exchange == meta.name && **class == ReferralClass::Regular
                })
                .map(|((_, outcome), _)| outcome.malicious)
                .collect();
            CumulativeSeries::from_flags(&meta.name, &flags)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_round_trip_through_names() {
        for kind in ArtifactKind::ALL {
            assert_eq!(ArtifactKind::parse(kind.name()), Some(kind));
            assert!(!kind.title().is_empty());
        }
        assert_eq!(ArtifactKind::parse("table9"), None);
    }

    #[test]
    fn accessors_reject_mismatched_variants() {
        let artifact = Artifact::Table1(Table1 { rows: vec![] });
        assert_eq!(artifact.kind(), ArtifactKind::Table1);
        assert!(artifact.clone().into_table2().is_none());
        assert!(artifact.into_table1().is_some());
    }
}
