//! Detection-loss-under-faults experiment.
//!
//! The staleness experiment ([`crate::staleness`]) quantifies what
//! blacklist update lag costs; this one quantifies what *service
//! unavailability* costs. It runs the same seeded study twice — once
//! fault-free, once under a [`FaultProfile`] — and diffs the verdicts
//! record by record. Because the corpus (build + crawl) is a pure
//! function of the seed, every divergence is attributable to the fault
//! layer alone: a malicious record the degraded pipeline calls benign
//! was *missed because a service was down*, exactly the measurement
//! distortion the related mal-activity-reporting literature warns
//! about.

use slum_detect::fault::FaultProfile;

use crate::filter::ReferralClass;
use crate::scanpipe::VerdictSource;
use crate::study::{Study, StudyConfig};

/// Parameters of the detection-loss experiment.
#[derive(Debug, Clone)]
pub struct FaultLossConfig {
    /// Study seed (shared by both runs, so the corpora are identical).
    pub seed: u64,
    /// Crawl-volume scale for both runs.
    pub crawl_scale: f64,
    /// Domain-pool scale for both runs.
    pub domain_scale: f64,
    /// The fault profile the degraded run scans under.
    pub profile: FaultProfile,
}

impl Default for FaultLossConfig {
    fn default() -> Self {
        FaultLossConfig {
            seed: 2016,
            crawl_scale: 0.0003,
            domain_scale: 0.03,
            profile: FaultProfile::default_profile(),
        }
    }
}

/// Outcome of the detection-loss experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultLossReport {
    /// Name of the profile the degraded run used.
    pub profile: String,
    /// Regular records compared.
    pub regular: u64,
    /// Malicious verdicts in the fault-free baseline.
    pub malicious_baseline: u64,
    /// Malicious verdicts under faults.
    pub malicious_faulted: u64,
    /// Baseline-malicious records the degraded run called benign.
    pub missed_by_faults: u64,
    /// Baseline-benign records the degraded run convicted. Degradation
    /// only ever *removes* evidence, so this must be zero; it is
    /// reported (and asserted in tests) rather than assumed.
    pub gained_by_faults: u64,
    /// Verdicts produced with at least one scanner while something was
    /// down.
    pub degraded_verdicts: u64,
    /// Verdicts produced from the blacklist consensus alone.
    pub blacklist_only_verdicts: u64,
    /// Verdicts with no service available at all.
    pub unresolved_verdicts: u64,
    /// Faults injected across the degraded run.
    pub injected_faults: u64,
    /// Retries issued across the degraded run.
    pub retries: u64,
    /// Virtual backoff spent across the degraded run (nanoseconds).
    pub backoff_nanos: u64,
    /// Service consultations skipped by an open circuit breaker.
    pub breaker_skips: u64,
}

impl FaultLossReport {
    /// Fraction of baseline detections lost to service faults.
    pub fn miss_fraction(&self) -> f64 {
        if self.malicious_baseline == 0 {
            0.0
        } else {
            self.missed_by_faults as f64 / self.malicious_baseline as f64
        }
    }

    /// Fraction of regular verdicts that carried non-[`Full`]
    /// provenance.
    ///
    /// [`Full`]: VerdictSource::Full
    pub fn degraded_fraction(&self) -> f64 {
        if self.regular == 0 {
            0.0
        } else {
            (self.degraded_verdicts + self.blacklist_only_verdicts + self.unresolved_verdicts)
                as f64
                / self.regular as f64
        }
    }
}

/// Runs the experiment: the same seeded study fault-free and under
/// `config.profile`, diffed verdict by verdict.
///
/// # Panics
///
/// Panics if either study configuration fails validation (the scales
/// are caller-supplied) — or if the two runs' corpora diverge, which
/// would mean the seed no longer fully determines the crawl.
pub fn run_fault_loss_experiment(config: &FaultLossConfig) -> FaultLossReport {
    let base = |profile: FaultProfile| -> Study {
        let study_config = StudyConfig::builder()
            .seed(config.seed)
            .crawl_scale(config.crawl_scale)
            .domain_scale(config.domain_scale)
            .scan_workers(1)
            .fault_profile(profile)
            .build()
            .expect("valid fault-loss study config");
        Study::run(&study_config)
    };
    let baseline = base(FaultProfile::none());
    let faulted = base(config.profile.clone());
    assert_eq!(
        baseline.store.len(),
        faulted.store.len(),
        "same seed must produce the same corpus"
    );

    let mut report = FaultLossReport {
        profile: config.profile.name.clone(),
        regular: 0,
        malicious_baseline: 0,
        malicious_faulted: 0,
        missed_by_faults: 0,
        gained_by_faults: 0,
        degraded_verdicts: 0,
        blacklist_only_verdicts: 0,
        unresolved_verdicts: 0,
        injected_faults: 0,
        retries: 0,
        backoff_nanos: 0,
        breaker_skips: 0,
    };
    for ((clean, degraded), class) in
        baseline.outcomes.iter().zip(&faulted.outcomes).zip(&faulted.referrals)
    {
        if *class != ReferralClass::Regular {
            continue;
        }
        report.regular += 1;
        report.malicious_baseline += u64::from(clean.malicious);
        report.malicious_faulted += u64::from(degraded.malicious);
        if clean.malicious && !degraded.malicious {
            report.missed_by_faults += 1;
        }
        if !clean.malicious && degraded.malicious {
            report.gained_by_faults += 1;
        }
        match degraded.source {
            VerdictSource::Full => {}
            VerdictSource::Degraded => report.degraded_verdicts += 1,
            VerdictSource::BlacklistOnly => report.blacklist_only_verdicts += 1,
            VerdictSource::Unresolved => report.unresolved_verdicts += 1,
        }
        report.injected_faults += u64::from(degraded.faults.injected);
        report.retries += u64::from(degraded.faults.retries);
        report.backoff_nanos += degraded.faults.backoff_nanos;
        report.breaker_skips += u64::from(degraded.faults.breaker_skips);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_profile_loses_nothing() {
        let report = run_fault_loss_experiment(&FaultLossConfig {
            profile: FaultProfile::none(),
            ..FaultLossConfig::default()
        });
        assert!(report.regular > 0);
        assert_eq!(report.malicious_faulted, report.malicious_baseline);
        assert_eq!(report.missed_by_faults, 0);
        assert_eq!(report.gained_by_faults, 0);
        assert_eq!(report.injected_faults, 0);
        assert_eq!(report.degraded_fraction(), 0.0);
    }

    #[test]
    fn default_profile_injects_and_never_gains_detections() {
        let report = run_fault_loss_experiment(&FaultLossConfig::default());
        assert_eq!(report.profile, "default");
        assert!(report.injected_faults > 0);
        assert!(report.retries > 0);
        assert!(report.degraded_verdicts > 0);
        assert_eq!(
            report.gained_by_faults, 0,
            "degradation removes evidence, it can never convict: {report:?}"
        );
        assert_eq!(
            report.malicious_faulted + report.missed_by_faults,
            report.malicious_baseline,
            "every baseline detection is either kept or fault-missed"
        );
        assert!(report.miss_fraction() < 1.0);
    }

    #[test]
    fn harsh_profile_degrades_more_verdicts_than_default() {
        // Note: raw injected-fault counts are NOT monotone in profile
        // harshness — harsh trips its breakers early (threshold 4,
        // long cooldown), and a skipped request injects nothing. The
        // faithful severity measure is how many verdicts lost full
        // provenance.
        let default = run_fault_loss_experiment(&FaultLossConfig::default());
        let harsh = run_fault_loss_experiment(&FaultLossConfig {
            profile: FaultProfile::harsh(),
            ..FaultLossConfig::default()
        });
        assert!(
            harsh.degraded_fraction() > default.degraded_fraction(),
            "harsh {} vs default {}",
            harsh.degraded_fraction(),
            default.degraded_fraction()
        );
        assert!(harsh.breaker_skips > 0, "harsh breakers must trip and skip");
    }

    #[test]
    fn experiment_is_deterministic() {
        let a = run_fault_loss_experiment(&FaultLossConfig::default());
        let b = run_fault_loss_experiment(&FaultLossConfig::default());
        assert_eq!(a, b);
    }
}
