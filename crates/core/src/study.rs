//! The end-to-end study runner: build the ecosystem, crawl, scan,
//! analyze — everything the paper's evaluation reports, in one object.

use slum_crawler::drive::estimated_duration_secs;
use slum_crawler::{crawl_all, CrawlRecord, RecordStore};
use slum_exchange::params::PROFILES;
use slum_exchange::Exchange;
use slum_websim::build::WebBuilder;
use slum_websim::SyntheticWeb;

use crate::breakdown::{domain_rows, ContentBreakdown, DomainRow, TldBreakdown};
use crate::case_studies;
use crate::categorize::{tally, CategoryCounts};
use crate::filter::{ReferralClass, ReferralFilter};
use crate::redirects::{longest_chain, ChainExhibit, RedirectHistogram};
use crate::report::{Fig2Bar, Table1, Table1Row};
use crate::scanpipe::{ScanOutcome, ScanPipeline};
use crate::shortened::{shortened_rows, ShortenedRow};
use crate::temporal::CumulativeSeries;

/// Study configuration.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// Master seed.
    pub seed: u64,
    /// Fraction of the paper's per-exchange crawl volumes to replay
    /// (1.0 = the full 1,003,087 visits; the default keeps CI-sized
    /// runs fast while preserving every shape).
    pub crawl_scale: f64,
    /// Fraction of the paper's per-exchange domain pools to install.
    pub domain_scale: f64,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig { seed: 2016, crawl_scale: 0.001, domain_scale: 0.05 }
    }
}

/// A completed study: the corpus, verdicts, and every derived artifact.
pub struct Study {
    /// The synthetic web (with its oracle and shortener registry).
    pub web: SyntheticWeb,
    /// The crawl corpus.
    pub store: RecordStore,
    /// Scan outcome per record (aligned with `store.records()`).
    pub outcomes: Vec<ScanOutcome>,
    /// Referral class per record (aligned).
    pub referrals: Vec<ReferralClass>,
    config: StudyConfig,
}

impl Study {
    /// Runs the full pipeline.
    pub fn run(config: &StudyConfig) -> Study {
        // 1. Build the web population + the nine exchanges. Each
        //    exchange gets its *own* planned crawl span so manual-surf
        //    campaign bursts land inside the (much shorter) manual
        //    crawls rather than after they end.
        let mut builder = WebBuilder::new(config.seed);
        let mut exchanges: Vec<Exchange> = PROFILES
            .iter()
            .map(|p| {
                let span = estimated_duration_secs(p, steps_for(p, config.crawl_scale));
                slum_exchange::build_exchange(&mut builder, p, config.domain_scale, span)
            })
            .collect();
        let web = builder.finish();

        // 2. Crawl all nine exchanges in parallel.
        let (store, _stats) = crawl_all(&web, &mut exchanges, config.seed, |x| {
            let profile = PROFILES.iter().find(|p| p.name == x.name()).expect("known");
            steps_for(profile, config.crawl_scale)
        });

        // 3. Classify referrals, then scan every *regular* record.
        let filter = ReferralFilter::from_profiles(PROFILES.iter());
        let referrals: Vec<ReferralClass> =
            store.records().iter().map(|r| filter.classify(r)).collect();
        let mut pipeline = ScanPipeline::new(&web);
        let outcomes: Vec<ScanOutcome> = store
            .records()
            .iter()
            .zip(&referrals)
            .map(|(record, class)| match class {
                ReferralClass::Regular => pipeline.scan(record),
                // Self/popular referrals are excluded from analysis; give
                // them an inert clean outcome so indices stay aligned.
                _ => clean_outcome(record),
            })
            .collect();

        Study { web, store, outcomes, referrals, config: config.clone() }
    }

    /// The configuration the study ran with.
    pub fn config(&self) -> &StudyConfig {
        &self.config
    }

    /// Regular-record mask (aligned with records).
    pub fn regular_mask(&self) -> Vec<bool> {
        self.referrals.iter().map(|c| *c == ReferralClass::Regular).collect()
    }

    fn regular_pairs(&self) -> (Vec<CrawlRecord>, Vec<ScanOutcome>) {
        let mut records = Vec::new();
        let mut outcomes = Vec::new();
        for ((record, outcome), class) in
            self.store.records().iter().zip(&self.outcomes).zip(&self.referrals)
        {
            if *class == ReferralClass::Regular {
                records.push(record.clone());
                outcomes.push(outcome.clone());
            }
        }
        (records, outcomes)
    }

    /// Table I: per-exchange crawl statistics.
    pub fn table1(&self) -> Table1 {
        let rows = PROFILES
            .iter()
            .map(|profile| {
                let mut row = Table1Row {
                    exchange: profile.name.to_string(),
                    kind: profile.kind.label().to_string(),
                    crawled: 0,
                    self_referrals: 0,
                    popular_referrals: 0,
                    regular: 0,
                    malicious: 0,
                };
                for ((record, outcome), class) in
                    self.store.records().iter().zip(&self.outcomes).zip(&self.referrals)
                {
                    if record.exchange != profile.name {
                        continue;
                    }
                    row.crawled += 1;
                    match class {
                        ReferralClass::SelfReferral => row.self_referrals += 1,
                        ReferralClass::PopularReferral => row.popular_referrals += 1,
                        ReferralClass::Regular => {
                            row.regular += 1;
                            if outcome.malicious {
                                row.malicious += 1;
                            }
                        }
                    }
                }
                row
            })
            .collect();
        Table1 { rows }
    }

    /// Table II: per-exchange domain statistics.
    pub fn table2(&self) -> Vec<DomainRow> {
        domain_rows(self.store.records(), &self.outcomes, &self.regular_mask())
    }

    /// Table III: malware categorization counts.
    pub fn table3(&self) -> CategoryCounts {
        let (records, outcomes) = self.regular_pairs();
        tally(&records, &outcomes)
    }

    /// Table IV: malicious shortened-URL statistics.
    pub fn table4(&self) -> Vec<ShortenedRow> {
        let (records, outcomes) = self.regular_pairs();
        shortened_rows(&self.web, &records, &outcomes)
    }

    /// Figure 2 bars (per-exchange benign vs malware).
    pub fn fig2(&self) -> Vec<Fig2Bar> {
        self.table1()
            .rows
            .into_iter()
            .map(|r| Fig2Bar {
                exchange: r.exchange,
                benign: r.regular - r.malicious,
                malicious: r.malicious,
            })
            .collect()
    }

    /// Figure 3: per-exchange cumulative malicious series (regular URLs,
    /// crawl order).
    pub fn fig3(&self) -> Vec<CumulativeSeries> {
        PROFILES
            .iter()
            .map(|profile| {
                let flags: Vec<bool> = self
                    .store
                    .records()
                    .iter()
                    .zip(&self.outcomes)
                    .zip(&self.referrals)
                    .filter(|((record, _), class)| {
                        record.exchange == profile.name && **class == ReferralClass::Regular
                    })
                    .map(|((_, outcome), _)| outcome.malicious)
                    .collect();
                CumulativeSeries::from_flags(profile.name, &flags)
            })
            .collect()
    }

    /// Figure 5: redirect-count histogram.
    pub fn fig5(&self) -> RedirectHistogram {
        let (records, outcomes) = self.regular_pairs();
        RedirectHistogram::build(&records, &outcomes)
    }

    /// Figure 4 exhibit: the longest malicious redirect chain observed.
    pub fn fig4(&self) -> Option<ChainExhibit> {
        let (records, outcomes) = self.regular_pairs();
        longest_chain(&records, &outcomes)
    }

    /// Figure 6: TLD breakdown of malicious URLs.
    pub fn fig6(&self) -> TldBreakdown {
        let (records, outcomes) = self.regular_pairs();
        TldBreakdown::build(&records, &outcomes)
    }

    /// Figure 7: content-category breakdown of malicious URLs.
    pub fn fig7(&self) -> ContentBreakdown {
        let (records, outcomes) = self.regular_pairs();
        ContentBreakdown::build(&self.web, &records, &outcomes)
    }

    /// §V-A case studies: iframe-injection exhibits.
    pub fn iframe_case_studies(&self) -> Vec<case_studies::IframeExhibit> {
        let (records, outcomes) = self.regular_pairs();
        case_studies::iframe_injections(&records, &outcomes)
    }

    /// §V-B case studies: deceptive downloads.
    pub fn download_case_studies(&self) -> Vec<case_studies::DownloadExhibit> {
        let (records, outcomes) = self.regular_pairs();
        case_studies::deceptive_downloads(&records, &outcomes)
    }

    /// §V-D case studies: Flash click-jacks.
    pub fn flash_case_studies(&self) -> Vec<case_studies::FlashExhibit> {
        let (records, outcomes) = self.regular_pairs();
        case_studies::flash_clickjacks(&self.web, &records, &outcomes)
    }

    /// §V-E case studies: false positives.
    pub fn false_positive_case_studies(&self) -> Vec<case_studies::FalsePositiveExhibit> {
        let (records, outcomes) = self.regular_pairs();
        case_studies::false_positives(&self.web, &records, &outcomes)
    }
}

/// Per-exchange crawl steps at a given scale (minimum 40 so small-scale
/// runs still populate every row).
pub fn steps_for(profile: &slum_exchange::ExchangeProfile, scale: f64) -> u64 {
    ((profile.urls_crawled as f64 * scale).round() as u64).max(40)
}

fn clean_outcome(record: &CrawlRecord) -> ScanOutcome {
    ScanOutcome {
        malicious: false,
        vt: slum_detect::virustotal::VtReport {
            detections: Vec::new(),
            total_engines: 0,
            threshold: 2,
        },
        quttera: slum_detect::quttera::QutteraReport {
            url: record.url.clone(),
            findings: Vec::new(),
            verdict: slum_detect::quttera::QutteraVerdict::Clean,
        },
        blacklisted_domain: None,
        needed_content_upload: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_study() -> Study {
        Study::run(&StudyConfig { seed: 77, crawl_scale: 0.0003, domain_scale: 0.03 })
    }

    #[test]
    fn study_produces_all_nine_rows() {
        let study = tiny_study();
        let t1 = study.table1();
        assert_eq!(t1.rows.len(), 9);
        for row in &t1.rows {
            assert!(row.crawled >= 40, "{}: {}", row.exchange, row.crawled);
            assert_eq!(
                row.crawled,
                row.self_referrals + row.popular_referrals + row.regular,
                "{} partition",
                row.exchange
            );
        }
    }

    #[test]
    fn overall_malice_rate_in_paper_ballpark() {
        let study = tiny_study();
        let rate = study.table1().overall_malicious_fraction();
        // Paper: 26.7%. Small crawls are noisy; assert the band.
        assert!((0.15..0.45).contains(&rate), "overall malice rate {rate}");
    }

    #[test]
    fn outcomes_align_with_records() {
        let study = tiny_study();
        assert_eq!(study.store.len(), study.outcomes.len());
        assert_eq!(study.store.len(), study.referrals.len());
    }

    #[test]
    fn self_and_popular_referrals_never_malicious() {
        let study = tiny_study();
        for (outcome, class) in study.outcomes.iter().zip(&study.referrals) {
            if *class != ReferralClass::Regular {
                assert!(!outcome.malicious);
            }
        }
    }

    #[test]
    fn fig2_matches_table1() {
        let study = tiny_study();
        let t1 = study.table1();
        let bars = study.fig2();
        for (row, bar) in t1.rows.iter().zip(&bars) {
            assert_eq!(row.exchange, bar.exchange);
            assert_eq!(row.malicious, bar.malicious);
            assert_eq!(row.regular, bar.benign + bar.malicious);
        }
    }

    #[test]
    fn fig3_totals_match_table1() {
        let study = tiny_study();
        let t1 = study.table1();
        for (series, row) in study.fig3().iter().zip(&t1.rows) {
            assert_eq!(series.exchange, row.exchange);
            assert_eq!(series.total_malicious(), row.malicious);
            assert_eq!(series.len() as u64, row.regular);
        }
    }

    #[test]
    fn table3_counts_match_total_malicious() {
        let study = tiny_study();
        let counts = study.table3();
        let total_from_table1: u64 = study.table1().rows.iter().map(|r| r.malicious).sum();
        assert_eq!(counts.total_malicious, total_from_table1);
        let sum: u64 = crate::categorize::Category::ALL.iter().map(|c| counts.count(*c)).sum();
        assert_eq!(sum, counts.total_malicious);
    }
}
