//! The end-to-end study runner: build the ecosystem, crawl, scan,
//! analyze — everything the paper's evaluation reports, in one object.
//!
//! Every run carries a [`slum_obs::Registry`]: the phases record named
//! spans, the crawler and scan workers buffer counters locally and
//! merge them at phase end, and [`Study::metrics`] exposes the result
//! as a [`MetricsSnapshot`]. All counters and gauges are deterministic
//! for a fixed seed — identical for every scan worker count — so tests
//! pin them; only span/histogram wall-clock varies per machine.

use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use slum_crawler::{
    crawl_all_resilient, crawl_all_segmented, crawl_all_streaming, replay_restored_loads,
    CrawlFaultProfile, CrawlHealth, CrawlRecord, RecordChunk, RecordStore,
};
use slum_exchange::TrafficSource;
use slum_obs::{LocalMetrics, MetricsSnapshot, Registry};
use slum_websim::SyntheticWeb;

use crate::artifact::ArtifactKind;
use crate::breakdown::{ContentBreakdown, DomainRow, TldBreakdown};
use crate::checkpoint::{CheckpointError, CheckpointHeader, CheckpointStore, CkptStats};
use crate::case_studies;
use crate::diskfault::DiskFaultProfile;
use crate::categorize::CategoryCounts;
use crate::filter::{ReferralClass, ReferralFilter};
use slum_detect::fault::{FaultPlan, FaultProfile, ScanService};

use crate::redirects::{ChainExhibit, RedirectHistogram};
use crate::report::{Fig2Bar, Table1};
use slum_js::sandbox::JsEngine;

use crate::scanpipe::{
    effective_scan_workers, scan_key, FaultLog, ScanCaches, ScanOutcome, ScanPipeline,
    VerdictSource, DEFAULT_SCAN_CHUNK, DEFAULT_SERIAL_SCAN_THRESHOLD,
};
use crate::shortened::ShortenedRow;
use crate::substrate::{build_substrate, BuiltSubstrate, SourceMeta, Substrate};
use crate::temporal::CumulativeSeries;

/// Study configuration.
///
/// Construct via [`StudyConfig::builder`] to get validation (worker
/// counts, scale ranges); the fields stay public for struct-literal
/// compatibility, but the builder is the supported path.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// Master seed.
    pub seed: u64,
    /// Fraction of the paper's per-exchange crawl volumes to replay
    /// (1.0 = the full 1,003,087 visits; the default keeps CI-sized
    /// runs fast while preserving every shape).
    pub crawl_scale: f64,
    /// Fraction of the paper's per-exchange domain pools to install.
    pub domain_scale: f64,
    /// Worker threads for the scan phase. `1` scans serially (the
    /// historical behaviour); the default is the machine's available
    /// parallelism. Results are identical for every worker count.
    pub scan_workers: usize,
    /// Fault-injection profile for the detection services. The default
    /// is [`FaultProfile::none`] — inert, so fault injection is
    /// strictly opt-in and fault-free runs stay bit-identical to the
    /// pre-fault-layer pipeline.
    pub fault_profile: FaultProfile,
    /// Lifecycle-fault profile for the crawl phase (exchange outages,
    /// bans, CAPTCHA lockouts, permanent shutdowns, session drops). The
    /// default is [`CrawlFaultProfile::none`] — inert and RNG-neutral,
    /// so default runs stay bit-identical to the pre-resilience crawler.
    pub crawl_fault_profile: CrawlFaultProfile,
    /// Storage-fault profile for checkpoint writes (torn/short writes,
    /// bit-flips, simulated `ENOSPC`) on the checkpointed run paths.
    /// The default is [`DiskFaultProfile::none`] — inert and RNG-free,
    /// and even armed profiles never change study results: corrupt
    /// generations are quarantined at resume and the lost rounds
    /// re-crawled deterministically.
    pub disk_fault_profile: DiskFaultProfile,
    /// Segment budget (surf slots per exchange) between crawl
    /// checkpoints on the checkpointed run paths. `None` writes a
    /// single checkpoint when the crawl completes. Segment boundaries
    /// never affect results — only checkpoint file cadence.
    pub checkpoint_every: Option<u64>,
    /// Scan work-unit size: records per chunk pulled by each parallel
    /// scan worker on the barrier path, and surf slots per streamed
    /// record chunk on the overlapped path. Chunk size never affects
    /// results — only scheduling granularity.
    pub scan_chunk: usize,
    /// Corpus size (regular records) below which the scan phase runs
    /// serially regardless of `scan_workers` — thread spawn overhead
    /// and cold shared caches make small parallel scans *slower* than
    /// serial. Set to 0 to always honor `scan_workers`.
    pub serial_scan_threshold: usize,
    /// Overlap the crawl and scan phases: crawl workers stream
    /// sequence-numbered record chunks through a bounded channel and
    /// scan workers consume them while the crawl is still running.
    /// Results are bit-identical to the phase-barrier path. Mutually
    /// exclusive with `checkpoint_every`; a non-inert `fault_profile`
    /// forces the barrier path (the fault plan needs the full corpus)
    /// and counts `scan.pipeline.fault_fallback`.
    pub overlap_scan: bool,
    /// JavaScript engine for the scan phase's sandboxed execution: the
    /// bytecode VM (default, with the shared compiled-module cache) or
    /// the tree-walking interpreter (the differential oracle). Scan
    /// output is bit-identical either way; only throughput and the
    /// `js.vm.*` counters differ.
    pub js_engine: JsEngine,
    /// Which traffic ecosystem to crawl. The default
    /// ([`Substrate::Exchange`]) is bit-identical to the pre-substrate
    /// pipeline; `AdNet` and `Torrent` swap in the ad-network and
    /// torrent ecosystems behind the same crawl/scan/artifact path.
    pub substrate: Substrate,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            seed: 2016,
            crawl_scale: 0.001,
            domain_scale: 0.05,
            scan_workers: default_scan_workers(),
            fault_profile: FaultProfile::none(),
            crawl_fault_profile: CrawlFaultProfile::none(),
            disk_fault_profile: DiskFaultProfile::none(),
            checkpoint_every: None,
            scan_chunk: DEFAULT_SCAN_CHUNK,
            serial_scan_threshold: DEFAULT_SERIAL_SCAN_THRESHOLD,
            overlap_scan: false,
            js_engine: JsEngine::default(),
            substrate: Substrate::default(),
        }
    }
}

impl StudyConfig {
    /// Starts a validated configuration builder seeded with the
    /// defaults.
    pub fn builder() -> StudyConfigBuilder {
        StudyConfigBuilder { config: StudyConfig::default() }
    }

    /// The identity of the synthetic web this config builds plus the
    /// JS engine scanning it — everything a cached scan result depends
    /// on. Two configs with equal fingerprints may share one
    /// [`ScanCaches`] (the slum-serve daemon's sharing key): every
    /// cached value is a pure function of `(web, key)`, so equal webs
    /// mean bit-identical cache entries. Worker counts, chunk sizes,
    /// fault profiles and checkpoint cadence are deliberately excluded —
    /// they never change what a cache entry contains.
    pub fn cache_fingerprint(&self) -> String {
        format!(
            "seed={}&crawl_ppm={}&domain_ppm={}&substrate={}&js={}",
            self.seed,
            crate::checkpoint::scale_ppm(self.crawl_scale),
            crate::checkpoint::scale_ppm(self.domain_scale),
            self.substrate.name(),
            self.js_engine.name(),
        )
    }
}

/// A validating builder for [`StudyConfig`].
///
/// ```
/// use malware_slums::study::StudyConfig;
///
/// let config = StudyConfig::builder()
///     .seed(7)
///     .crawl_scale(0.0005)
///     .scan_workers(2)
///     .build()
///     .expect("valid config");
/// assert_eq!(config.seed, 7);
/// assert!(StudyConfig::builder().scan_workers(0).build().is_err());
/// ```
#[derive(Debug, Clone)]
pub struct StudyConfigBuilder {
    config: StudyConfig,
}

impl StudyConfigBuilder {
    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the crawl-volume scale.
    pub fn crawl_scale(mut self, scale: f64) -> Self {
        self.config.crawl_scale = scale;
        self
    }

    /// Sets the domain-pool scale.
    pub fn domain_scale(mut self, scale: f64) -> Self {
        self.config.domain_scale = scale;
        self
    }

    /// Sets the scan-phase worker count.
    pub fn scan_workers(mut self, workers: usize) -> Self {
        self.config.scan_workers = workers;
        self
    }

    /// Sets the fault-injection profile (validated at [`Self::build`]).
    pub fn fault_profile(mut self, profile: FaultProfile) -> Self {
        self.config.fault_profile = profile;
        self
    }

    /// Sets the crawl-phase lifecycle-fault profile (validated at
    /// [`Self::build`]).
    pub fn crawl_fault_profile(mut self, profile: CrawlFaultProfile) -> Self {
        self.config.crawl_fault_profile = profile;
        self
    }

    /// Sets the checkpoint storage-fault profile (validated at
    /// [`Self::build`]).
    pub fn disk_fault_profile(mut self, profile: DiskFaultProfile) -> Self {
        self.config.disk_fault_profile = profile;
        self
    }

    /// Sets the crawl checkpoint segment budget, in surf slots per
    /// exchange between checkpoint writes.
    pub fn checkpoint_every(mut self, slots: u64) -> Self {
        self.config.checkpoint_every = Some(slots);
        self
    }

    /// Sets the scan work-unit / streamed-chunk size (validated at
    /// [`Self::build`]; must be at least 1).
    pub fn scan_chunk(mut self, records: usize) -> Self {
        self.config.scan_chunk = records;
        self
    }

    /// Sets the corpus size below which the scan phase runs serially
    /// (0 always honors `scan_workers`).
    pub fn serial_scan_threshold(mut self, records: usize) -> Self {
        self.config.serial_scan_threshold = records;
        self
    }

    /// Enables or disables the overlapped (streaming) crawl→scan
    /// pipeline (validated at [`Self::build`]; incompatible with
    /// checkpointing).
    pub fn overlap_scan(mut self, overlap: bool) -> Self {
        self.config.overlap_scan = overlap;
        self
    }

    /// Selects the scan-phase JavaScript engine.
    pub fn js_engine(mut self, engine: JsEngine) -> Self {
        self.config.js_engine = engine;
        self
    }

    /// Selects the scan-phase JavaScript engine from its CLI name
    /// (validated immediately: `vm`/`bytecode` or
    /// `interp`/`interpreter`/`tree-walk`/`treewalk`).
    pub fn js_engine_name(mut self, name: &str) -> Result<Self, ConfigError> {
        match JsEngine::parse(name) {
            Some(engine) => {
                self.config.js_engine = engine;
                Ok(self)
            }
            None => Err(ConfigError::UnknownJsEngine { name: name.to_string() }),
        }
    }

    /// Selects the traffic substrate.
    pub fn substrate(mut self, substrate: Substrate) -> Self {
        self.config.substrate = substrate;
        self
    }

    /// Selects the traffic substrate from its CLI name (validated
    /// immediately: `exchange`, `adnet`, or `torrent`).
    pub fn substrate_name(mut self, name: &str) -> Result<Self, ConfigError> {
        match Substrate::parse(name) {
            Some(substrate) => {
                self.config.substrate = substrate;
                Ok(self)
            }
            None => Err(ConfigError::UnknownSubstrate { name: name.to_string() }),
        }
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Rejects a zero worker count and non-positive or non-finite
    /// scales — inputs the pipeline previously accepted silently (a
    /// `scan_workers: 0` used to be clamped to 1 deep inside the scan
    /// phase, hiding the caller's bug).
    pub fn build(self) -> Result<StudyConfig, ConfigError> {
        if self.config.scan_workers == 0 {
            return Err(ConfigError::ZeroScanWorkers);
        }
        for (field, value) in [
            ("crawl_scale", self.config.crawl_scale),
            ("domain_scale", self.config.domain_scale),
        ] {
            if !value.is_finite() || value <= 0.0 {
                return Err(ConfigError::NonPositiveScale { field, value });
            }
        }
        if let Err(reason) = self.config.fault_profile.validate() {
            return Err(ConfigError::InvalidFaultProfile { reason });
        }
        if let Err(reason) = self.config.crawl_fault_profile.validate() {
            return Err(ConfigError::InvalidCrawlFaultProfile { reason });
        }
        if let Err(reason) = self.config.disk_fault_profile.validate() {
            return Err(ConfigError::InvalidDiskFaultProfile { reason });
        }
        if self.config.checkpoint_every == Some(0) {
            return Err(ConfigError::ZeroCheckpointInterval);
        }
        if self.config.scan_chunk == 0 {
            return Err(ConfigError::ZeroScanChunk);
        }
        if self.config.overlap_scan && self.config.checkpoint_every.is_some() {
            return Err(ConfigError::OverlapWithCheckpoint);
        }
        Ok(self.config)
    }
}

/// Why a [`StudyConfigBuilder`] rejected its inputs.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `scan_workers` was zero — the scan phase needs at least one
    /// worker.
    ZeroScanWorkers,
    /// A scale was zero, negative, or not finite.
    NonPositiveScale {
        /// Which scale field was invalid.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The fault profile's parameters were inconsistent (see
    /// [`FaultProfile::validate`]).
    InvalidFaultProfile {
        /// Human-readable description of the first invalid field.
        reason: String,
    },
    /// The crawl-fault profile's parameters were inconsistent (see
    /// [`CrawlFaultProfile::validate`]).
    InvalidCrawlFaultProfile {
        /// Human-readable description of the first invalid field.
        reason: String,
    },
    /// The checkpoint storage-fault profile's parameters were
    /// inconsistent (see [`DiskFaultProfile::validate`]).
    InvalidDiskFaultProfile {
        /// Human-readable description of the first invalid field.
        reason: String,
    },
    /// `checkpoint_every` was zero — a segment must advance the crawl.
    ZeroCheckpointInterval,
    /// `scan_chunk` was zero — a work unit must hold at least one
    /// record.
    ZeroScanChunk,
    /// `overlap_scan` was combined with `checkpoint_every` — the
    /// streaming pipeline never materializes the per-exchange stores a
    /// crawl checkpoint persists.
    OverlapWithCheckpoint,
    /// The JS engine name did not parse (see
    /// [`slum_js::sandbox::JsEngine::parse`]).
    UnknownJsEngine {
        /// The unrecognized name.
        name: String,
    },
    /// The substrate name did not parse (see [`Substrate::parse`]).
    UnknownSubstrate {
        /// The unrecognized name.
        name: String,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroScanWorkers => {
                write!(f, "scan_workers must be at least 1")
            }
            ConfigError::NonPositiveScale { field, value } => {
                write!(f, "{field} must be a positive finite number, got {value}")
            }
            ConfigError::InvalidFaultProfile { reason } => {
                write!(f, "invalid fault profile: {reason}")
            }
            ConfigError::InvalidCrawlFaultProfile { reason } => {
                write!(f, "invalid crawl-fault profile: {reason}")
            }
            ConfigError::InvalidDiskFaultProfile { reason } => {
                write!(f, "invalid disk-fault profile: {reason}")
            }
            ConfigError::ZeroCheckpointInterval => {
                write!(f, "checkpoint_every must be at least 1 surf slot")
            }
            ConfigError::ZeroScanChunk => {
                write!(f, "scan_chunk must be at least 1 record")
            }
            ConfigError::OverlapWithCheckpoint => {
                write!(f, "overlap_scan cannot be combined with crawl checkpointing")
            }
            ConfigError::UnknownJsEngine { name } => {
                write!(f, "unknown JS engine {name:?} (expected vm or interp)")
            }
            ConfigError::UnknownSubstrate { name } => {
                write!(f, "unknown substrate {name:?} (expected exchange, adnet, or torrent)")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// The machine's available parallelism (used as the default scan worker
/// count), falling back to 4 where it cannot be queried.
pub fn default_scan_workers() -> usize {
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(4)
}

/// Wall-clock spent in each phase of [`Study::run_timed`].
///
/// Superseded by the `phase.*` spans in [`Study::metrics`] — this
/// struct is now derived from those spans and kept for callers that
/// predate the observability layer.
#[derive(Debug, Clone, Copy)]
pub struct PhaseTimings {
    /// Web population + exchange construction.
    pub build: std::time::Duration,
    /// Parallel crawl of the nine exchanges.
    pub crawl: std::time::Duration,
    /// Referral classification + the (possibly parallel) scan phase.
    pub scan: std::time::Duration,
    /// Scan workers actually used.
    pub scan_workers: usize,
}

/// A completed study: the corpus, verdicts, and every derived artifact.
pub struct Study {
    /// The synthetic web (with its oracle and shortener registry).
    pub web: SyntheticWeb,
    /// The crawl corpus.
    pub store: RecordStore,
    /// Scan outcome per record (aligned with `store.records()`).
    pub outcomes: Vec<ScanOutcome>,
    /// Referral class per record (aligned).
    pub referrals: Vec<ReferralClass>,
    /// Per-exchange crawl-health logs (what the lifecycle faults cost
    /// each exchange's crawl; all-clean under an inert profile).
    pub health: Vec<CrawlHealth>,
    /// Per-source metadata for the substrate that ran, in crawl input
    /// order — what the artifact layer iterates instead of a
    /// substrate-specific profile table.
    pub sources: Vec<SourceMeta>,
    config: StudyConfig,
    obs: Registry,
}

/// How the crawl phase of [`Study::run_pipeline`] executes.
enum CrawlMode<'a> {
    /// In-memory crawl, no checkpoint I/O (the historical path).
    Direct,
    /// Segmented crawl writing a checkpoint file after every round.
    Checkpointed {
        /// Checkpoint directory.
        dir: &'a Path,
        /// Restore the latest checkpoint in `dir` before crawling.
        resume: bool,
        /// Abandon the run after this many rounds (simulated crash).
        kill_after_round: Option<u64>,
        /// When every generation proves corrupt at resume, restart the
        /// crawl from scratch instead of failing — the cooperative
        /// scheduler's stance (a wiped checkpoint dir costs progress,
        /// never the study). Explicit `resume_from` stays strict.
        fallback_fresh: bool,
    },
}

/// Crawl-resume bookkeeping for the `crawl.resume.*` counters.
#[derive(Debug, Clone, Copy, Default)]
struct ResumeStats {
    /// Segment rounds restored from the checkpoint.
    segments_restored: u64,
    /// Records restored from the checkpoint.
    records_restored: u64,
    /// Restored records whose browser loads were replayed onto the
    /// rebuilt web to reconstruct crawl-phase side effects (shortener
    /// hit statistics).
    loads_replayed: u64,
}

impl Study {
    /// Runs the full pipeline.
    pub fn run(config: &StudyConfig) -> Study {
        match Study::run_pipeline(config, CrawlMode::Direct, None) {
            Ok(Some(study)) => study,
            Ok(None) => unreachable!("direct runs are never killed"),
            Err(e) => unreachable!("direct runs do no checkpoint I/O: {e}"),
        }
    }

    /// Runs the full pipeline with crawl checkpointing: after every
    /// `checkpoint_every` surf slots (per exchange), the complete crawl
    /// state is written to `dir` as a checksummed checkpoint file.
    ///
    /// # Errors
    ///
    /// Propagates checkpoint I/O and serialization failures.
    pub fn run_checkpointed(config: &StudyConfig, dir: &Path) -> Result<Study, CheckpointError> {
        let mode = CrawlMode::Checkpointed {
            dir,
            resume: false,
            kill_after_round: None,
            fallback_fresh: false,
        };
        Ok(Study::run_pipeline(config, mode, None)?.expect("unkilled runs complete"))
    }

    /// Like [`Study::run_checkpointed`], but abandons the run after
    /// `kill_after_round` checkpoint rounds — a deterministic stand-in
    /// for killing the process mid-crawl. Returns `None` when the kill
    /// fired before the crawl finished (the checkpoints remain in
    /// `dir`), or the completed study when the crawl finished first.
    ///
    /// # Errors
    ///
    /// Propagates checkpoint I/O and serialization failures.
    pub fn run_to_checkpoint(
        config: &StudyConfig,
        dir: &Path,
        kill_after_round: u64,
    ) -> Result<Option<Study>, CheckpointError> {
        let mode = CrawlMode::Checkpointed {
            dir,
            resume: false,
            kill_after_round: Some(kill_after_round),
            fallback_fresh: false,
        };
        Study::run_pipeline(config, mode, None)
    }

    /// Resumes an interrupted run from the latest checkpoint in `dir`
    /// and completes the study (continuing to write checkpoints). The
    /// result is bit-identical to a run that was never interrupted;
    /// only the `crawl.resume.*` bookkeeping counters differ.
    ///
    /// # Errors
    ///
    /// Fails on missing/corrupt checkpoints and on configuration
    /// mismatches between the checkpoint and `config`.
    pub fn resume_from(config: &StudyConfig, dir: &Path) -> Result<Study, CheckpointError> {
        let mode = CrawlMode::Checkpointed {
            dir,
            resume: true,
            kill_after_round: None,
            fallback_fresh: false,
        };
        Ok(Study::run_pipeline(config, mode, None)?.expect("unkilled runs complete"))
    }

    /// One cooperative scheduling slice of a checkpointed study: crawls
    /// at most `rounds` further checkpoint rounds (resuming from the
    /// latest checkpoint in `dir` when one exists, starting fresh
    /// otherwise), then yields. Returns `None` while the crawl is
    /// unfinished — call again to advance — or the completed study once
    /// the crawl ends inside the slice, scanned through `shared_caches`
    /// when given (see [`ScanCaches`] for when sharing is sound).
    ///
    /// Because every slice funnels through the same segment driver as
    /// batch runs, the completed study is bit-identical to
    /// [`Study::run_checkpointed`] with the same config, no matter how
    /// the slices interleave with other studies' — this is the
    /// scheduling primitive the slum-serve daemon multiplexes tenants
    /// with.
    ///
    /// # Errors
    ///
    /// Propagates checkpoint I/O, serialization and config-mismatch
    /// failures.
    pub fn advance_checkpointed(
        config: &StudyConfig,
        dir: &Path,
        rounds: u64,
        shared_caches: Option<Arc<ScanCaches>>,
    ) -> Result<Option<Study>, CheckpointError> {
        let resume = !CheckpointStore::open(dir)?.list()?.is_empty();
        let mode =
            CrawlMode::Checkpointed {
                dir,
                resume,
                kill_after_round: Some(rounds),
                fallback_fresh: true,
            };
        Study::run_pipeline(config, mode, shared_caches)
    }

    fn run_pipeline(
        config: &StudyConfig,
        mode: CrawlMode<'_>,
        shared_caches: Option<Arc<ScanCaches>>,
    ) -> Result<Option<Study>, CheckpointError> {
        let obs = Registry::new();
        record_config(&obs, config);

        // 1. Build the configured substrate: its web population plus
        //    the traffic sources, boxed behind the `TrafficSource`
        //    contract. Each source gets its *own* planned crawl span so
        //    time-boxed campaigns (manual-surf bursts, malvertising
        //    flights) land inside the crawl window rather than after it
        //    ends.
        let BuiltSubstrate { web, sources: mut traffic, meta, filter, steps } = {
            let _span = obs.span("phase.build");
            build_substrate(config)
        };
        let planned: u64 = steps.values().sum();

        // 2. Crawl every source in parallel; each crawl returns its
        //    per-worker counter buffer, merged here at phase end.
        //    Every mode funnels through the same segment driver, so the
        //    records are bit-identical across modes, checkpoint cadence
        //    and resume points.
        let step_fn = |x: &Box<dyn TrafficSource + Send>| {
            *steps.get(x.name()).expect("known source")
        };

        // Overlapped (streaming) pipeline: only on the direct path —
        // checkpointing needs the per-exchange stores the stream never
        // materializes — and only with an inert scan-fault profile,
        // because a fault plan is compiled from the *complete* corpus.
        // Ineligible overlap requests fall through to the barrier path
        // below and are counted as `scan.pipeline.fault_fallback`.
        if config.overlap_scan
            && matches!(mode, CrawlMode::Direct)
            && config.fault_profile.is_inert()
        {
            let (store, outcomes, referrals, health) = run_overlapped(
                config,
                &obs,
                &web,
                &mut traffic,
                &step_fn,
                &filter,
                planned,
                shared_caches,
            );
            record_substrate_tallies(&obs, config.substrate, meta.len(), store.len() as u64);
            return Ok(Some(Study {
                web,
                store,
                outcomes,
                referrals,
                health,
                sources: meta,
                config: config.clone(),
                obs,
            }));
        }

        let (store, health) = {
            let _span = obs.span("phase.crawl");
            let (store, stats, health, resume_stats) = match mode {
                CrawlMode::Direct => {
                    let (store, stats, health) = crawl_all_resilient(
                        &web,
                        &mut traffic,
                        config.seed,
                        &config.crawl_fault_profile,
                        step_fn,
                    );
                    (store, stats, health, ResumeStats::default())
                }
                CrawlMode::Checkpointed { dir, resume, kill_after_round, fallback_fresh } => {
                    let ckpt = CheckpointStore::open(dir)?
                        .with_disk_faults(config.disk_fault_profile.clone(), config.seed);
                    let (resume_state, resume_stats) = if resume {
                        match ckpt.load_latest() {
                            Ok((header, state)) => {
                                header.verify(config)?;
                                // The web above was rebuilt from seed;
                                // replay the restored records' browser
                                // loads so the crawl-phase web mutations
                                // (shortener hits) survive the simulated
                                // crash.
                                let loads_replayed =
                                    replay_restored_loads(&web, &traffic, &state);
                                let stats = ResumeStats {
                                    segments_restored: state.round,
                                    records_restored: state.records_total(),
                                    loads_replayed,
                                };
                                (Some(state), stats)
                            }
                            Err(CheckpointError::Quarantined { .. }) if fallback_fresh => {
                                // Every generation was corrupt and is
                                // now quarantined: restart the crawl
                                // from scratch. Deterministic re-crawl
                                // makes this cost progress, not
                                // correctness.
                                (None, ResumeStats::default())
                            }
                            Err(e) => return Err(e),
                        }
                    } else {
                        (None, ResumeStats::default())
                    };
                    let header = CheckpointHeader::for_config(config);
                    let outcome = crawl_all_segmented(
                        &web,
                        &mut traffic,
                        config.seed,
                        &config.crawl_fault_profile,
                        step_fn,
                        config.checkpoint_every.unwrap_or(u64::MAX),
                        resume_state,
                        kill_after_round,
                        // An injected ENOSPC is a skipped checkpoint (a
                        // cadence hole the next round's save closes),
                        // never a crawl abort.
                        &mut |_round, state| match ckpt.save(&header, state) {
                            Ok(_) | Err(CheckpointError::DiskFull { .. }) => Ok(()),
                            Err(e) => Err(e),
                        },
                    )?;
                    record_ckpt_tallies(&obs, ckpt.stats());
                    if !outcome.finished {
                        // Simulated crash: the checkpoints are on disk,
                        // the study is abandoned here.
                        return Ok(None);
                    }
                    let (store, stats, health) = outcome.state.finish();
                    (store, stats, health, resume_stats)
                }
            };
            for (_, s) in &stats {
                obs.merge_local(&s.metrics);
            }
            record_crawl_fault_tallies(&obs, &health, &resume_stats);
            (store, health)
        };
        record_substrate_tallies(&obs, config.substrate, meta.len(), store.len() as u64);

        // 3. Classify referrals, then scan every *regular* record
        //    across the configured worker count.
        let (outcomes, referrals) = {
            let _span = obs.span("phase.scan");
            let referrals: Vec<ReferralClass> =
                store.records().iter().map(|r| filter.classify(r)).collect();
            record_filter_counts(&obs, &referrals);

            let mut pipeline = ScanPipeline::new(&web).with_js_engine(config.js_engine);
            if let Some(caches) = shared_caches {
                pipeline = pipeline.with_shared_caches(caches);
            }
            if !config.fault_profile.is_inert() {
                // Compile the fault schedule from the *corpus* (regular
                // records in virtual-arrival order), never from scan
                // scheduling — the determinism contract across worker
                // counts hangs on this.
                let requests: Vec<(String, u64)> = store
                    .records()
                    .iter()
                    .zip(&referrals)
                    .filter(|(_, class)| **class == ReferralClass::Regular)
                    .map(|(record, _)| (scan_key(record), record.at))
                    .collect();
                let plan = FaultPlan::compile(&config.fault_profile, config.seed, &requests);
                pipeline = pipeline.with_fault_plan(plan);
            }
            let (outcomes, scan_workers) =
                scan_phase(&pipeline, store.records(), &referrals, config, &obs);
            obs.gauge("scan.workers").set(scan_workers as i64);
            record_cache_stats(&obs, &pipeline);
            record_js_vm_stats(&obs, &pipeline);
            record_outcome_tallies(&obs, &outcomes, &referrals);
            record_fault_tallies(&obs, &outcomes, &referrals, pipeline.fault_plan());
            record_pipeline_tallies(
                &obs,
                &PipelineTally {
                    chunks: 0,
                    records_streamed: 0,
                    // An overlap request that reached the barrier path
                    // was forced here (checkpointing or a fault plan).
                    fault_fallback: u64::from(config.overlap_scan),
                    overlapped: false,
                },
            );
            (outcomes, referrals)
        };

        Ok(Some(Study {
            web,
            store,
            outcomes,
            referrals,
            health,
            sources: meta,
            config: config.clone(),
            obs,
        }))
    }

    /// Runs the full pipeline, reporting per-phase wall-clock timings
    /// (derived from the `phase.*` spans in [`Study::metrics`]).
    pub fn run_timed(config: &StudyConfig) -> (Study, PhaseTimings) {
        let study = Study::run(config);
        let snapshot = study.metrics();
        let timings = PhaseTimings {
            build: snapshot.span_duration("phase.build"),
            crawl: snapshot.span_duration("phase.crawl"),
            scan: snapshot.span_duration("phase.scan"),
            scan_workers: snapshot.gauge("scan.workers").max(1) as usize,
        };
        (study, timings)
    }

    /// The configuration the study ran with.
    pub fn config(&self) -> &StudyConfig {
        &self.config
    }

    /// An immutable snapshot of every metric the pipeline recorded:
    /// crawl counters, filter partition counts, scan/cache/label
    /// tallies (all deterministic per seed) plus phase spans and
    /// latency histograms (wall-clock).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.obs.snapshot()
    }

    /// Regular-record mask (aligned with records).
    pub fn regular_mask(&self) -> Vec<bool> {
        self.referrals.iter().map(|c| *c == ReferralClass::Regular).collect()
    }

    /// Regular records paired with their outcomes, borrowed from the
    /// study (no record/outcome cloning).
    pub fn regular_pairs(&self) -> Vec<(&CrawlRecord, &ScanOutcome)> {
        self.store
            .records()
            .iter()
            .zip(&self.outcomes)
            .zip(&self.referrals)
            .filter(|(_, class)| **class == ReferralClass::Regular)
            .map(|(pair, _)| pair)
            .collect()
    }

    /// Table I: per-exchange crawl statistics.
    ///
    /// Thin wrapper over [`Study::artifact`]; prefer
    /// [`ArtifactKind::Table1`] in new code.
    pub fn table1(&self) -> Table1 {
        self.artifact(ArtifactKind::Table1).into_table1().expect("Table1 artifact")
    }

    /// Table II: per-exchange domain statistics (wrapper over
    /// [`ArtifactKind::Table2`]).
    pub fn table2(&self) -> Vec<DomainRow> {
        self.artifact(ArtifactKind::Table2).into_table2().expect("Table2 artifact")
    }

    /// Table III: malware categorization counts (wrapper over
    /// [`ArtifactKind::Table3`]).
    pub fn table3(&self) -> CategoryCounts {
        self.artifact(ArtifactKind::Table3).into_table3().expect("Table3 artifact")
    }

    /// Table IV: malicious shortened-URL statistics (wrapper over
    /// [`ArtifactKind::Table4`]).
    pub fn table4(&self) -> Vec<ShortenedRow> {
        self.artifact(ArtifactKind::Table4).into_table4().expect("Table4 artifact")
    }

    /// Figure 2 bars (wrapper over [`ArtifactKind::Fig2`]).
    pub fn fig2(&self) -> Vec<Fig2Bar> {
        self.artifact(ArtifactKind::Fig2).into_fig2().expect("Fig2 artifact")
    }

    /// Figure 3: per-exchange cumulative malicious series (wrapper over
    /// [`ArtifactKind::Fig3`]).
    pub fn fig3(&self) -> Vec<CumulativeSeries> {
        self.artifact(ArtifactKind::Fig3).into_fig3().expect("Fig3 artifact")
    }

    /// Figure 4 exhibit: the longest malicious redirect chain observed
    /// (wrapper over [`ArtifactKind::Fig4`]).
    pub fn fig4(&self) -> Option<ChainExhibit> {
        self.artifact(ArtifactKind::Fig4).into_fig4().expect("Fig4 artifact")
    }

    /// Figure 5: redirect-count histogram (wrapper over
    /// [`ArtifactKind::Fig5`]).
    pub fn fig5(&self) -> RedirectHistogram {
        self.artifact(ArtifactKind::Fig5).into_fig5().expect("Fig5 artifact")
    }

    /// Figure 6: TLD breakdown of malicious URLs (wrapper over
    /// [`ArtifactKind::Fig6`]).
    pub fn fig6(&self) -> TldBreakdown {
        self.artifact(ArtifactKind::Fig6).into_fig6().expect("Fig6 artifact")
    }

    /// Figure 7: content-category breakdown of malicious URLs (wrapper
    /// over [`ArtifactKind::Fig7`]).
    pub fn fig7(&self) -> ContentBreakdown {
        self.artifact(ArtifactKind::Fig7).into_fig7().expect("Fig7 artifact")
    }

    /// §V-A case studies: iframe-injection exhibits.
    pub fn iframe_case_studies(&self) -> Vec<case_studies::IframeExhibit> {
        case_studies::iframe_injections(&self.regular_pairs())
    }

    /// §V-B case studies: deceptive downloads.
    pub fn download_case_studies(&self) -> Vec<case_studies::DownloadExhibit> {
        case_studies::deceptive_downloads(&self.regular_pairs())
    }

    /// §V-D case studies: Flash click-jacks.
    pub fn flash_case_studies(&self) -> Vec<case_studies::FlashExhibit> {
        case_studies::flash_clickjacks(&self.web, &self.regular_pairs())
    }

    /// §V-E case studies: false positives.
    pub fn false_positive_case_studies(&self) -> Vec<case_studies::FalsePositiveExhibit> {
        case_studies::false_positives(&self.web, &self.regular_pairs())
    }
}

/// Per-exchange crawl steps at a given scale (minimum 40 so small-scale
/// runs still populate every row).
pub fn steps_for(profile: &slum_exchange::ExchangeProfile, scale: f64) -> u64 {
    ((profile.urls_crawled as f64 * scale).round() as u64).max(40)
}

/// Records configuration echoes as gauges (scales in parts-per-million
/// so they stay integral and deterministic).
fn record_config(obs: &Registry, config: &StudyConfig) {
    obs.gauge("config.seed").set(config.seed as i64);
    obs.gauge("config.scan_workers").set(config.scan_workers as i64);
    obs.gauge("config.crawl_scale_ppm").set((config.crawl_scale * 1e6).round() as i64);
    obs.gauge("config.domain_scale_ppm").set((config.domain_scale * 1e6).round() as i64);
    obs.gauge("config.checkpoint_every").set(config.checkpoint_every.unwrap_or(0) as i64);
    obs.gauge("config.scan_chunk").set(config.scan_chunk as i64);
    obs.gauge("config.serial_scan_threshold").set(config.serial_scan_threshold as i64);
    obs.gauge("config.overlap").set(i64::from(config.overlap_scan));
    obs.gauge("config.js_engine_vm").set(i64::from(config.js_engine == JsEngine::Vm));
    obs.gauge("config.substrate")
        .set(Substrate::ALL.iter().position(|s| *s == config.substrate).unwrap_or(0) as i64);
}

/// Records the `crawl.substrate.*` counters. Always registered for
/// every substrate name — inactive substrates report explicit zeros
/// (the convention the fault and pipeline counters follow) so CI can
/// grep the snapshot for the full key set regardless of which
/// substrate ran.
fn record_substrate_tallies(obs: &Registry, substrate: Substrate, n_sources: usize, pages: u64) {
    for name in Substrate::NAMES {
        obs.counter(&format!("crawl.substrate.{name}.pages")).add(0);
        obs.counter(&format!("crawl.substrate.{name}.sources")).add(0);
    }
    let name = substrate.name();
    obs.counter(&format!("crawl.substrate.{name}.pages")).add(pages);
    obs.counter(&format!("crawl.substrate.{name}.sources")).add(n_sources as u64);
}

/// Tallies crawl-phase fault costs from the per-exchange health logs,
/// plus the per-exchange health gauges and resume bookkeeping. Always
/// registered — a fault-free run reports explicit zeros (which CI
/// asserts) rather than absent keys. The `crawl.resume.*` counters are
/// the one deliberate difference between a straight run and an
/// interrupted-then-resumed one; everything else is bit-identical.
fn record_crawl_fault_tallies(obs: &Registry, health: &[CrawlHealth], resume: &ResumeStats) {
    let sum = |f: fn(&CrawlHealth) -> u64| health.iter().map(f).sum::<u64>();
    obs.counter("crawl.faults.injected").add(sum(|h| h.faults_injected));
    obs.counter("crawl.faults.retries").add(sum(|h| h.retries));
    obs.counter("crawl.faults.backoff_nanos").add(sum(|h| h.backoff_nanos));
    obs.counter("crawl.faults.outages").add(sum(|h| h.outage_hits));
    obs.counter("crawl.faults.bans").add(sum(|h| h.ban_hits));
    obs.counter("crawl.faults.captcha_lockouts").add(sum(|h| h.captcha_lockouts));
    obs.counter("crawl.faults.session_drops").add(sum(|h| h.session_drops));
    obs.counter("crawl.faults.lost_steps").add(sum(|h| h.lost_steps));
    obs.counter("crawl.faults.downtime_secs").add(sum(|h| h.downtime_secs));
    obs.counter("crawl.faults.shutdowns")
        .add(health.iter().filter(|h| h.shutdown_at.is_some()).count() as u64);
    obs.counter("crawl.resume.segments_restored").add(resume.segments_restored);
    obs.counter("crawl.resume.records_restored").add(resume.records_restored);
    obs.counter("crawl.resume.replayed_loads").add(resume.loads_replayed);
    for h in health {
        obs.gauge(&format!("crawl.health.{}.lost_steps", h.exchange)).set(h.lost_steps as i64);
        obs.gauge(&format!("crawl.health.{}.downtime_secs", h.exchange))
            .set(h.downtime_secs as i64);
        obs.gauge(&format!("crawl.health.{}.shutdown", h.exchange))
            .set(i64::from(h.shutdown_at.is_some()));
    }
}

/// Tallies the checkpoint store's resilience bookkeeping. Always
/// registered on the checkpointed paths — a fault-free run reports
/// explicit zeros (which CI asserts) rather than absent keys.
/// `ckpt.quarantined` is cumulative over the checkpoint directory's
/// whole history (the store seeds it from `quarantine/` at open, so it
/// survives kill/restart cycles); the remaining counters cover this pipeline
/// invocation. Direct (non-checkpointed) runs record nothing here, the
/// same way they record no `crawl.resume.*` activity.
fn record_ckpt_tallies(obs: &Registry, stats: &CkptStats) {
    obs.counter("ckpt.saves").add(CkptStats::get(&stats.saves));
    obs.counter("ckpt.save.torn").add(CkptStats::get(&stats.torn_writes));
    obs.counter("ckpt.save.short").add(CkptStats::get(&stats.short_writes));
    obs.counter("ckpt.save.bitflip").add(CkptStats::get(&stats.bit_flips));
    obs.counter("ckpt.save.disk_full").add(CkptStats::get(&stats.disk_full));
    obs.counter("ckpt.quarantined").add(CkptStats::get(&stats.quarantined));
    obs.counter("ckpt.rollback").add(CkptStats::get(&stats.rollbacks));
    obs.counter("ckpt.pruned").add(CkptStats::get(&stats.pruned));
}

/// Records the regular-traffic filter partition: records in, and the
/// three classes out.
fn record_filter_counts(obs: &Registry, referrals: &[ReferralClass]) {
    let mut selfs = 0u64;
    let mut populars = 0u64;
    let mut regulars = 0u64;
    for class in referrals {
        match class {
            ReferralClass::SelfReferral => selfs += 1,
            ReferralClass::PopularReferral => populars += 1,
            ReferralClass::Regular => regulars += 1,
        }
    }
    obs.counter("filter.records_in").add(referrals.len() as u64);
    obs.counter("filter.self_referrals").add(selfs);
    obs.counter("filter.popular_referrals").add(populars);
    obs.counter("filter.regular_out").add(regulars);
}

/// Records per-cache lookup/entry/hit counters for the pipeline's three
/// sharded caches.
fn record_cache_stats(obs: &Registry, pipeline: &ScanPipeline<'_>) {
    for (group, stats) in pipeline.cache_stats() {
        obs.counter(&format!("scan.cache.{group}.lookups")).add(stats.lookups);
        obs.counter(&format!("scan.cache.{group}.entries")).add(stats.entries);
        obs.counter(&format!("scan.cache.{group}.hits")).add(stats.hits);
    }
}

/// Records the `js.vm.*` counters from the pipeline's aggregated JS
/// stats. Always registered — a tree-walk run (or a corpus with no
/// scripts) reports explicit zeros rather than absent keys, the same
/// convention the fault and pipeline counters follow. Every counter
/// except `js.vm.compile_nanos` (wall-clock) is deterministic across
/// worker counts: the execution tallies are memoized per distinct
/// sample and the compile count is the module cache's entry set.
/// `compile_nanos` goes to a histogram, the home for wall-clock per the
/// crate's determinism contract.
fn record_js_vm_stats(obs: &Registry, pipeline: &ScanPipeline<'_>) {
    let stats = pipeline.js_vm_stats();
    obs.counter("js.vm.compiles").add(stats.compiles);
    obs.histogram("js.vm.compile_nanos").record(stats.compile_nanos);
    obs.counter("js.vm.module_cache.lookups").add(stats.module_lookups);
    obs.counter("js.vm.module_cache.hits").add(stats.module_hits);
    obs.counter("js.vm.instructions").add(stats.instructions);
    obs.counter("js.vm.budget_exhaustions").add(stats.budget_exhaustions);
}

/// Tallies scan verdicts, blacklist consensus outcomes and per-engine
/// labels over the regular records. Runs serially after the scan phase,
/// so the counts are trivially schedule-independent.
fn record_outcome_tallies(obs: &Registry, outcomes: &[ScanOutcome], referrals: &[ReferralClass]) {
    let mut m = LocalMetrics::new();
    for (outcome, class) in outcomes.iter().zip(referrals) {
        if *class != ReferralClass::Regular {
            continue;
        }
        m.inc(if outcome.malicious { "scan.verdict.malicious" } else { "scan.verdict.benign" });
        if outcome.needed_content_upload {
            m.inc("scan.content_uploads");
        }
        if outcome.blacklisted_domain.is_some() {
            m.inc("scan.blacklist.consensus_hits");
        }
        for (engine, _label) in &outcome.vt.detections {
            m.inc("scan.labels.vt.total");
            m.add_owned(format!("scan.labels.vt.engine.{engine}"), 1);
        }
        for (_engine, label) in &outcome.vt.detections {
            m.add_owned(format!("scan.labels.vt.label.{label}"), 1);
        }
        for finding in &outcome.quttera.findings {
            m.inc("scan.labels.quttera.total");
            m.add_owned(format!("scan.labels.quttera.finding.{finding:?}"), 1);
        }
        m.add_owned(format!("scan.labels.quttera.verdict.{:?}", outcome.quttera.verdict), 1);
    }
    obs.merge_local(&m);
}

/// Tallies fault-layer costs and verdict provenance over the regular
/// records, plus the per-service breaker trajectory from the compiled
/// plan. Runs serially after the scan phase from order-independent
/// per-outcome logs, so every number is identical for every worker
/// count. The counters are always registered — a fault-free run
/// reports explicit zeros (which CI asserts) rather than absent keys.
fn record_fault_tallies(
    obs: &Registry,
    outcomes: &[ScanOutcome],
    referrals: &[ReferralClass],
    plan: Option<&FaultPlan>,
) {
    let mut log = FaultLog::default();
    let mut degraded = 0u64;
    let mut blacklist_only = 0u64;
    let mut unresolved = 0u64;
    for (outcome, class) in outcomes.iter().zip(referrals) {
        if *class != ReferralClass::Regular {
            continue;
        }
        log.injected += outcome.faults.injected;
        log.retries += outcome.faults.retries;
        log.backoff_nanos += outcome.faults.backoff_nanos;
        log.breaker_skips += outcome.faults.breaker_skips;
        match outcome.source {
            VerdictSource::Full => {}
            VerdictSource::Degraded => degraded += 1,
            VerdictSource::BlacklistOnly => blacklist_only += 1,
            VerdictSource::Unresolved => unresolved += 1,
        }
    }
    obs.counter("scan.faults.injected").add(u64::from(log.injected));
    obs.counter("scan.retries").add(u64::from(log.retries));
    obs.counter("scan.backoff_nanos").add(log.backoff_nanos);
    obs.counter("scan.breaker.skips").add(u64::from(log.breaker_skips));
    obs.counter("scan.degraded_verdicts").add(degraded);
    obs.counter("scan.blacklist_only_verdicts").add(blacklist_only);
    obs.counter("scan.unresolved_verdicts").add(unresolved);
    for service in ScanService::ALL {
        let name = service.name();
        let (opens, state) = match plan {
            Some(plan) => {
                (plan.breaker_opens(service), plan.breaker_final_state(service).as_gauge())
            }
            None => (0, 0),
        };
        obs.counter(&format!("scan.breaker.{name}.opens")).add(opens);
        obs.gauge(&format!("scan.breaker.{name}.state")).set(state);
    }
}

/// Scans every Regular record across the effective worker count and
/// splices the results back into record order; Self/Popular referrals
/// get an inert clean outcome so indices stay aligned.
///
/// Worker selection goes through
/// [`effective_scan_workers`] — small corpora run serially (below
/// `config.serial_scan_threshold`) and the count is clamped to the
/// host's parallelism. Parallel work is distributed as
/// `config.scan_chunk`-sized chunks pulled from a shared atomic index,
/// so no worker idles behind one unlucky contiguous stretch; chunks are
/// reassembled in index order, keeping the output bit-identical to the
/// serial path. Each worker buffers its counters in a [`LocalMetrics`]
/// and records per-record latencies into the shared `scan.record_nanos`
/// histogram; the buffers merge into `obs` once the phase ends. Returns
/// the outcomes and the worker count actually used.
fn scan_phase(
    pipeline: &ScanPipeline<'_>,
    records: &[CrawlRecord],
    referrals: &[ReferralClass],
    config: &StudyConfig,
    obs: &Registry,
) -> (Vec<ScanOutcome>, usize) {
    let regular_idx: Vec<usize> = referrals
        .iter()
        .enumerate()
        .filter(|(_, class)| **class == ReferralClass::Regular)
        .map(|(i, _)| i)
        .collect();
    let workers = effective_scan_workers(
        regular_idx.len(),
        config.scan_workers,
        config.serial_scan_threshold,
    );
    let latency = obs.histogram("scan.record_nanos");

    let scan_slice = |chunk: &[usize]| -> (Vec<ScanOutcome>, LocalMetrics) {
        let mut local = LocalMetrics::new();
        let outcomes = chunk
            .iter()
            .map(|&i| {
                let t0 = Instant::now();
                let outcome = pipeline.scan(&records[i]);
                latency.record(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
                local.inc("scan.scans");
                outcome
            })
            .collect();
        (outcomes, local)
    };

    let scanned: Vec<ScanOutcome> = if workers == 1 {
        let (outcomes, local) = scan_slice(&regular_idx);
        obs.merge_local(&local);
        outcomes
    } else {
        let chunk = config.scan_chunk.max(1);
        let n_chunks = regular_idx.len().div_ceil(chunk);
        let next = AtomicUsize::new(0);
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    let scan_slice = &scan_slice;
                    let regular_idx = &regular_idx;
                    scope.spawn(move |_| {
                        let mut parts: Vec<(usize, Vec<ScanOutcome>)> = Vec::new();
                        let mut local = LocalMetrics::new();
                        loop {
                            let c = next.fetch_add(1, Ordering::Relaxed);
                            if c >= n_chunks {
                                break;
                            }
                            let lo = c * chunk;
                            let hi = (lo + chunk).min(regular_idx.len());
                            let (outcomes, chunk_local) = scan_slice(&regular_idx[lo..hi]);
                            local.merge(&chunk_local);
                            parts.push((c, outcomes));
                        }
                        (parts, local)
                    })
                })
                .collect();
            let mut by_chunk: Vec<Option<Vec<ScanOutcome>>> = vec![None; n_chunks];
            for handle in handles {
                let (parts, local) = handle.join().expect("scan worker panicked");
                obs.merge_local(&local);
                for (c, outcomes) in parts {
                    by_chunk[c] = Some(outcomes);
                }
            }
            let mut merged = Vec::with_capacity(regular_idx.len());
            for outcomes in by_chunk {
                merged.extend(outcomes.expect("every chunk scanned exactly once"));
            }
            merged
        })
        .expect("scan scope panicked")
    };

    let mut scanned = scanned.into_iter();
    let outcomes = records
        .iter()
        .zip(referrals)
        .map(|(record, class)| match class {
            ReferralClass::Regular => scanned.next().expect("one scan per regular record"),
            // Self/popular referrals are excluded from analysis; give
            // them an inert clean outcome so indices stay aligned.
            _ => clean_outcome(record),
        })
        .collect();
    (outcomes, workers)
}

/// Capacity of the crawl→scan chunk channel in the overlapped
/// pipeline. Bounds the records in flight between the two sides — at
/// most this many chunks (each at most `scan_chunk` surf slots' worth)
/// plus what each worker holds; a full channel back-pressures the crawl
/// threads instead of buffering the whole corpus.
const PIPELINE_CHANNEL_CAP: usize = 32;

/// What the streaming pipeline did this run — all-zero on the barrier
/// path, so the `scan.pipeline.*` counters stay always-present and
/// deterministic whether or not overlap ran (the same convention the
/// fault and resume counters follow).
struct PipelineTally {
    /// Record chunks streamed crawl→scan.
    chunks: u64,
    /// Records carried by those chunks.
    records_streamed: u64,
    /// 1 when overlap was requested but the barrier path ran instead
    /// (checkpointing or a non-inert scan-fault profile).
    fault_fallback: u64,
    /// Whether the overlapped path actually ran (gauge).
    overlapped: bool,
}

fn record_pipeline_tallies(obs: &Registry, tally: &PipelineTally) {
    obs.counter("scan.pipeline.chunks").add(tally.chunks);
    obs.counter("scan.pipeline.records_streamed").add(tally.records_streamed);
    obs.counter("scan.pipeline.fault_fallback").add(tally.fault_fallback);
    obs.gauge("scan.pipeline.overlap").set(i64::from(tally.overlapped));
}

/// One streamed chunk after scanning, awaiting reassembly.
struct ScannedChunk {
    exchange_index: usize,
    chunk_seq: u64,
    records: Vec<CrawlRecord>,
    referrals: Vec<ReferralClass>,
    outcomes: Vec<ScanOutcome>,
}

/// The overlapped crawl→scan pipeline: one crawl producer (fanning out
/// to one thread per exchange) streams sequence-numbered record chunks
/// through a bounded channel while scan workers consume them, so
/// scanning starts on the first chunk instead of after the last crawl
/// step. Scanned chunks are reassembled in `(exchange_index,
/// chunk_seq)` order, which reproduces the barrier path's merged store
/// exactly — records, referral classes, outcomes and every
/// deterministic counter are bit-identical for all worker counts and
/// chunk sizes.
///
/// The `phase.crawl` span covers the producer and `phase.scan` the
/// whole overlapped region, so their wall-clock now overlaps — the
/// saving the streaming restructure exists to win.
fn run_overlapped<S, F>(
    config: &StudyConfig,
    obs: &Registry,
    web: &SyntheticWeb,
    sources: &mut [S],
    step_fn: &F,
    filter: &ReferralFilter,
    planned: u64,
    shared_caches: Option<Arc<ScanCaches>>,
) -> (RecordStore, Vec<ScanOutcome>, Vec<ReferralClass>, Vec<CrawlHealth>)
where
    S: TrafficSource + Send,
    F: Fn(&S) -> u64 + Sync,
{
    let mut pipeline = ScanPipeline::new(web).with_js_engine(config.js_engine);
    if let Some(caches) = shared_caches {
        pipeline = pipeline.with_shared_caches(caches);
    }
    let latency = obs.histogram("scan.record_nanos");
    // Worker selection needs a corpus size before the corpus exists;
    // the planned surf slots are an exact upper bound on records (and
    // equal to them under an inert crawl-fault profile).
    let scan_workers = effective_scan_workers(
        planned as usize,
        config.scan_workers,
        config.serial_scan_threshold,
    );
    let (tx, rx) = crossbeam::channel::bounded::<RecordChunk>(PIPELINE_CHANNEL_CAP);
    let results: Mutex<Vec<ScannedChunk>> = Mutex::new(Vec::new());

    let (stats, health) = crossbeam::thread::scope(|scope| {
        let _scan_span = obs.span("phase.scan");
        let producer = scope.spawn(move |_| {
            let _span = obs.span("phase.crawl");
            crawl_all_streaming(
                web,
                sources,
                config.seed,
                &config.crawl_fault_profile,
                step_fn,
                config.scan_chunk as u64,
                tx,
            )
        });
        let consumers: Vec<_> = (0..scan_workers)
            .map(|_| {
                let rx = rx.clone();
                let results = &results;
                let pipeline = &pipeline;
                let filter = &filter;
                let latency = &latency;
                scope.spawn(move |_| {
                    let mut local = LocalMetrics::new();
                    while let Ok(chunk) = rx.recv() {
                        let referrals: Vec<ReferralClass> =
                            chunk.records.iter().map(|r| filter.classify(r)).collect();
                        let outcomes: Vec<ScanOutcome> = chunk
                            .records
                            .iter()
                            .zip(&referrals)
                            .map(|(record, class)| {
                                if *class == ReferralClass::Regular {
                                    let t0 = Instant::now();
                                    let outcome = pipeline.scan(record);
                                    latency.record(
                                        u64::try_from(t0.elapsed().as_nanos())
                                            .unwrap_or(u64::MAX),
                                    );
                                    local.inc("scan.scans");
                                    outcome
                                } else {
                                    clean_outcome(record)
                                }
                            })
                            .collect();
                        results.lock().expect("chunk results poisoned").push(ScannedChunk {
                            exchange_index: chunk.exchange_index,
                            chunk_seq: chunk.chunk_seq,
                            records: chunk.records,
                            referrals,
                            outcomes,
                        });
                    }
                    local
                })
            })
            .collect();
        drop(rx);
        let (stats, health) = producer.join().expect("crawl producer panicked");
        for consumer in consumers {
            let local = consumer.join().expect("scan consumer panicked");
            obs.merge_local(&local);
        }
        (stats, health)
    })
    .expect("pipeline scope panicked");

    for (_, s) in &stats {
        obs.merge_local(&s.metrics);
    }
    record_crawl_fault_tallies(obs, &health, &ResumeStats::default());

    let mut chunks = results.into_inner().expect("chunk results poisoned");
    chunks.sort_unstable_by_key(|c| (c.exchange_index, c.chunk_seq));
    let n_chunks = chunks.len() as u64;
    let mut store = RecordStore::new();
    let mut outcomes = Vec::new();
    let mut referrals = Vec::new();
    for chunk in chunks {
        store.extend(chunk.records);
        referrals.extend(chunk.referrals);
        outcomes.extend(chunk.outcomes);
    }

    record_filter_counts(obs, &referrals);
    obs.gauge("scan.workers").set(scan_workers as i64);
    record_cache_stats(obs, &pipeline);
    record_js_vm_stats(obs, &pipeline);
    record_outcome_tallies(obs, &outcomes, &referrals);
    record_fault_tallies(obs, &outcomes, &referrals, None);
    record_pipeline_tallies(
        obs,
        &PipelineTally {
            chunks: n_chunks,
            records_streamed: store.len() as u64,
            fault_fallback: 0,
            overlapped: true,
        },
    );
    (store, outcomes, referrals, health)
}

fn clean_outcome(record: &CrawlRecord) -> ScanOutcome {
    ScanOutcome {
        malicious: false,
        vt: slum_detect::virustotal::VtReport {
            detections: Vec::new(),
            total_engines: 0,
            threshold: 2,
        },
        quttera: slum_detect::quttera::QutteraReport {
            url: record.url.clone(),
            findings: Vec::new(),
            verdict: slum_detect::quttera::QutteraVerdict::Clean,
        },
        blacklisted_domain: None,
        needed_content_upload: false,
        source: VerdictSource::Full,
        faults: FaultLog::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slum_exchange::params::PROFILES;

    fn tiny_study() -> Study {
        let config = StudyConfig::builder()
            .seed(77)
            .crawl_scale(0.0003)
            .domain_scale(0.03)
            .build()
            .expect("valid test config");
        Study::run(&config)
    }

    #[test]
    fn study_produces_all_nine_rows() {
        let study = tiny_study();
        let t1 = study.table1();
        assert_eq!(t1.rows.len(), 9);
        for row in &t1.rows {
            assert!(row.crawled >= 40, "{}: {}", row.exchange, row.crawled);
            assert_eq!(
                row.crawled,
                row.self_referrals + row.popular_referrals + row.regular,
                "{} partition",
                row.exchange
            );
        }
    }

    #[test]
    fn overall_malice_rate_in_paper_ballpark() {
        let study = tiny_study();
        let rate = study.table1().overall_malicious_fraction();
        // Paper: 26.7%. Small crawls are noisy; assert the band.
        assert!((0.15..0.45).contains(&rate), "overall malice rate {rate}");
    }

    #[test]
    fn outcomes_align_with_records() {
        let study = tiny_study();
        assert_eq!(study.store.len(), study.outcomes.len());
        assert_eq!(study.store.len(), study.referrals.len());
    }

    #[test]
    fn self_and_popular_referrals_never_malicious() {
        let study = tiny_study();
        for (outcome, class) in study.outcomes.iter().zip(&study.referrals) {
            if *class != ReferralClass::Regular {
                assert!(!outcome.malicious);
            }
        }
    }

    #[test]
    fn fig2_matches_table1() {
        let study = tiny_study();
        let t1 = study.table1();
        let bars = study.fig2();
        for (row, bar) in t1.rows.iter().zip(&bars) {
            assert_eq!(row.exchange, bar.exchange);
            assert_eq!(row.malicious, bar.malicious);
            assert_eq!(row.regular, bar.benign + bar.malicious);
        }
    }

    #[test]
    fn fig3_totals_match_table1() {
        let study = tiny_study();
        let t1 = study.table1();
        for (series, row) in study.fig3().iter().zip(&t1.rows) {
            assert_eq!(series.exchange, row.exchange);
            assert_eq!(series.total_malicious(), row.malicious);
            assert_eq!(series.len() as u64, row.regular);
        }
    }

    #[test]
    fn table3_counts_match_total_malicious() {
        let study = tiny_study();
        let counts = study.table3();
        let total_from_table1: u64 = study.table1().rows.iter().map(|r| r.malicious).sum();
        assert_eq!(counts.total_malicious, total_from_table1);
        let sum: u64 = crate::categorize::Category::ALL.iter().map(|c| counts.count(*c)).sum();
        assert_eq!(sum, counts.total_malicious);
    }

    #[test]
    fn metrics_agree_with_pipeline_state() {
        let study = tiny_study();
        let m = study.metrics();
        let t1 = study.table1();

        assert_eq!(m.counter("crawl.pages") as usize, study.store.len());
        assert_eq!(m.counter("filter.records_in") as usize, study.referrals.len());
        let regular: u64 = t1.rows.iter().map(|r| r.regular).sum();
        assert_eq!(m.counter("filter.regular_out"), regular);
        assert_eq!(m.counter("scan.scans"), regular);
        let malicious: u64 = t1.rows.iter().map(|r| r.malicious).sum();
        assert_eq!(m.counter("scan.verdict.malicious"), malicious);
        assert_eq!(
            m.counter("scan.verdict.malicious") + m.counter("scan.verdict.benign"),
            regular
        );

        // One URL-feature lookup per scanned record; entries+hits
        // partition the lookups.
        let fl = m.counter("scan.cache.url_features.lookups");
        assert_eq!(fl, regular);
        assert_eq!(
            fl,
            m.counter("scan.cache.url_features.entries")
                + m.counter("scan.cache.url_features.hits")
        );

        // Phase spans exist and the scan histogram saw every record.
        assert_eq!(m.spans.iter().filter(|s| s.name.starts_with("phase.")).count(), 3);
        assert_eq!(m.histograms["scan.record_nanos"].count, regular);
    }

    #[test]
    fn builder_rejects_nonsense() {
        assert!(matches!(
            StudyConfig::builder().scan_workers(0).build(),
            Err(ConfigError::ZeroScanWorkers)
        ));
        assert!(matches!(
            StudyConfig::builder().crawl_scale(0.0).build(),
            Err(ConfigError::NonPositiveScale { field: "crawl_scale", .. })
        ));
        assert!(matches!(
            StudyConfig::builder().domain_scale(-1.0).build(),
            Err(ConfigError::NonPositiveScale { field: "domain_scale", .. })
        ));
        assert!(matches!(
            StudyConfig::builder().crawl_scale(f64::NAN).build(),
            Err(ConfigError::NonPositiveScale { .. })
        ));
        let err = StudyConfig::builder().scan_workers(0).build().unwrap_err();
        assert!(err.to_string().contains("at least 1"));
    }

    #[test]
    fn builder_rejects_invalid_fault_profile() {
        let mut bad = FaultProfile::default_profile();
        bad.services[0].transient_per_mille = 2_000;
        let err = StudyConfig::builder().fault_profile(bad).build().unwrap_err();
        assert!(matches!(err, ConfigError::InvalidFaultProfile { .. }));
        assert!(err.to_string().contains("fault profile"));
    }

    #[test]
    fn fault_free_run_registers_zero_fault_counters() {
        let study = tiny_study();
        let m = study.metrics();
        // The counters must be *present* with explicit zeros (CI's
        // fault-free smoke check greps the snapshot for them).
        for name in [
            "scan.faults.injected",
            "scan.retries",
            "scan.backoff_nanos",
            "scan.degraded_verdicts",
            "scan.blacklist_only_verdicts",
            "scan.unresolved_verdicts",
            "scan.breaker.skips",
        ] {
            assert!(m.counters.contains_key(name), "{name} must be registered");
            assert_eq!(m.counter(name), 0, "{name} must be zero without faults");
        }
        for outcome in &study.outcomes {
            assert_eq!(outcome.source, VerdictSource::Full);
            assert_eq!(outcome.faults, FaultLog::default());
        }
    }

    #[test]
    fn fault_free_run_registers_zero_crawl_fault_counters() {
        let study = tiny_study();
        let m = study.metrics();
        for name in [
            "crawl.faults.injected",
            "crawl.faults.retries",
            "crawl.faults.backoff_nanos",
            "crawl.faults.outages",
            "crawl.faults.bans",
            "crawl.faults.captcha_lockouts",
            "crawl.faults.session_drops",
            "crawl.faults.lost_steps",
            "crawl.faults.downtime_secs",
            "crawl.faults.shutdowns",
            "crawl.resume.segments_restored",
            "crawl.resume.records_restored",
        ] {
            assert!(m.counters.contains_key(name), "{name} must be registered");
            assert_eq!(m.counter(name), 0, "{name} must be zero without crawl faults");
        }
        assert_eq!(study.health.len(), 9);
        assert!(study.health.iter().all(CrawlHealth::is_clean));
    }

    #[test]
    fn default_crawl_fault_profile_degrades_but_completes() {
        let config = StudyConfig::builder()
            .seed(77)
            .crawl_scale(0.0003)
            .domain_scale(0.03)
            .crawl_fault_profile(CrawlFaultProfile::default_profile())
            .build()
            .expect("valid config");
        let study = Study::run(&config);
        let m = study.metrics();
        assert!(m.counter("crawl.faults.injected") > 0, "default profile must inject");
        assert!(m.counter("crawl.faults.downtime_secs") > 0);
        // Every planned slot is accounted for: logged or lost.
        let steps: u64 = PROFILES.iter().map(|p| steps_for(p, config.crawl_scale)).sum();
        assert_eq!(m.counter("crawl.pages") + m.counter("crawl.faults.lost_steps"), steps);
        // The study still produces all nine Table I rows — degraded, not
        // aborted.
        assert_eq!(study.table1().rows.len(), 9);
        assert_eq!(study.health.len(), 9);
        for h in &study.health {
            assert!(
                m.gauge(&format!("crawl.health.{}.lost_steps", h.exchange))
                    == h.lost_steps as i64
            );
        }
    }

    #[test]
    fn checkpointed_run_matches_direct_run() {
        let dir =
            std::env::temp_dir().join(format!("slum-study-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = StudyConfig::builder()
            .seed(77)
            .crawl_scale(0.0003)
            .domain_scale(0.03)
            .scan_workers(2)
            .checkpoint_every(48)
            .build()
            .expect("valid config");
        let direct = Study::run(&config);
        let checkpointed = Study::run_checkpointed(&config, &dir).expect("checkpoint I/O");
        assert_eq!(
            direct.store.to_jsonl().unwrap(),
            checkpointed.store.to_jsonl().unwrap(),
            "checkpointing must not change the corpus"
        );
        assert_eq!(direct.outcomes, checkpointed.outcomes);
        assert_eq!(direct.health, checkpointed.health);
        assert!(
            std::fs::read_dir(&dir).unwrap().count() > 1,
            "periodic checkpoints must be written"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn builder_rejects_invalid_crawl_profile_and_zero_interval() {
        let mut bad = CrawlFaultProfile::default_profile();
        bad.auto.session_drop_per_mille = 9_999;
        let err = StudyConfig::builder().crawl_fault_profile(bad).build().unwrap_err();
        assert!(matches!(err, ConfigError::InvalidCrawlFaultProfile { .. }));
        assert!(err.to_string().contains("crawl-fault"), "{err}");
        assert!(matches!(
            StudyConfig::builder().checkpoint_every(0).build(),
            Err(ConfigError::ZeroCheckpointInterval)
        ));
    }

    #[test]
    fn default_fault_profile_injects_and_degrades() {
        let config = StudyConfig::builder()
            .seed(77)
            .crawl_scale(0.0003)
            .domain_scale(0.03)
            .fault_profile(FaultProfile::default_profile())
            .build()
            .expect("valid config");
        let study = Study::run(&config);
        let m = study.metrics();
        assert!(m.counter("scan.faults.injected") > 0, "default profile must inject");
        assert!(m.counter("scan.retries") > 0, "faults must drive retries");
        assert!(m.counter("scan.backoff_nanos") > 0);
        assert!(m.counter("scan.degraded_verdicts") > 0, "some verdicts must degrade");
        // Filtered (self/popular) records never touch the services, so
        // their provenance stays Full.
        for (outcome, class) in study.outcomes.iter().zip(&study.referrals) {
            if *class != ReferralClass::Regular {
                assert_eq!(outcome.source, VerdictSource::Full);
            }
        }
    }

    #[test]
    fn unknown_substrate_name_rejected() {
        let err = StudyConfig::builder().substrate_name("usenet").unwrap_err();
        assert!(matches!(err, ConfigError::UnknownSubstrate { .. }));
        assert!(err.to_string().contains("usenet"), "{err}");
        let config =
            StudyConfig::builder().substrate_name("adnet").unwrap().build().unwrap();
        assert_eq!(config.substrate, Substrate::AdNet);
    }

    #[test]
    fn substrate_counters_always_registered() {
        let study = tiny_study();
        let m = study.metrics();
        for name in Substrate::NAMES {
            for key in [
                format!("crawl.substrate.{name}.pages"),
                format!("crawl.substrate.{name}.sources"),
            ] {
                assert!(m.counters.contains_key(&key), "{key} must be registered");
            }
        }
        assert_eq!(m.counter("crawl.substrate.exchange.pages") as usize, study.store.len());
        assert_eq!(m.counter("crawl.substrate.exchange.sources"), 9);
        assert_eq!(m.counter("crawl.substrate.adnet.pages"), 0);
        assert_eq!(m.counter("crawl.substrate.torrent.sources"), 0);
    }

    fn substrate_study(substrate: Substrate) -> Study {
        let config = StudyConfig::builder()
            .seed(77)
            .crawl_scale(0.0005)
            .domain_scale(0.03)
            .substrate(substrate)
            .build()
            .expect("valid config");
        Study::run(&config)
    }

    #[test]
    fn adnet_substrate_runs_end_to_end() {
        let study = substrate_study(Substrate::AdNet);
        assert_eq!(study.sources.len(), 4);
        assert_eq!(study.health.len(), 4);
        let t1 = study.table1();
        assert_eq!(t1.rows.len(), 4);
        for row in &t1.rows {
            assert!(row.crawled >= 40, "{}: {}", row.exchange, row.crawled);
            assert_eq!(
                row.crawled,
                row.self_referrals + row.popular_referrals + row.regular,
                "{} partition",
                row.exchange
            );
            assert!(row.regular > 0, "{}", row.exchange);
        }
        assert!(t1.overall_malicious_fraction() > 0.0, "ad networks must carry malice");
        let m = study.metrics();
        assert_eq!(m.counter("crawl.substrate.adnet.pages") as usize, study.store.len());
        assert_eq!(m.counter("crawl.substrate.adnet.sources"), 4);
        assert_eq!(m.counter("crawl.substrate.exchange.pages"), 0);
    }

    #[test]
    fn torrent_substrate_runs_end_to_end() {
        let study = substrate_study(Substrate::Torrent);
        assert_eq!(study.sources.len(), 3);
        assert_eq!(study.health.len(), 3);
        let t1 = study.table1();
        assert_eq!(t1.rows.len(), 3);
        for row in &t1.rows {
            assert_eq!(
                row.crawled,
                row.self_referrals + row.popular_referrals + row.regular,
                "{} partition",
                row.exchange
            );
        }
        assert!(t1.overall_malicious_fraction() > 0.0, "fake publishers must seed malice");
    }

    #[test]
    fn new_substrates_are_deterministic_per_seed() {
        for substrate in [Substrate::AdNet, Substrate::Torrent] {
            let a = substrate_study(substrate);
            let b = substrate_study(substrate);
            assert_eq!(
                a.store.to_jsonl().expect("serializable corpus"),
                b.store.to_jsonl().expect("serializable corpus"),
                "{substrate:?} corpus must be deterministic"
            );
            assert_eq!(a.outcomes, b.outcomes, "{substrate:?} outcomes");
        }
    }
}
