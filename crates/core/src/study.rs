//! The end-to-end study runner: build the ecosystem, crawl, scan,
//! analyze — everything the paper's evaluation reports, in one object.

use slum_crawler::drive::estimated_duration_secs;
use slum_crawler::{crawl_all, CrawlRecord, RecordStore};
use slum_exchange::params::PROFILES;
use slum_exchange::Exchange;
use slum_websim::build::WebBuilder;
use slum_websim::SyntheticWeb;

use crate::breakdown::{domain_rows, ContentBreakdown, DomainRow, TldBreakdown};
use crate::case_studies;
use crate::categorize::{tally, CategoryCounts};
use crate::filter::{ReferralClass, ReferralFilter};
use crate::redirects::{longest_chain, ChainExhibit, RedirectHistogram};
use crate::report::{Fig2Bar, Table1, Table1Row};
use crate::scanpipe::{ScanOutcome, ScanPipeline};
use crate::shortened::{shortened_rows, ShortenedRow};
use crate::temporal::CumulativeSeries;

/// Study configuration.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// Master seed.
    pub seed: u64,
    /// Fraction of the paper's per-exchange crawl volumes to replay
    /// (1.0 = the full 1,003,087 visits; the default keeps CI-sized
    /// runs fast while preserving every shape).
    pub crawl_scale: f64,
    /// Fraction of the paper's per-exchange domain pools to install.
    pub domain_scale: f64,
    /// Worker threads for the scan phase. `1` scans serially (the
    /// historical behaviour); the default is the machine's available
    /// parallelism. Results are identical for every worker count.
    pub scan_workers: usize,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            seed: 2016,
            crawl_scale: 0.001,
            domain_scale: 0.05,
            scan_workers: default_scan_workers(),
        }
    }
}

/// The machine's available parallelism (used as the default scan worker
/// count), falling back to 4 where it cannot be queried.
pub fn default_scan_workers() -> usize {
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(4)
}

/// Wall-clock spent in each phase of [`Study::run_timed`].
#[derive(Debug, Clone, Copy)]
pub struct PhaseTimings {
    /// Web population + exchange construction.
    pub build: std::time::Duration,
    /// Parallel crawl of the nine exchanges.
    pub crawl: std::time::Duration,
    /// Referral classification + the (possibly parallel) scan phase.
    pub scan: std::time::Duration,
    /// Scan workers actually used.
    pub scan_workers: usize,
}

/// A completed study: the corpus, verdicts, and every derived artifact.
pub struct Study {
    /// The synthetic web (with its oracle and shortener registry).
    pub web: SyntheticWeb,
    /// The crawl corpus.
    pub store: RecordStore,
    /// Scan outcome per record (aligned with `store.records()`).
    pub outcomes: Vec<ScanOutcome>,
    /// Referral class per record (aligned).
    pub referrals: Vec<ReferralClass>,
    config: StudyConfig,
}

impl Study {
    /// Runs the full pipeline.
    pub fn run(config: &StudyConfig) -> Study {
        Study::run_timed(config).0
    }

    /// Runs the full pipeline, reporting per-phase wall-clock timings.
    pub fn run_timed(config: &StudyConfig) -> (Study, PhaseTimings) {
        // 1. Build the web population + the nine exchanges. Each
        //    exchange gets its *own* planned crawl span so manual-surf
        //    campaign bursts land inside the (much shorter) manual
        //    crawls rather than after they end.
        let t_build = std::time::Instant::now();
        let mut builder = WebBuilder::new(config.seed);
        let mut exchanges: Vec<Exchange> = PROFILES
            .iter()
            .map(|p| {
                let span = estimated_duration_secs(p, steps_for(p, config.crawl_scale));
                slum_exchange::build_exchange(&mut builder, p, config.domain_scale, span)
            })
            .collect();
        let web = builder.finish();
        let build = t_build.elapsed();

        // 2. Crawl all nine exchanges in parallel.
        let t_crawl = std::time::Instant::now();
        let (store, _stats) = crawl_all(&web, &mut exchanges, config.seed, |x| {
            let profile = PROFILES.iter().find(|p| p.name == x.name()).expect("known");
            steps_for(profile, config.crawl_scale)
        });
        let crawl = t_crawl.elapsed();

        // 3. Classify referrals, then scan every *regular* record
        //    across the configured worker count.
        let t_scan = std::time::Instant::now();
        let filter = ReferralFilter::from_profiles(PROFILES.iter());
        let referrals: Vec<ReferralClass> =
            store.records().iter().map(|r| filter.classify(r)).collect();
        let pipeline = ScanPipeline::new(&web);
        let (outcomes, scan_workers) =
            scan_phase(&pipeline, store.records(), &referrals, config.scan_workers);
        let scan = t_scan.elapsed();

        let study = Study { web, store, outcomes, referrals, config: config.clone() };
        (study, PhaseTimings { build, crawl, scan, scan_workers })
    }

    /// The configuration the study ran with.
    pub fn config(&self) -> &StudyConfig {
        &self.config
    }

    /// Regular-record mask (aligned with records).
    pub fn regular_mask(&self) -> Vec<bool> {
        self.referrals.iter().map(|c| *c == ReferralClass::Regular).collect()
    }

    /// Regular records paired with their outcomes, borrowed from the
    /// study (no record/outcome cloning).
    pub fn regular_pairs(&self) -> Vec<(&CrawlRecord, &ScanOutcome)> {
        self.store
            .records()
            .iter()
            .zip(&self.outcomes)
            .zip(&self.referrals)
            .filter(|(_, class)| **class == ReferralClass::Regular)
            .map(|(pair, _)| pair)
            .collect()
    }

    /// Table I: per-exchange crawl statistics.
    pub fn table1(&self) -> Table1 {
        let rows = PROFILES
            .iter()
            .map(|profile| {
                let mut row = Table1Row {
                    exchange: profile.name.to_string(),
                    kind: profile.kind.label().to_string(),
                    crawled: 0,
                    self_referrals: 0,
                    popular_referrals: 0,
                    regular: 0,
                    malicious: 0,
                };
                for ((record, outcome), class) in
                    self.store.records().iter().zip(&self.outcomes).zip(&self.referrals)
                {
                    if record.exchange != profile.name {
                        continue;
                    }
                    row.crawled += 1;
                    match class {
                        ReferralClass::SelfReferral => row.self_referrals += 1,
                        ReferralClass::PopularReferral => row.popular_referrals += 1,
                        ReferralClass::Regular => {
                            row.regular += 1;
                            if outcome.malicious {
                                row.malicious += 1;
                            }
                        }
                    }
                }
                row
            })
            .collect();
        Table1 { rows }
    }

    /// Table II: per-exchange domain statistics.
    pub fn table2(&self) -> Vec<DomainRow> {
        domain_rows(self.store.records(), &self.outcomes, &self.regular_mask())
    }

    /// Table III: malware categorization counts.
    pub fn table3(&self) -> CategoryCounts {
        tally(&self.regular_pairs())
    }

    /// Table IV: malicious shortened-URL statistics.
    pub fn table4(&self) -> Vec<ShortenedRow> {
        shortened_rows(&self.web, &self.regular_pairs())
    }

    /// Figure 2 bars (per-exchange benign vs malware).
    pub fn fig2(&self) -> Vec<Fig2Bar> {
        self.table1()
            .rows
            .into_iter()
            .map(|r| Fig2Bar {
                exchange: r.exchange,
                benign: r.regular - r.malicious,
                malicious: r.malicious,
            })
            .collect()
    }

    /// Figure 3: per-exchange cumulative malicious series (regular URLs,
    /// crawl order).
    pub fn fig3(&self) -> Vec<CumulativeSeries> {
        PROFILES
            .iter()
            .map(|profile| {
                let flags: Vec<bool> = self
                    .store
                    .records()
                    .iter()
                    .zip(&self.outcomes)
                    .zip(&self.referrals)
                    .filter(|((record, _), class)| {
                        record.exchange == profile.name && **class == ReferralClass::Regular
                    })
                    .map(|((_, outcome), _)| outcome.malicious)
                    .collect();
                CumulativeSeries::from_flags(profile.name, &flags)
            })
            .collect()
    }

    /// Figure 5: redirect-count histogram.
    pub fn fig5(&self) -> RedirectHistogram {
        RedirectHistogram::build(&self.regular_pairs())
    }

    /// Figure 4 exhibit: the longest malicious redirect chain observed.
    pub fn fig4(&self) -> Option<ChainExhibit> {
        longest_chain(&self.regular_pairs())
    }

    /// Figure 6: TLD breakdown of malicious URLs.
    pub fn fig6(&self) -> TldBreakdown {
        TldBreakdown::build(&self.regular_pairs())
    }

    /// Figure 7: content-category breakdown of malicious URLs.
    pub fn fig7(&self) -> ContentBreakdown {
        ContentBreakdown::build(&self.web, &self.regular_pairs())
    }

    /// §V-A case studies: iframe-injection exhibits.
    pub fn iframe_case_studies(&self) -> Vec<case_studies::IframeExhibit> {
        case_studies::iframe_injections(&self.regular_pairs())
    }

    /// §V-B case studies: deceptive downloads.
    pub fn download_case_studies(&self) -> Vec<case_studies::DownloadExhibit> {
        case_studies::deceptive_downloads(&self.regular_pairs())
    }

    /// §V-D case studies: Flash click-jacks.
    pub fn flash_case_studies(&self) -> Vec<case_studies::FlashExhibit> {
        case_studies::flash_clickjacks(&self.web, &self.regular_pairs())
    }

    /// §V-E case studies: false positives.
    pub fn false_positive_case_studies(&self) -> Vec<case_studies::FalsePositiveExhibit> {
        case_studies::false_positives(&self.web, &self.regular_pairs())
    }
}

/// Per-exchange crawl steps at a given scale (minimum 40 so small-scale
/// runs still populate every row).
pub fn steps_for(profile: &slum_exchange::ExchangeProfile, scale: f64) -> u64 {
    ((profile.urls_crawled as f64 * scale).round() as u64).max(40)
}

/// Scans every Regular record across `workers` scoped threads and
/// splices the results back into record order; Self/Popular referrals
/// get an inert clean outcome so indices stay aligned. Returns the
/// outcomes and the worker count actually used.
fn scan_phase(
    pipeline: &ScanPipeline<'_>,
    records: &[CrawlRecord],
    referrals: &[ReferralClass],
    workers: usize,
) -> (Vec<ScanOutcome>, usize) {
    let regular_idx: Vec<usize> = referrals
        .iter()
        .enumerate()
        .filter(|(_, class)| **class == ReferralClass::Regular)
        .map(|(i, _)| i)
        .collect();
    let workers = workers.max(1).min(regular_idx.len().max(1));

    let scanned: Vec<ScanOutcome> = if workers == 1 {
        regular_idx.iter().map(|&i| pipeline.scan(&records[i])).collect()
    } else {
        let chunk_len = regular_idx.len().div_ceil(workers);
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = regular_idx
                .chunks(chunk_len)
                .map(|chunk| {
                    scope.spawn(move |_| {
                        chunk.iter().map(|&i| pipeline.scan(&records[i])).collect::<Vec<_>>()
                    })
                })
                .collect();
            let mut merged = Vec::with_capacity(regular_idx.len());
            for handle in handles {
                merged.extend(handle.join().expect("scan worker panicked"));
            }
            merged
        })
        .expect("scan scope panicked")
    };

    let mut scanned = scanned.into_iter();
    let outcomes = records
        .iter()
        .zip(referrals)
        .map(|(record, class)| match class {
            ReferralClass::Regular => scanned.next().expect("one scan per regular record"),
            // Self/popular referrals are excluded from analysis; give
            // them an inert clean outcome so indices stay aligned.
            _ => clean_outcome(record),
        })
        .collect();
    (outcomes, workers)
}

fn clean_outcome(record: &CrawlRecord) -> ScanOutcome {
    ScanOutcome {
        malicious: false,
        vt: slum_detect::virustotal::VtReport {
            detections: Vec::new(),
            total_engines: 0,
            threshold: 2,
        },
        quttera: slum_detect::quttera::QutteraReport {
            url: record.url.clone(),
            findings: Vec::new(),
            verdict: slum_detect::quttera::QutteraVerdict::Clean,
        },
        blacklisted_domain: None,
        needed_content_upload: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_study() -> Study {
        Study::run(&StudyConfig { seed: 77, crawl_scale: 0.0003, domain_scale: 0.03, ..Default::default() })
    }

    #[test]
    fn study_produces_all_nine_rows() {
        let study = tiny_study();
        let t1 = study.table1();
        assert_eq!(t1.rows.len(), 9);
        for row in &t1.rows {
            assert!(row.crawled >= 40, "{}: {}", row.exchange, row.crawled);
            assert_eq!(
                row.crawled,
                row.self_referrals + row.popular_referrals + row.regular,
                "{} partition",
                row.exchange
            );
        }
    }

    #[test]
    fn overall_malice_rate_in_paper_ballpark() {
        let study = tiny_study();
        let rate = study.table1().overall_malicious_fraction();
        // Paper: 26.7%. Small crawls are noisy; assert the band.
        assert!((0.15..0.45).contains(&rate), "overall malice rate {rate}");
    }

    #[test]
    fn outcomes_align_with_records() {
        let study = tiny_study();
        assert_eq!(study.store.len(), study.outcomes.len());
        assert_eq!(study.store.len(), study.referrals.len());
    }

    #[test]
    fn self_and_popular_referrals_never_malicious() {
        let study = tiny_study();
        for (outcome, class) in study.outcomes.iter().zip(&study.referrals) {
            if *class != ReferralClass::Regular {
                assert!(!outcome.malicious);
            }
        }
    }

    #[test]
    fn fig2_matches_table1() {
        let study = tiny_study();
        let t1 = study.table1();
        let bars = study.fig2();
        for (row, bar) in t1.rows.iter().zip(&bars) {
            assert_eq!(row.exchange, bar.exchange);
            assert_eq!(row.malicious, bar.malicious);
            assert_eq!(row.regular, bar.benign + bar.malicious);
        }
    }

    #[test]
    fn fig3_totals_match_table1() {
        let study = tiny_study();
        let t1 = study.table1();
        for (series, row) in study.fig3().iter().zip(&t1.rows) {
            assert_eq!(series.exchange, row.exchange);
            assert_eq!(series.total_malicious(), row.malicious);
            assert_eq!(series.len() as u64, row.regular);
        }
    }

    #[test]
    fn table3_counts_match_total_malicious() {
        let study = tiny_study();
        let counts = study.table3();
        let total_from_table1: u64 = study.table1().rows.iter().map(|r| r.malicious).sum();
        assert_eq!(counts.total_malicious, total_from_table1);
        let sum: u64 = crate::categorize::Category::ALL.iter().map(|c| counts.count(*c)).sum();
        assert_eq!(sum, counts.total_malicious);
    }
}
