//! Traffic-substrate selection: which ecosystem the study crawls.
//!
//! The paper measured traffic exchanges; the reproduction generalizes
//! the pipeline behind the [`slum_exchange::TrafficSource`] contract so
//! the same crawler, referral filter, scan pipeline and artifact layer
//! run unchanged over three substrates:
//!
//! - [`Substrate::Exchange`] — the nine measured exchanges (the
//!   default; bit-identical to the pre-substrate pipeline).
//! - [`Substrate::AdNet`] — four synthetic ad networks serving
//!   malicious creatives through time-boxed malvertising flights
//!   ([`slum_adnet`]).
//! - [`Substrate::Torrent`] — three synthetic torrent index sites with
//!   fake publishers seeding scam/malware payload pages
//!   ([`slum_torrent`]).
//!
//! [`build_substrate`] is the single dispatch point: it installs the
//! substrate's population into one synthetic web and returns the boxed
//! sources, their step budgets, the referral filter that knows the
//! substrate's self/popular hosts, and per-source metadata the
//! artifact layer renders from (so artifact code never needs
//! substrate-specific profile tables).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use slum_crawler::drive::estimated_duration_secs;
use slum_crawler::CrawlRecord;
use slum_exchange::{ExchangeKind, TrafficSource};
use slum_websim::build::WebBuilder;
use slum_websim::SyntheticWeb;

use crate::filter::{ReferralClass, ReferralFilter};
use crate::scanpipe::ScanOutcome;
use crate::study::{steps_for, StudyConfig};

/// Which traffic ecosystem a study crawls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Substrate {
    /// The nine traffic exchanges of the paper (default).
    #[default]
    Exchange,
    /// The four synthetic ad networks.
    AdNet,
    /// The three synthetic torrent index sites.
    Torrent,
}

impl Substrate {
    /// Every substrate, in canonical (CLI) order.
    pub const ALL: [Substrate; 3] = [Substrate::Exchange, Substrate::AdNet, Substrate::Torrent];

    /// Canonical CLI names, aligned with [`Substrate::ALL`].
    pub const NAMES: [&'static str; 3] = ["exchange", "adnet", "torrent"];

    /// The canonical CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Substrate::Exchange => "exchange",
            Substrate::AdNet => "adnet",
            Substrate::Torrent => "torrent",
        }
    }

    /// Parses a CLI name (a few aliases are accepted).
    pub fn parse(name: &str) -> Option<Substrate> {
        match name.to_ascii_lowercase().as_str() {
            "exchange" | "exchanges" => Some(Substrate::Exchange),
            "adnet" | "ad-network" | "adnetwork" => Some(Substrate::AdNet),
            "torrent" | "torrents" => Some(Substrate::Torrent),
            _ => None,
        }
    }
}

/// Per-source metadata the artifact layer iterates instead of a
/// substrate-specific profile table: one entry per traffic source, in
/// the substrate's canonical order (which is also crawl input order).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SourceMeta {
    /// Source display name (matches `CrawlRecord::exchange`).
    pub name: String,
    /// Pacing class.
    pub kind: ExchangeKind,
}

/// Everything the crawl phase needs, produced by [`build_substrate`].
pub struct BuiltSubstrate {
    /// The populated synthetic web.
    pub web: SyntheticWeb,
    /// The traffic sources, boxed behind the trait.
    pub sources: Vec<Box<dyn TrafficSource + Send>>,
    /// Per-source metadata, aligned with `sources`.
    pub meta: Vec<SourceMeta>,
    /// Referral filter knowing the substrate's self/popular hosts.
    pub filter: ReferralFilter,
    /// Crawl step budget per source name.
    pub steps: BTreeMap<String, u64>,
}

impl BuiltSubstrate {
    /// Total planned surf slots across all sources — an exact upper
    /// bound on records (equal under an inert crawl-fault profile).
    pub fn planned_steps(&self) -> u64 {
        self.steps.values().sum()
    }
}

/// Scaled crawl steps for a non-exchange source (same formula as
/// [`steps_for`]: paper-scale volume times the crawl scale, floored at
/// 40 so tiny runs still populate every row).
fn scaled_steps(urls_crawled: u64, scale: f64) -> u64 {
    ((urls_crawled as f64 * scale).round() as u64).max(40)
}

/// Average virtual seconds per crawled page for a source (mirrors
/// [`slum_crawler::drive::estimated_duration_secs`]).
fn per_page_secs(min_surf_secs: u32, kind: ExchangeKind) -> u64 {
    min_surf_secs as u64 + 2 + if kind == ExchangeKind::ManualSurf { 6 } else { 0 }
}

/// Builds the configured substrate's population and sources.
///
/// The exchange arm reproduces the pre-substrate build sequence
/// exactly — same builder calls in the same order off the same seed —
/// so `--substrate exchange` output stays bit-identical to the
/// pre-refactor pipeline (pinned by the golden-regression suite).
pub fn build_substrate(config: &StudyConfig) -> BuiltSubstrate {
    let mut builder = WebBuilder::new(config.seed);
    match config.substrate {
        Substrate::Exchange => {
            let sources: Vec<Box<dyn TrafficSource + Send>> = slum_exchange::params::PROFILES
                .iter()
                .map(|p| {
                    let span = estimated_duration_secs(p, steps_for(p, config.crawl_scale));
                    slum_exchange::build_exchange(&mut builder, p, config.domain_scale, span)
                })
                .map(|x| Box::new(x) as Box<dyn TrafficSource + Send>)
                .collect();
            let meta = slum_exchange::params::PROFILES
                .iter()
                .map(|p| SourceMeta { name: p.name.to_string(), kind: p.kind })
                .collect();
            let steps = slum_exchange::params::PROFILES
                .iter()
                .map(|p| (p.name.to_string(), steps_for(p, config.crawl_scale)))
                .collect();
            BuiltSubstrate {
                web: builder.finish(),
                sources,
                meta,
                filter: ReferralFilter::from_profiles(slum_exchange::params::PROFILES.iter()),
                steps,
            }
        }
        Substrate::AdNet => {
            let sources: Vec<Box<dyn TrafficSource + Send>> = slum_adnet::PROFILES
                .iter()
                .map(|p| {
                    let steps = scaled_steps(p.urls_crawled, config.crawl_scale);
                    let span = steps * per_page_secs(p.min_surf_secs, p.kind);
                    slum_adnet::build_ad_network(&mut builder, p, config.domain_scale, span)
                })
                .map(|n| Box::new(n) as Box<dyn TrafficSource + Send>)
                .collect();
            let meta = slum_adnet::PROFILES
                .iter()
                .map(|p| SourceMeta { name: p.name.to_string(), kind: p.kind })
                .collect();
            let steps = slum_adnet::PROFILES
                .iter()
                .map(|p| (p.name.to_string(), scaled_steps(p.urls_crawled, config.crawl_scale)))
                .collect();
            let filter = ReferralFilter::from_hosts(
                slum_adnet::PROFILES.iter().map(|p| p.host.to_string()),
                slum_adnet::PREMIUM_HOSTS.iter().map(|h| h.to_string()),
            );
            BuiltSubstrate { web: builder.finish(), sources, meta, filter, steps }
        }
        Substrate::Torrent => {
            let sources: Vec<Box<dyn TrafficSource + Send>> = slum_torrent::PROFILES
                .iter()
                .map(|p| {
                    let steps = scaled_steps(p.urls_crawled, config.crawl_scale);
                    let span = steps * per_page_secs(p.min_surf_secs, p.kind);
                    slum_torrent::build_torrent_index(&mut builder, p, config.domain_scale, span)
                })
                .map(|i| Box::new(i) as Box<dyn TrafficSource + Send>)
                .collect();
            let meta = slum_torrent::PROFILES
                .iter()
                .map(|p| SourceMeta { name: p.name.to_string(), kind: p.kind })
                .collect();
            let steps = slum_torrent::PROFILES
                .iter()
                .map(|p| (p.name.to_string(), scaled_steps(p.urls_crawled, config.crawl_scale)))
                .collect();
            let filter = ReferralFilter::from_hosts(
                slum_torrent::PROFILES.iter().map(|p| p.host.to_string()),
                slum_torrent::MIRROR_HOSTS.iter().map(|h| h.to_string()),
            );
            BuiltSubstrate { web: builder.finish(), sources, meta, filter, steps }
        }
    }
}

/// One row of the substrate-comparison artifact: per-source malice
/// statistics in a substrate-agnostic shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubstrateRow {
    /// Source (exchange / ad network / torrent index) name.
    pub source: String,
    /// Pacing class.
    pub kind: ExchangeKind,
    /// Records crawled from this source.
    pub crawled: u64,
    /// Self-referrals filtered out.
    pub self_referrals: u64,
    /// Popular/premium/mirror referrals filtered out.
    pub popular_referrals: u64,
    /// Regular records scanned.
    pub regular: u64,
    /// Regular records judged malicious.
    pub malicious: u64,
}

impl SubstrateRow {
    /// Malicious fraction of regular records (0 when none).
    pub fn malicious_fraction(&self) -> f64 {
        if self.regular == 0 {
            0.0
        } else {
            self.malicious as f64 / self.regular as f64
        }
    }
}

/// The substrate-comparison artifact: the active substrate's
/// per-source malice statistics plus totals, in a shape identical
/// across substrates so runs over different substrates diff and
/// tabulate against each other directly (see the cross-substrate
/// recipe in `EXPERIMENTS.md`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubstrateComparison {
    /// Canonical name of the substrate that produced the rows.
    pub substrate: String,
    /// One row per source, in crawl input order.
    pub rows: Vec<SubstrateRow>,
}

impl SubstrateComparison {
    /// Builds the comparison from a study's aligned record data.
    pub fn build(
        substrate: Substrate,
        meta: &[SourceMeta],
        records: &[CrawlRecord],
        referrals: &[ReferralClass],
        outcomes: &[ScanOutcome],
    ) -> SubstrateComparison {
        let rows = meta
            .iter()
            .map(|m| {
                let mut row = SubstrateRow {
                    source: m.name.clone(),
                    kind: m.kind,
                    crawled: 0,
                    self_referrals: 0,
                    popular_referrals: 0,
                    regular: 0,
                    malicious: 0,
                };
                for ((record, class), outcome) in records.iter().zip(referrals).zip(outcomes) {
                    if record.exchange != m.name {
                        continue;
                    }
                    row.crawled += 1;
                    match class {
                        ReferralClass::SelfReferral => row.self_referrals += 1,
                        ReferralClass::PopularReferral => row.popular_referrals += 1,
                        ReferralClass::Regular => {
                            row.regular += 1;
                            if outcome.malicious {
                                row.malicious += 1;
                            }
                        }
                    }
                }
                row
            })
            .collect();
        SubstrateComparison { substrate: substrate.name().to_string(), rows }
    }

    /// Total regular records across sources.
    pub fn total_regular(&self) -> u64 {
        self.rows.iter().map(|r| r.regular).sum()
    }

    /// Total malicious records across sources.
    pub fn total_malicious(&self) -> u64 {
        self.rows.iter().map(|r| r.malicious).sum()
    }

    /// Overall malicious fraction of regular records.
    pub fn overall_malicious_fraction(&self) -> f64 {
        let regular = self.total_regular();
        if regular == 0 {
            0.0
        } else {
            self.total_malicious() as f64 / regular as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for (s, name) in Substrate::ALL.iter().zip(Substrate::NAMES) {
            assert_eq!(s.name(), name);
            assert_eq!(Substrate::parse(name), Some(*s));
        }
        assert_eq!(Substrate::parse("Ad-Network"), Some(Substrate::AdNet));
        assert!(Substrate::parse("usenet").is_none());
    }

    #[test]
    fn default_is_exchange() {
        assert_eq!(Substrate::default(), Substrate::Exchange);
    }

    #[test]
    fn exchange_build_matches_legacy_sequence() {
        let config = StudyConfig::builder()
            .seed(99)
            .crawl_scale(0.0003)
            .domain_scale(0.03)
            .build()
            .unwrap();
        let built = build_substrate(&config);
        assert_eq!(built.sources.len(), 9);
        assert_eq!(built.meta.len(), 9);
        // Same step budgets the legacy step_fn computed.
        for p in &slum_exchange::params::PROFILES {
            assert_eq!(built.steps[p.name], steps_for(p, config.crawl_scale));
        }
        // Same web population as the legacy build sequence.
        let mut legacy = WebBuilder::new(config.seed);
        for p in &slum_exchange::params::PROFILES {
            let span = estimated_duration_secs(p, steps_for(p, config.crawl_scale));
            slum_exchange::build_exchange(&mut legacy, p, config.domain_scale, span);
        }
        assert_eq!(built.web.len(), legacy.finish().len());
    }

    #[test]
    fn adnet_and_torrent_substrates_build() {
        for (substrate, n) in [(Substrate::AdNet, 4), (Substrate::Torrent, 3)] {
            let config = StudyConfig::builder()
                .seed(99)
                .crawl_scale(0.0005)
                .domain_scale(0.03)
                .substrate(substrate)
                .build()
                .unwrap();
            let built = build_substrate(&config);
            assert_eq!(built.sources.len(), n, "{substrate:?}");
            assert_eq!(built.meta.len(), n);
            assert_eq!(built.steps.len(), n);
            assert!(built.planned_steps() >= 40 * n as u64);
            assert!(built.web.len() > 20, "{substrate:?} population");
            for (source, m) in built.sources.iter().zip(&built.meta) {
                assert_eq!(source.name(), m.name);
                assert_eq!(source.kind(), m.kind);
            }
        }
    }
}
