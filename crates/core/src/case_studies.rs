//! Case-study extractors (§V).
//!
//! The paper closes with a drill-down into five malware classes it found
//! on the exchanges: hidden-iframe injection (with a three-way
//! taxonomy), deceptive downloads, suspicious server-side redirection,
//! Flash `ExternalInterface` abuse, and the false positives the
//! scanners produced. Each extractor here walks the scanned corpus and
//! surfaces concrete exhibits of one class.

use slum_browser::Browser;
use slum_crawler::CrawlRecord;
use slum_html::attr::HiddenReason;
use slum_html::Document;
use slum_websim::{FalsePositiveKind, GroundTruth, SyntheticWeb, Url};

use crate::scanpipe::ScanOutcome;

/// The §V-A iframe-injection taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IframeInjectionKind {
    /// Category one: barely visible (1×1) iframe in static HTML.
    BarelyVisible,
    /// Category two: invisible via CSS/transparency, often exfiltrating
    /// data through query strings.
    Invisible,
    /// Category three: injected dynamically through JavaScript.
    JsInjected,
}

/// One iframe-injection exhibit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IframeExhibit {
    /// Page the iframe was found on.
    pub url: Url,
    /// Taxonomy bucket.
    pub kind: IframeInjectionKind,
    /// The iframe's `src`.
    pub iframe_src: String,
    /// Whether the src carries query-string exfiltration.
    pub exfiltrates: bool,
}

/// Extracts the §V-A taxonomy from malicious records with captured
/// content.
pub fn iframe_injections(pairs: &[(&CrawlRecord, &ScanOutcome)]) -> Vec<IframeExhibit> {
    let mut out = Vec::new();
    for (record, outcome) in pairs {
        if !outcome.malicious {
            continue;
        }
        let Some(content) = &record.content else { continue };
        let dom = Document::parse(content);

        // Static iframes → categories one and two.
        for id in dom.iframes() {
            let reasons = dom.effective_hidden_reasons(id);
            if reasons.is_empty() {
                continue;
            }
            let src = dom
                .element(id)
                .and_then(|el| el.attr("src"))
                .unwrap_or_default()
                .to_string();
            let exfiltrates = src.contains('?') && src.contains('&');
            let kind = if reasons.contains(&HiddenReason::CssHidden)
                || reasons.contains(&HiddenReason::Transparency)
            {
                IframeInjectionKind::Invisible
            } else {
                IframeInjectionKind::BarelyVisible
            };
            out.push(IframeExhibit { url: record.url.clone(), kind, iframe_src: src, exfiltrates });
        }

        // Dynamic injection → category three (inline scripts writing
        // iframes, detected by the scan findings).
        if outcome
            .findings()
            .contains(&slum_detect::quttera::QutteraFinding::JsInjectedIframe)
        {
            out.push(IframeExhibit {
                url: record.url.clone(),
                kind: IframeInjectionKind::JsInjected,
                iframe_src: String::new(),
                exfiltrates: false,
            });
        }
    }
    out
}

/// One deceptive-download exhibit (§V-B).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DownloadExhibit {
    /// Page pushing the download.
    pub url: Url,
    /// Offered executable names.
    pub filenames: Vec<String>,
    /// Whether the page uses a `data:` URI fake prompt.
    pub uses_data_uri_prompt: bool,
}

/// Extracts deceptive-download exhibits.
pub fn deceptive_downloads(pairs: &[(&CrawlRecord, &ScanOutcome)]) -> Vec<DownloadExhibit> {
    let mut out = Vec::new();
    for (record, outcome) in pairs {
        if !outcome.malicious {
            continue;
        }
        let has_markup = record
            .content
            .as_deref()
            .map(|c| {
                let dom = Document::parse(c);
                !dom.data_uri_anchors().is_empty() || !dom.download_manager_elements().is_empty()
            })
            .unwrap_or(false);
        if record.download_filenames.is_empty() && !has_markup {
            continue;
        }
        out.push(DownloadExhibit {
            url: record.url.clone(),
            filenames: record.download_filenames.clone(),
            uses_data_uri_prompt: has_markup,
        });
    }
    out
}

/// A rotating-redirector exhibit (§V-C): a script URL that resolves to
/// different destinations across fetches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RotatorExhibit {
    /// The page embedding the rotator script.
    pub page: Url,
    /// The rotator script URL.
    pub script: Url,
    /// Destinations observed across probes.
    pub destinations: Vec<Url>,
}

/// Probes suspected redirector scripts: re-fetches each external script
/// URL on malicious redirecting pages several times and reports those
/// that rotate.
pub fn rotating_redirectors(
    web: &SyntheticWeb,
    pairs: &[(&CrawlRecord, &ScanOutcome)],
    probes: usize,
) -> Vec<RotatorExhibit> {
    let mut out: Vec<RotatorExhibit> = Vec::new();
    for (record, outcome) in pairs {
        if !outcome.malicious {
            continue;
        }
        let Some(content) = &record.content else { continue };
        let dom = Document::parse(content);
        for src in dom.external_script_srcs() {
            let Ok(script_url) = slum_browser::session::resolve_href(&record.url, &src) else {
                continue;
            };
            if out.iter().any(|e| e.script == script_url) {
                continue;
            }
            let mut destinations = Vec::new();
            for probe in 0..probes.max(2) {
                // Spread the probes over virtual time: the rotor keys
                // its cycle to the request clock.
                let ctx = slum_websim::RequestContext::browser()
                    .with_time(record.at + probe as u64);
                let outcome = web.fetch(&script_url, &ctx);
                if let Some(target) = outcome.redirect_target() {
                    destinations.push(target.clone());
                }
            }
            let rotates = destinations.len() >= 2
                && destinations.windows(2).any(|w| w[0] != w[1]);
            if rotates {
                out.push(RotatorExhibit {
                    page: record.url.clone(),
                    script: script_url,
                    destinations,
                });
            }
        }
    }
    out
}

/// A Flash click-jack exhibit (§V-D).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlashExhibit {
    /// Page embedding the movie.
    pub url: Url,
    /// Movie name (decompiled class name).
    pub movie_name: String,
    /// `ExternalInterface` targets the click handler fires.
    pub external_calls: Vec<String>,
    /// Pop-ups observed when the click was simulated.
    pub popups: u32,
}

/// Extracts Flash click-jack exhibits by re-loading flagged pages with
/// click simulation enabled.
pub fn flash_clickjacks(
    web: &SyntheticWeb,
    pairs: &[(&CrawlRecord, &ScanOutcome)],
) -> Vec<FlashExhibit> {
    let mut out: Vec<FlashExhibit> = Vec::new();
    let browser = Browser::new(web);
    for (record, outcome) in pairs {
        if !outcome.malicious
            || !outcome.findings().contains(&slum_detect::quttera::QutteraFinding::MaliciousFlash)
        {
            continue;
        }
        if out.iter().any(|e| e.url == record.url) {
            continue;
        }
        let load = browser.load(&record.url);
        for movie in &load.swf_movies {
            if movie.is_clickjack() {
                out.push(FlashExhibit {
                    url: record.url.clone(),
                    movie_name: movie.name.clone(),
                    external_calls: movie.on_click_calls.clone(),
                    popups: load.popups.len() as u32,
                });
            }
        }
    }
    out
}

/// A false-positive exhibit (§V-E): flagged by scanners, actually benign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FalsePositiveExhibit {
    /// The mislabelled page.
    pub url: Url,
    /// What it actually is.
    pub kind: FalsePositiveKind,
    /// The labels the scanners pinned on it.
    pub labels: Vec<String>,
}

/// Finds false positives: records the pipeline marked malicious whose
/// ground truth is benign-but-suspicious. (Requires oracle access — the
/// paper's authors did this drill-down by hand.)
pub fn false_positives(
    web: &SyntheticWeb,
    pairs: &[(&CrawlRecord, &ScanOutcome)],
) -> Vec<FalsePositiveExhibit> {
    let mut out: Vec<FalsePositiveExhibit> = Vec::new();
    for (record, outcome) in pairs {
        if !outcome.malicious {
            continue;
        }
        let Some(page) = web.oracle_page(&record.final_url) else { continue };
        if let GroundTruth::BenignSuspicious(kind) = page.truth {
            if out.iter().any(|e| e.url == record.url) {
                continue;
            }
            out.push(FalsePositiveExhibit {
                url: record.url.clone(),
                kind,
                labels: outcome.labels().iter().map(|s| s.to_string()).collect(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanpipe::ScanPipeline;
    use slum_crawler::CrawlRecord;
    use slum_websim::build::{MaliciousOptions, WebBuilder};
    use slum_websim::{ContentCategory, JsAttack, MaliceKind, Tld};

    fn crawl_one(web: &SyntheticWeb, url: &Url) -> CrawlRecord {
        let load = Browser::new(web).load(url);
        CrawlRecord::from_load("case", 0, 0, &load)
    }

    #[test]
    fn iframe_taxonomy_covers_all_three_categories() {
        let mut b = WebBuilder::new(230);
        let pixel = b.js_site(JsAttack::HiddenIframe, Tld::Com, ContentCategory::Business, false);
        let invis = b.js_site(
            JsAttack::InvisibleIframeExfil,
            Tld::Com,
            ContentCategory::Business,
            false,
        );
        let dynamic =
            b.js_site(JsAttack::DynamicIframe, Tld::Com, ContentCategory::Business, false);
        let web = b.finish();
        let records: Vec<_> =
            [&pixel.url, &invis.url, &dynamic.url].iter().map(|u| crawl_one(&web, u)).collect();
        let pipe = ScanPipeline::new(&web);
        let outcomes = pipe.scan_all(&records);
        let pairs: Vec<_> = records.iter().zip(&outcomes).collect();
        let exhibits = iframe_injections(&pairs);

        let kinds: std::collections::BTreeSet<_> = exhibits.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&IframeInjectionKind::BarelyVisible), "{exhibits:?}");
        assert!(kinds.contains(&IframeInjectionKind::Invisible));
        assert!(kinds.contains(&IframeInjectionKind::JsInjected));
        // The invisible exhibit exfiltrates via query string.
        assert!(exhibits
            .iter()
            .any(|e| e.kind == IframeInjectionKind::Invisible && e.exfiltrates));
    }

    #[test]
    fn deceptive_download_exhibit_found() {
        let mut b = WebBuilder::new(231);
        let spec = b.js_site(
            JsAttack::DeceptiveDownload,
            Tld::Com,
            ContentCategory::Entertainment,
            false,
        );
        let web = b.finish();
        let records = vec![crawl_one(&web, &spec.url)];
        let pipe = ScanPipeline::new(&web);
        let outcomes = pipe.scan_all(&records);
        let pairs: Vec<_> = records.iter().zip(&outcomes).collect();
        let exhibits = deceptive_downloads(&pairs);
        assert_eq!(exhibits.len(), 1);
        assert!(exhibits[0].uses_data_uri_prompt);
    }

    #[test]
    fn rotating_redirector_probed_and_confirmed() {
        let mut b = WebBuilder::new(232);
        let spec = b.rotating_redirector_site(4, ContentCategory::Advertisement);
        let web = b.finish();
        let records = vec![crawl_one(&web, &spec.url)];
        let pipe = ScanPipeline::new(&web);
        let outcomes = pipe.scan_all(&records);
        let pairs: Vec<_> = records.iter().zip(&outcomes).collect();
        let exhibits = rotating_redirectors(&web, &pairs, 4);
        assert_eq!(exhibits.len(), 1, "{exhibits:?}");
        assert!(exhibits[0].destinations.len() >= 2);
    }

    #[test]
    fn flash_clickjack_exhibit_extracted() {
        let mut b = WebBuilder::new(233);
        let spec = b.flash_site(Tld::Com, ContentCategory::Entertainment);
        let web = b.finish();
        let records = vec![crawl_one(&web, &spec.url)];
        let pipe = ScanPipeline::new(&web);
        let outcomes = pipe.scan_all(&records);
        let pairs: Vec<_> = records.iter().zip(&outcomes).collect();
        let exhibits = flash_clickjacks(&web, &pairs);
        assert_eq!(exhibits.len(), 1);
        assert_eq!(exhibits[0].movie_name, "AdFlash46");
        assert!(exhibits[0].external_calls.contains(&"AdFlash.onClick".to_string()));
        assert!(exhibits[0].popups > 0);
    }

    #[test]
    fn false_positives_surfaced_with_labels() {
        let mut b = WebBuilder::new(234);
        let ga = b.false_positive_site(FalsePositiveKind::GoogleAnalytics);
        let web = b.finish();
        let records = vec![crawl_one(&web, &ga.url)];
        let pipe = ScanPipeline::new(&web);
        let outcomes = pipe.scan_all(&records);
        if outcomes[0].malicious {
            let pairs: Vec<_> = records.iter().zip(&outcomes).collect();
            let fps = false_positives(&web, &pairs);
            assert_eq!(fps.len(), 1);
            assert_eq!(fps[0].kind, FalsePositiveKind::GoogleAnalytics);
            assert!(fps[0].labels.iter().any(|l| l.contains("Faceliker")));
        }
    }

    #[test]
    fn genuinely_malicious_pages_are_not_false_positives() {
        let mut b = WebBuilder::new(235);
        let spec = b.malicious_site(MaliciousOptions {
            kind: Some(MaliceKind::Misc),
            cloaked: Some(false),
            ..Default::default()
        });
        let web = b.finish();
        let records = vec![crawl_one(&web, &spec.url)];
        let pipe = ScanPipeline::new(&web);
        let outcomes = pipe.scan_all(&records);
        assert!(outcomes[0].malicious);
        let pairs: Vec<_> = records.iter().zip(&outcomes).collect();
        assert!(false_positives(&web, &pairs).is_empty());
    }
}
