//! Referral filtering (§III-A).
//!
//! Exchanges frequently open their own homepages in the surf iframe
//! ("self-referrals") and pad rotations with popular sites such as
//! Google, Facebook and YouTube ("popular referrals") — likely to garner
//! bogus content views. Both classes are excluded before malware
//! analysis, leaving the "regular URLs".

use std::collections::BTreeSet;

use slum_crawler::CrawlRecord;
use slum_exchange::setup::POPULAR_HOSTS;

/// Classification of one crawled URL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReferralClass {
    /// The exchange's own page.
    SelfReferral,
    /// A genuinely popular site the exchange points at.
    PopularReferral,
    /// A member listing — the analysis corpus.
    Regular,
}

/// The referral filter: knows the exchange hosts and the popular-site
/// hosts.
#[derive(Debug, Clone)]
pub struct ReferralFilter {
    exchange_hosts: BTreeSet<String>,
    popular_hosts: BTreeSet<String>,
}

impl ReferralFilter {
    /// Builds a filter from the exchange profiles in play. Popular hosts
    /// default to the standard set installed by
    /// [`slum_exchange::setup::build_exchange`].
    pub fn from_profiles<'a>(
        profiles: impl IntoIterator<Item = &'a slum_exchange::ExchangeProfile>,
    ) -> Self {
        ReferralFilter::from_hosts(
            profiles.into_iter().map(|p| p.host.to_string()),
            POPULAR_HOSTS.iter().map(|h| h.to_string()),
        )
    }

    /// Builds a filter from raw host sets — the substrate-agnostic
    /// constructor the ad-network and torrent ecosystems use (their
    /// "self" hosts are ad servers / index sites, their "popular" hosts
    /// premium publishers / community mirrors).
    pub fn from_hosts(
        source_hosts: impl IntoIterator<Item = String>,
        popular_hosts: impl IntoIterator<Item = String>,
    ) -> Self {
        ReferralFilter {
            exchange_hosts: source_hosts.into_iter().collect(),
            popular_hosts: popular_hosts.into_iter().collect(),
        }
    }

    /// Adds an extra popular host.
    pub fn with_popular_host(mut self, host: impl Into<String>) -> Self {
        self.popular_hosts.insert(host.into());
        self
    }

    /// Classifies one record by its surfed URL's host.
    pub fn classify(&self, record: &CrawlRecord) -> ReferralClass {
        let host = record.url.host();
        if self.exchange_hosts.contains(host) {
            ReferralClass::SelfReferral
        } else if self.popular_hosts.contains(host) {
            ReferralClass::PopularReferral
        } else {
            ReferralClass::Regular
        }
    }

    /// Splits a record slice into `(self, popular, regular)` counts.
    pub fn counts(&self, records: &[CrawlRecord]) -> (u64, u64, u64) {
        let mut counts = (0, 0, 0);
        for r in records {
            match self.classify(r) {
                ReferralClass::SelfReferral => counts.0 += 1,
                ReferralClass::PopularReferral => counts.1 += 1,
                ReferralClass::Regular => counts.2 += 1,
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slum_browser::har::HarLog;
    use slum_exchange::params::PROFILES;
    use slum_websim::Url;

    fn rec(url: &str) -> CrawlRecord {
        let u = Url::parse(url).unwrap();
        CrawlRecord {
            exchange: "10KHits".into(),
            seq: 0,
            at: 0,
            url: u.clone(),
            final_url: u,
            redirect_hops: 0,
            chain_hosts: vec![],
            via_shortener: false,
            via_js_redirect: false,
            content: None,
            download_filenames: vec![],
            har: HarLog::new(),
            failed: false,
        }
    }

    fn filter() -> ReferralFilter {
        ReferralFilter::from_profiles(PROFILES.iter())
    }

    #[test]
    fn exchange_homepage_is_self_referral() {
        let f = filter();
        assert_eq!(
            f.classify(&rec("http://10khits.exchange.example/")),
            ReferralClass::SelfReferral
        );
        assert_eq!(
            f.classify(&rec("http://otohits.exchange.example/?sid=9")),
            ReferralClass::SelfReferral
        );
    }

    #[test]
    fn popular_sites_detected() {
        let f = filter();
        assert_eq!(
            f.classify(&rec("http://google.popular.example/")),
            ReferralClass::PopularReferral
        );
        assert_eq!(
            f.classify(&rec("http://youtube.popular.example/watch?v=x")),
            ReferralClass::PopularReferral
        );
    }

    #[test]
    fn member_sites_are_regular() {
        let f = filter();
        assert_eq!(f.classify(&rec("http://member-site.example.com/")), ReferralClass::Regular);
    }

    #[test]
    fn counts_partition_totals() {
        let f = filter();
        let records = vec![
            rec("http://10khits.exchange.example/"),
            rec("http://google.popular.example/"),
            rec("http://a.example.com/"),
            rec("http://b.example.com/"),
        ];
        let (s, p, r) = f.counts(&records);
        assert_eq!((s, p, r), (1, 1, 2));
        assert_eq!(s + p + r, records.len() as u64);
    }

    #[test]
    fn extra_popular_host_honoured() {
        let f = filter().with_popular_host("ajax.googleapis.example");
        assert_eq!(
            f.classify(&rec("http://ajax.googleapis.example/lib.js")),
            ReferralClass::PopularReferral
        );
    }
}
