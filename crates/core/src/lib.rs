//! # malware-slums
//!
//! A full reproduction of *Malware Slums: Measurement and Analysis of
//! Malware on Traffic Exchanges* (DSN 2016).
//!
//! The paper crawled nine auto-surf and manual-surf traffic exchanges
//! for several months (1,003,087 URLs), scanned everything with
//! VirusTotal, Quttera and six public blacklists, and found that more
//! than 26% of the URLs surfed on exchanges were malicious. This crate
//! is the study pipeline itself, running over the simulated ecosystem
//! provided by the `slum-*` substrate crates:
//!
//! 1. **Crawl** the simulated exchanges ([`slum_crawler`]).
//! 2. **Filter** self-referrals and popular referrals ([`filter`]).
//! 3. **Scan** every regular URL — URL scans first, then
//!    cloaking-defeating content uploads ([`scanpipe`]).
//! 4. **Categorize** detected malware into the paper's five classes +
//!    miscellaneous ([`categorize`]).
//! 5. **Analyze**: per-exchange rates (Table I/II, Figure 2), temporal
//!    bursts (Figure 3), redirect chains (Figures 4/5), TLD and content
//!    breakdowns (Figures 6/7), shortened-URL statistics (Table IV),
//!    and the case studies of §V ([`temporal`], [`redirects`],
//!    [`breakdown`], [`shortened`], [`case_studies`]).
//!
//! The one-call entry point is [`study::Study::run`]; every published
//! table and figure is reachable through the unified
//! [`study::Study::artifact`] API, and [`study::Study::metrics`]
//! exposes the pipeline's observability counters:
//!
//! ```
//! use malware_slums::artifact::ArtifactKind;
//! use malware_slums::study::{Study, StudyConfig};
//!
//! let config = StudyConfig::builder().crawl_scale(0.0002).build().unwrap();
//! let study = Study::run(&config);
//! let table1 = study.artifact(ArtifactKind::Table1).into_table1().unwrap();
//! assert_eq!(table1.rows.len(), 9);
//! assert!(study.metrics().counter("scan.scans") > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod breakdown;
pub mod case_studies;
pub mod categorize;
pub mod checkpoint;
pub mod countermeasures;
pub mod crawlloss;
pub mod diskfault;
pub mod export;
pub mod faultloss;
pub mod filter;
pub mod redirects;
pub mod report;
pub mod scanpipe;
pub mod shortened;
pub mod snippets;
pub mod staleness;
pub mod study;
pub mod substrate;
pub mod temporal;

pub use artifact::{Artifact, ArtifactKind};
pub use categorize::Category;
pub use checkpoint::{CheckpointError, CheckpointHeader, CheckpointStore};
pub use crawlloss::{run_crawl_loss_experiment, CrawlLossConfig, CrawlLossReport};
pub use diskfault::{DiskFault, DiskFaultProfile};
pub use faultloss::{run_fault_loss_experiment, FaultLossConfig, FaultLossReport};
pub use filter::ReferralClass;
pub use report::Render;
pub use scanpipe::{FaultLog, ScanCaches, ScanOutcome, ScanPipeline, VerdictSource};
pub use study::{ConfigError, Study, StudyConfig, StudyConfigBuilder};
pub use substrate::{SourceMeta, Substrate};
