//! # malware-slums
//!
//! A full reproduction of *Malware Slums: Measurement and Analysis of
//! Malware on Traffic Exchanges* (DSN 2016).
//!
//! The paper crawled nine auto-surf and manual-surf traffic exchanges
//! for several months (1,003,087 URLs), scanned everything with
//! VirusTotal, Quttera and six public blacklists, and found that more
//! than 26% of the URLs surfed on exchanges were malicious. This crate
//! is the study pipeline itself, running over the simulated ecosystem
//! provided by the `slum-*` substrate crates:
//!
//! 1. **Crawl** the simulated exchanges ([`slum_crawler`]).
//! 2. **Filter** self-referrals and popular referrals ([`filter`]).
//! 3. **Scan** every regular URL — URL scans first, then
//!    cloaking-defeating content uploads ([`scanpipe`]).
//! 4. **Categorize** detected malware into the paper's five classes +
//!    miscellaneous ([`categorize`]).
//! 5. **Analyze**: per-exchange rates (Table I/II, Figure 2), temporal
//!    bursts (Figure 3), redirect chains (Figures 4/5), TLD and content
//!    breakdowns (Figures 6/7), shortened-URL statistics (Table IV),
//!    and the case studies of §V ([`temporal`], [`redirects`],
//!    [`breakdown`], [`shortened`], [`case_studies`]).
//!
//! The one-call entry point is [`study::Study::run`]:
//!
//! ```
//! use malware_slums::study::{Study, StudyConfig};
//!
//! let study = Study::run(&StudyConfig { crawl_scale: 0.0002, ..Default::default() });
//! let table1 = study.table1();
//! assert_eq!(table1.rows.len(), 9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod breakdown;
pub mod case_studies;
pub mod categorize;
pub mod countermeasures;
pub mod export;
pub mod filter;
pub mod redirects;
pub mod report;
pub mod scanpipe;
pub mod shortened;
pub mod snippets;
pub mod staleness;
pub mod study;
pub mod temporal;

pub use categorize::Category;
pub use filter::ReferralClass;
pub use scanpipe::{ScanOutcome, ScanPipeline};
pub use study::{Study, StudyConfig};
