//! Temporal analysis (Figure 3) and burst detection (§IV).
//!
//! The paper plots the cumulative count of malicious URLs against the
//! count of crawled URLs per exchange: auto-surf curves are smooth and
//! near-linear (automated rotation), while manual-surf curves show
//! bursts that the paper attributes to fixed-duration paid campaigns.

/// One exchange's Figure 3 series: for every crawled-URL index, the
/// cumulative count of malicious URLs seen so far.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CumulativeSeries {
    /// Exchange name.
    pub exchange: String,
    /// `series[i]` = malicious URLs among the first `i + 1` crawled.
    pub series: Vec<u64>,
}

impl CumulativeSeries {
    /// Builds the series from a malice flag per crawled URL (crawl
    /// order).
    pub fn from_flags(exchange: impl Into<String>, flags: &[bool]) -> CumulativeSeries {
        let mut series = Vec::with_capacity(flags.len());
        let mut cum = 0u64;
        for &m in flags {
            cum += u64::from(m);
            series.push(cum);
        }
        CumulativeSeries { exchange: exchange.into(), series }
    }

    /// Total malicious count.
    pub fn total_malicious(&self) -> u64 {
        self.series.last().copied().unwrap_or(0)
    }

    /// Crawled count.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// True when no URLs were crawled.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Downsamples to at most `points` evenly spaced samples (for
    /// plotting/printing).
    pub fn downsample(&self, points: usize) -> Vec<(usize, u64)> {
        if self.series.is_empty() || points == 0 {
            return Vec::new();
        }
        let step = (self.series.len().max(points) / points).max(1);
        let mut out: Vec<(usize, u64)> =
            self.series.iter().copied().enumerate().step_by(step).collect();
        let last = (self.series.len() - 1, *self.series.last().expect("non-empty"));
        if out.last() != Some(&last) {
            out.push(last);
        }
        out
    }

    /// Burstiness score: the maximum windowed malice rate divided by the
    /// global malice rate. Smooth near-linear curves score ≈1; curves
    /// with campaign bursts score well above.
    pub fn burstiness(&self, window: usize) -> f64 {
        let n = self.series.len();
        if n == 0 {
            return 0.0;
        }
        let total = self.total_malicious() as f64;
        if total == 0.0 {
            return 0.0;
        }
        let global_rate = total / n as f64;
        let window = window.clamp(1, n);
        let mut max_rate: f64 = 0.0;
        for start in 0..=(n - window) {
            let before = if start == 0 { 0 } else { self.series[start - 1] };
            let in_window = self.series[start + window - 1] - before;
            max_rate = max_rate.max(in_window as f64 / window as f64);
        }
        max_rate / global_rate
    }

    /// Detects burst windows: maximal runs where the windowed malice
    /// rate exceeds `factor ×` the global rate. Returns `(start, end)`
    /// index ranges (end exclusive).
    pub fn bursts(&self, window: usize, factor: f64) -> Vec<(usize, usize)> {
        let n = self.series.len();
        if n == 0 {
            return Vec::new();
        }
        let global_rate = self.total_malicious() as f64 / n as f64;
        if global_rate == 0.0 {
            return Vec::new();
        }
        let window = window.clamp(1, n);
        let mut hot: Vec<bool> = vec![false; n];
        for start in 0..=(n - window) {
            let before = if start == 0 { 0 } else { self.series[start - 1] };
            let in_window = self.series[start + window - 1] - before;
            if in_window as f64 / window as f64 > global_rate * factor {
                for flag in hot.iter_mut().skip(start).take(window) {
                    *flag = true;
                }
            }
        }
        // Collapse to ranges.
        let mut ranges = Vec::new();
        let mut start = None;
        for (i, &h) in hot.iter().enumerate() {
            match (h, start) {
                (true, None) => start = Some(i),
                (false, Some(s)) => {
                    ranges.push((s, i));
                    start = None;
                }
                _ => {}
            }
        }
        if let Some(s) = start {
            ranges.push((s, n));
        }
        ranges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Evenly spread malice flags at `rate` over `n` slots, built from
    /// an explicit stride so it is total over every `rate ∈ (0, 1]`.
    /// (The old float-trick construction computed `i % (1.0 / rate) as
    /// usize`, whose cast truncates to 0 for any `rate > 1.0` — a
    /// mod-by-zero panic instead of a rejection.)
    fn uniform_flags(n: usize, rate: f64) -> Vec<bool> {
        assert!(
            rate.is_finite() && rate > 0.0 && rate <= 1.0,
            "rate must be in (0, 1], got {rate}"
        );
        let stride = (1.0 / rate).round().max(1.0) as usize;
        (0..n).map(|i| i % stride == 0).collect()
    }

    #[test]
    fn cumulative_construction() {
        let s = CumulativeSeries::from_flags("X", &[false, true, true, false, true]);
        assert_eq!(s.series, vec![0, 1, 2, 2, 3]);
        assert_eq!(s.total_malicious(), 3);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn smooth_series_scores_low_burstiness() {
        // Every 10th URL malicious: perfectly smooth.
        let flags: Vec<bool> = (0..1_000).map(|i| i % 10 == 0).collect();
        let s = CumulativeSeries::from_flags("auto", &flags);
        let b = s.burstiness(100);
        assert!(b < 1.5, "smooth series burstiness {b}");
        assert!(s.bursts(100, 3.0).is_empty());
    }

    #[test]
    fn bursty_series_scores_high_and_locates_burst() {
        // Background 2% malice, with indices 400..500 at 90%.
        let flags: Vec<bool> =
            (0..1_000).map(|i| if (400..500).contains(&i) { i % 10 != 9 } else { i % 50 == 0 }).collect();
        let s = CumulativeSeries::from_flags("manual", &flags);
        assert!(s.burstiness(50) > 3.0, "burstiness {}", s.burstiness(50));
        let bursts = s.bursts(50, 3.0);
        assert_eq!(bursts.len(), 1);
        let (start, end) = bursts[0];
        assert!(start <= 400 && end >= 500, "burst range ({start}, {end})");
    }

    #[test]
    fn empty_and_clean_series_degenerate_gracefully() {
        let empty = CumulativeSeries::from_flags("e", &[]);
        assert!(empty.is_empty());
        assert_eq!(empty.burstiness(10), 0.0);
        assert!(empty.bursts(10, 3.0).is_empty());

        let clean = CumulativeSeries::from_flags("c", &[false; 100]);
        assert_eq!(clean.burstiness(10), 0.0);
        assert!(clean.bursts(10, 3.0).is_empty());
    }

    #[test]
    fn downsample_keeps_endpoints() {
        let flags: Vec<bool> = (0..500).map(|i| i % 7 == 0).collect();
        let s = CumulativeSeries::from_flags("d", &flags);
        let points = s.downsample(20);
        assert!(points.len() <= 22);
        assert_eq!(points.first().unwrap().0, 0);
        assert_eq!(points.last().unwrap(), &(499, s.total_malicious()));
    }

    #[test]
    fn window_larger_than_series_is_clamped() {
        let s = CumulativeSeries::from_flags("w", &[true, false, true]);
        // Must not panic; with window == n the rate equals the global rate.
        assert!((s.burstiness(1_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn helper_flags_sanity() {
        let flags = uniform_flags(100, 0.1);
        assert_eq!(flags.iter().filter(|&&f| f).count(), 10);
        assert!(flags[0] && flags[10] && !flags[5]);
        // rate = 1.0 is the (0, 1] boundary: every slot flagged.
        assert!(uniform_flags(10, 1.0).iter().all(|&f| f));
        // A rate that doesn't divide n still spreads evenly.
        let sparse = uniform_flags(100, 0.25);
        assert_eq!(sparse.iter().filter(|&&f| f).count(), 25);
    }

    #[test]
    #[should_panic(expected = "rate must be in (0, 1]")]
    fn helper_flags_reject_rate_above_one() {
        // The old construction hit `i % 0` here (the `(1.0 / rate) as
        // usize` cast truncates to 0 for rate > 1.0) and died with a
        // divisor-of-zero panic instead of this explicit rejection.
        let _ = uniform_flags(10, 1.5);
    }

    #[test]
    #[should_panic(expected = "rate must be in (0, 1]")]
    fn helper_flags_reject_zero_rate() {
        let _ = uniform_flags(10, 0.0);
    }
}
