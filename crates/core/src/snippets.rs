//! Exhibit snippet extraction.
//!
//! The paper's §V case studies print the actual offending markup and
//! (de)obfuscated code of each malware class. This module pulls the
//! equivalent snippets out of the scanned corpus: the hidden-iframe
//! element, the packed injector with its statically unpacked form, the
//! deceptive-download prompt, and the decompiled-SWF view.

use slum_html::{Document, NodeId};
use slum_js::flash::SwfMovie;
use slum_js::obfuscate::unpack_all_static;
use slum_websim::{FetchOutcome, RequestContext, SyntheticWeb, Url};

/// A code/markup exhibit with provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snippet {
    /// Where the snippet came from.
    pub url: Url,
    /// What it demonstrates (listing caption).
    pub caption: String,
    /// The extracted markup or source.
    pub listing: String,
}

/// Serializes one element (with attributes) back to a source-like tag
/// string for display.
fn element_source(doc: &Document, id: NodeId) -> String {
    let Some(el) = doc.element(id) else { return String::new() };
    let mut out = format!("<{}", el.name);
    for (k, v) in &el.attrs {
        out.push_str(&format!(" {k}=\"{v}\""));
    }
    out.push('>');
    out
}

/// Extracts the hidden-iframe exhibit from page content (the paper's
/// Code 1/2 shape), if present.
pub fn hidden_iframe_snippet(url: &Url, html: &str) -> Option<Snippet> {
    let doc = Document::parse(html);
    for id in doc.iframes() {
        if doc.is_hidden(id) {
            return Some(Snippet {
                url: url.clone(),
                caption: "A barely visible / invisible iframe element".into(),
                listing: element_source(&doc, id),
            });
        }
    }
    None
}

/// Extracts a packed inline script together with its statically unpacked
/// payload (the paper's "obfuscated multiple times" drill-down).
pub fn unpacked_script_snippet(url: &Url, html: &str) -> Option<Snippet> {
    let doc = Document::parse(html);
    for script in doc.inline_scripts() {
        let (inner, layers) = unpack_all_static(&script);
        if layers > 0 {
            let packed_preview: String = script.chars().take(96).collect();
            return Some(Snippet {
                url: url.clone(),
                caption: format!("Packed script ({layers} layer(s)) and its unpacked payload"),
                listing: format!("// packed ({layers} layers):\n{packed_preview}...\n\n// unpacked:\n{inner}"),
            });
        }
    }
    None
}

/// Extracts the deceptive-download prompt markup (Code 4 shape).
pub fn deceptive_download_snippet(url: &Url, html: &str) -> Option<Snippet> {
    let doc = Document::parse(html);
    let anchor = doc
        .data_uri_anchors()
        .into_iter()
        .chain(doc.download_manager_elements())
        .next()?;
    Some(Snippet {
        url: url.clone(),
        caption: "Fake install prompt pushing a deceptively named executable".into(),
        listing: element_source(&doc, anchor),
    })
}

/// Fetches and "decompiles" the SWF referenced by a Flash page (the
/// Code 6 view: the movie's behavioural surface).
pub fn decompiled_swf_snippet(web: &SyntheticWeb, url: &Url, html: &str) -> Option<Snippet> {
    let doc = Document::parse(html);
    for obj in doc.elements_by_tag("object").into_iter().chain(doc.elements_by_tag("embed")) {
        let Some(el) = doc.element(obj) else { continue };
        let Some(data) = el.attr("data").or_else(|| el.attr("src")) else { continue };
        let Ok(swf_url) = slum_browser::session::resolve_href(url, data) else { continue };
        if let FetchOutcome::Swf { descriptor } =
            web.fetch(&swf_url, &RequestContext::scanner("decompiler"))
        {
            let movie = SwfMovie::parse(&descriptor).ok()?;
            let mut listing = format!(
                "public class {} extends MovieClip {{\n  // stage: {}{}\n",
                movie.name,
                if movie.full_page { "EXACT_FIT full-page" } else { "default" },
                if movie.transparent { ", transparent" } else { "" },
            );
            if let Some(domain) = &movie.allow_domain {
                listing.push_str(&format!("  Security.allowDomain(\"{domain}\");\n"));
            }
            if !movie.on_click_calls.is_empty() {
                listing.push_str("  // MOUSE_UP handler:\n");
                for call in &movie.on_click_calls {
                    listing.push_str(&format!("  ExternalInterface.call(\"{call}\");\n"));
                }
            }
            listing.push('}');
            return Some(Snippet {
                url: swf_url,
                caption: "Decompiled view of the invisible click-jacking movie".into(),
                listing,
            });
        }
    }
    None
}

/// Pulls one representative snippet of every class present in a scanned
/// corpus.
pub fn collect(
    web: &SyntheticWeb,
    pairs: &[(&slum_crawler::CrawlRecord, &crate::scanpipe::ScanOutcome)],
) -> Vec<Snippet> {
    let mut out: Vec<Snippet> = Vec::new();
    let mut have = [false; 4];
    for (record, outcome) in pairs {
        if !outcome.malicious {
            continue;
        }
        let Some(content) = &record.content else { continue };
        if !have[0] {
            if let Some(s) = hidden_iframe_snippet(&record.url, content) {
                out.push(s);
                have[0] = true;
            }
        }
        if !have[1] {
            if let Some(s) = unpacked_script_snippet(&record.url, content) {
                out.push(s);
                have[1] = true;
            }
        }
        if !have[2] {
            if let Some(s) = deceptive_download_snippet(&record.url, content) {
                out.push(s);
                have[2] = true;
            }
        }
        if !have[3] {
            if let Some(s) = decompiled_swf_snippet(web, &record.url, content) {
                out.push(s);
                have[3] = true;
            }
        }
        if have.iter().all(|h| *h) {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use slum_websim::build::WebBuilder;
    use slum_websim::{payload, ContentCategory, Tld};

    fn u(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    #[test]
    fn hidden_iframe_snippet_extracted() {
        let html = payload::pixel_iframe_page("b.example.com", &u("http://trk.example/t"));
        let snippet = hidden_iframe_snippet(&u("http://b.example.com/"), &html).unwrap();
        assert!(snippet.listing.starts_with("<iframe"));
        assert!(snippet.listing.contains("width=\"1\""));
        assert!(snippet.listing.contains("http://trk.example/t"));
    }

    #[test]
    fn packed_script_snippet_shows_both_forms() {
        let html =
            payload::js_injected_iframe_page("s.example.com", &u("http://evil.example/x"), 2);
        let snippet = unpacked_script_snippet(&u("http://s.example.com/"), &html).unwrap();
        assert!(snippet.caption.contains("2 layer"));
        assert!(snippet.listing.contains("// packed"));
        assert!(snippet.listing.contains("document.write"), "unpacked payload visible");
    }

    #[test]
    fn deceptive_download_snippet_extracted() {
        let html = payload::deceptive_download_page("anime.example.com", "dl.example.net");
        let snippet = deceptive_download_snippet(&u("http://anime.example.com/"), &html).unwrap();
        assert!(snippet.listing.contains("data-dm") || snippet.listing.contains("data:"));
    }

    #[test]
    fn swf_decompile_snippet_extracted() {
        let mut b = WebBuilder::new(600);
        let spec = b.flash_site(Tld::Com, ContentCategory::Entertainment);
        let web = b.finish();
        let page = web.oracle_page(&spec.url).unwrap();
        let snippet = decompiled_swf_snippet(&web, &spec.url, &page.html).unwrap();
        assert!(snippet.listing.contains("class AdFlash46"));
        assert!(snippet.listing.contains("ExternalInterface.call(\"AdFlash.onClick\")"));
        assert!(snippet.listing.contains("allowDomain"));
    }

    #[test]
    fn benign_pages_yield_no_snippets() {
        let html = payload::benign_page("ok.example.com", ContentCategory::Business);
        let url = u("http://ok.example.com/");
        assert!(hidden_iframe_snippet(&url, &html).is_none());
        assert!(unpacked_script_snippet(&url, &html).is_none());
        assert!(deceptive_download_snippet(&url, &html).is_none());
    }

    #[test]
    fn collect_finds_distinct_classes() {
        use crate::scanpipe::ScanPipeline;
        use slum_browser::Browser;
        use slum_websim::JsAttack;

        let mut b = WebBuilder::new(601);
        let iframe = b.js_site(JsAttack::HiddenIframe, Tld::Com, ContentCategory::Business, false);
        let dl = b.js_site(
            JsAttack::DeceptiveDownload,
            Tld::Com,
            ContentCategory::Entertainment,
            false,
        );
        let flash = b.flash_site(Tld::Com, ContentCategory::Entertainment);
        let web = b.finish();
        let records: Vec<_> = [&iframe.url, &dl.url, &flash.url]
            .iter()
            .map(|u| {
                let load = Browser::new(&web).load(u);
                slum_crawler::CrawlRecord::from_load("snip", 0, 0, &load)
            })
            .collect();
        let pipe = ScanPipeline::new(&web);
        let outcomes = pipe.scan_all(&records);
        let pairs: Vec<_> = records.iter().zip(&outcomes).collect();
        let snippets = collect(&web, &pairs);
        assert!(snippets.len() >= 3, "{snippets:#?}");
    }
}
