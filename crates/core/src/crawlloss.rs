//! Crawl-loss-under-exchange-faults experiment.
//!
//! [`crate::faultloss`] quantifies what *scan-service* unavailability
//! costs; this experiment quantifies what *exchange-side* downtime
//! costs. It runs the same seeded study twice — once with an inert
//! crawl-fault profile, once under a [`CrawlFaultProfile`] — and
//! compares the per-exchange Table I statistics. Crawl faults change
//! the corpus itself (outage windows lose surf slots, a permanent
//! shutdown truncates an exchange's crawl entirely), so the interesting
//! question is not which verdicts flip but how the *measured malice
//! rates* shift when an exchange's observation window shrinks — the
//! Traffic-Monsoon bias problem: the paper's Table I rows rest on very
//! different per-exchange sample sizes, and mid-study downtime skews
//! them further.

use slum_crawler::CrawlFaultProfile;

use crate::study::{steps_for, Study, StudyConfig};
use slum_exchange::params::PROFILES;

/// Parameters of the crawl-loss experiment.
#[derive(Debug, Clone)]
pub struct CrawlLossConfig {
    /// Study seed (shared by both runs).
    pub seed: u64,
    /// Crawl-volume scale for both runs.
    pub crawl_scale: f64,
    /// Domain-pool scale for both runs.
    pub domain_scale: f64,
    /// The crawl-fault profile the degraded run crawls under.
    pub profile: CrawlFaultProfile,
}

impl Default for CrawlLossConfig {
    fn default() -> Self {
        CrawlLossConfig {
            seed: 2016,
            crawl_scale: 0.0003,
            domain_scale: 0.03,
            profile: CrawlFaultProfile::default_profile(),
        }
    }
}

/// Per-exchange comparison between the fault-free and the faulted
/// crawl.
#[derive(Debug, Clone, PartialEq)]
pub struct ExchangeBiasRow {
    /// Exchange name.
    pub exchange: String,
    /// Surf slots planned for this exchange (identical in both runs).
    pub planned_steps: u64,
    /// Pages logged by the fault-free crawl (equals the plan).
    pub pages_baseline: u64,
    /// Pages logged under the fault profile.
    pub pages_faulted: u64,
    /// Slots lost to faults (outages, bans, lockouts, shutdown).
    pub lost_steps: u64,
    /// Virtual seconds the faulted crawl spent down on this exchange.
    pub downtime_secs: u64,
    /// Virtual second the exchange permanently shut down, if it did.
    pub shutdown_at: Option<u64>,
    /// Regular (analyzed) records in the baseline.
    pub regular_baseline: u64,
    /// Regular records under faults.
    pub regular_faulted: u64,
    /// Malicious verdicts in the baseline.
    pub malicious_baseline: u64,
    /// Malicious verdicts under faults.
    pub malicious_faulted: u64,
}

impl ExchangeBiasRow {
    /// Baseline malice rate over regular records.
    pub fn rate_baseline(&self) -> f64 {
        rate(self.malicious_baseline, self.regular_baseline)
    }

    /// Faulted malice rate over regular records.
    pub fn rate_faulted(&self) -> f64 {
        rate(self.malicious_faulted, self.regular_faulted)
    }

    /// How far exchange downtime moved this row's measured malice rate
    /// (positive: the shrunken window *over*states malice).
    pub fn rate_bias(&self) -> f64 {
        self.rate_faulted() - self.rate_baseline()
    }
}

fn rate(malicious: u64, regular: u64) -> f64 {
    if regular == 0 {
        0.0
    } else {
        malicious as f64 / regular as f64
    }
}

/// Outcome of the crawl-loss experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct CrawlLossReport {
    /// Name of the crawl-fault profile the degraded run used.
    pub profile: String,
    /// Per-exchange comparison rows, in Table I order.
    pub rows: Vec<ExchangeBiasRow>,
    /// Total pages in the fault-free crawl.
    pub pages_baseline: u64,
    /// Total pages under the fault profile.
    pub pages_faulted: u64,
    /// Total slots lost to faults.
    pub lost_steps: u64,
    /// Exchanges that permanently shut down mid-crawl.
    pub shutdowns: u64,
    /// Overall malice rate (malicious / regular) in the baseline.
    pub overall_rate_baseline: f64,
    /// Overall malice rate under faults.
    pub overall_rate_faulted: f64,
}

impl CrawlLossReport {
    /// Fraction of the planned corpus the faulted crawl still captured.
    pub fn coverage_fraction(&self) -> f64 {
        rate(self.pages_faulted, self.pages_baseline)
    }

    /// How far downtime moved the overall Table I malice rate.
    pub fn overall_bias(&self) -> f64 {
        self.overall_rate_faulted - self.overall_rate_baseline
    }
}

/// Runs the experiment: the same seeded study with an inert and with
/// `config.profile`'s crawl-fault schedule, compared per exchange.
///
/// # Panics
///
/// Panics if either study configuration fails validation, or if the
/// fault-free baseline loses slots (which would mean the inert path is
/// not inert).
pub fn run_crawl_loss_experiment(config: &CrawlLossConfig) -> CrawlLossReport {
    let base = |profile: CrawlFaultProfile| -> Study {
        let study_config = StudyConfig::builder()
            .seed(config.seed)
            .crawl_scale(config.crawl_scale)
            .domain_scale(config.domain_scale)
            .scan_workers(1)
            .crawl_fault_profile(profile)
            .build()
            .expect("valid crawl-loss study config");
        Study::run(&study_config)
    };
    let baseline = base(CrawlFaultProfile::none());
    let faulted = base(config.profile.clone());
    assert!(
        baseline.health.iter().all(|h| h.lost_steps == 0),
        "the inert baseline must not lose slots"
    );

    let t1_base = baseline.table1();
    let t1_faulted = faulted.table1();
    let mut rows = Vec::with_capacity(t1_base.rows.len());
    for (row_base, row_faulted) in t1_base.rows.iter().zip(&t1_faulted.rows) {
        assert_eq!(row_base.exchange, row_faulted.exchange, "Table I row order must match");
        let health = faulted
            .health
            .iter()
            .find(|h| h.exchange == row_base.exchange)
            .expect("health log per exchange");
        let profile =
            PROFILES.iter().find(|p| p.name == row_base.exchange).expect("known exchange");
        rows.push(ExchangeBiasRow {
            exchange: row_base.exchange.clone(),
            planned_steps: steps_for(profile, config.crawl_scale),
            pages_baseline: row_base.crawled,
            pages_faulted: row_faulted.crawled,
            lost_steps: health.lost_steps,
            downtime_secs: health.downtime_secs,
            shutdown_at: health.shutdown_at,
            regular_baseline: row_base.regular,
            regular_faulted: row_faulted.regular,
            malicious_baseline: row_base.malicious,
            malicious_faulted: row_faulted.malicious,
        });
    }

    let sum = |f: fn(&ExchangeBiasRow) -> u64| rows.iter().map(f).sum::<u64>();
    CrawlLossReport {
        profile: config.profile.name.clone(),
        pages_baseline: sum(|r| r.pages_baseline),
        pages_faulted: sum(|r| r.pages_faulted),
        lost_steps: sum(|r| r.lost_steps),
        shutdowns: rows.iter().filter(|r| r.shutdown_at.is_some()).count() as u64,
        overall_rate_baseline: rate(sum(|r| r.malicious_baseline), sum(|r| r.regular_baseline)),
        overall_rate_faulted: rate(sum(|r| r.malicious_faulted), sum(|r| r.regular_faulted)),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_profile_biases_nothing() {
        let report = run_crawl_loss_experiment(&CrawlLossConfig {
            profile: CrawlFaultProfile::none(),
            ..CrawlLossConfig::default()
        });
        assert_eq!(report.pages_faulted, report.pages_baseline);
        assert_eq!(report.lost_steps, 0);
        assert_eq!(report.shutdowns, 0);
        assert_eq!(report.coverage_fraction(), 1.0);
        assert_eq!(report.overall_bias(), 0.0);
        for row in &report.rows {
            assert_eq!(row.pages_faulted, row.pages_baseline);
            assert_eq!(row.pages_baseline, row.planned_steps);
            assert_eq!(row.rate_bias(), 0.0, "{}", row.exchange);
        }
    }

    #[test]
    fn default_profile_shrinks_the_corpus() {
        let report = run_crawl_loss_experiment(&CrawlLossConfig::default());
        assert_eq!(report.profile, "default");
        assert_eq!(report.rows.len(), 9);
        assert!(report.lost_steps > 0, "outage windows must cost slots");
        assert!(report.pages_faulted < report.pages_baseline);
        let coverage = report.coverage_fraction();
        assert!(coverage > 0.0 && coverage < 1.0, "coverage {coverage}");
        for row in &report.rows {
            assert_eq!(
                row.pages_faulted + row.lost_steps,
                row.planned_steps,
                "{}: slots must balance",
                row.exchange
            );
        }
    }

    #[test]
    fn harsh_profile_loses_more_than_default() {
        let default = run_crawl_loss_experiment(&CrawlLossConfig::default());
        let harsh = run_crawl_loss_experiment(&CrawlLossConfig {
            profile: CrawlFaultProfile::harsh(),
            ..CrawlLossConfig::default()
        });
        assert!(
            harsh.lost_steps > default.lost_steps,
            "harsh {} vs default {}",
            harsh.lost_steps,
            default.lost_steps
        );
        assert!(harsh.coverage_fraction() < default.coverage_fraction());
    }

    #[test]
    fn experiment_is_deterministic() {
        let a = run_crawl_loss_experiment(&CrawlLossConfig::default());
        let b = run_crawl_loss_experiment(&CrawlLossConfig::default());
        assert_eq!(a, b);
    }
}
