//! Redirect-chain analysis (Figures 4 and 5).
//!
//! §IV-A4: "URLs involved in redirections sometimes make long chains by
//! redirecting multiple times before reaching their destination URLs"
//! (Figure 4 shows a five-hop example) and "several malicious URLs
//! redirect users up to 7 times" (Figure 5 plots the histogram).

use std::collections::BTreeMap;

use slum_crawler::CrawlRecord;

use crate::scanpipe::ScanOutcome;

/// Figure 5: histogram of redirect counts among malicious URLs that
/// redirect at least once.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RedirectHistogram {
    /// hop count → number of URLs.
    pub counts: BTreeMap<u32, u64>,
}

impl RedirectHistogram {
    /// Builds the histogram over malicious redirecting records.
    pub fn build(pairs: &[(&CrawlRecord, &ScanOutcome)]) -> RedirectHistogram {
        let mut counts = BTreeMap::new();
        for (record, outcome) in pairs {
            if outcome.malicious && record.redirect_hops > 0 {
                *counts.entry(record.redirect_hops).or_insert(0) += 1;
            }
        }
        RedirectHistogram { counts }
    }

    /// Total redirecting malicious URLs.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// The maximum hop count observed.
    pub fn max_hops(&self) -> u32 {
        self.counts.keys().max().copied().unwrap_or(0)
    }

    /// Count at exactly `hops`.
    pub fn at(&self, hops: u32) -> u64 {
        self.counts.get(&hops).copied().unwrap_or(0)
    }

    /// True when counts decrease as hop count grows (the Figure 5
    /// monotone shape), tolerating ties.
    ///
    /// Absent buckets in `1..=max_hops` count as zero: a histogram
    /// with counts at hops 1 and 3 but none at 2 is the shape
    /// 5 → 0 → 3, which is *not* monotone — comparing only the present
    /// `BTreeMap` keys used to miss exactly that case.
    pub fn is_monotone_decreasing(&self) -> bool {
        let values: Vec<u64> = (1..=self.max_hops()).map(|hops| self.at(hops)).collect();
        values.windows(2).all(|w| w[0] >= w[1])
    }
}

/// A rendered redirect chain — the Figure 4 exhibit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainExhibit {
    /// Exchange the chain was observed on.
    pub exchange: String,
    /// Hosts from entry to destination.
    pub hosts: Vec<String>,
    /// Hop count.
    pub hops: u32,
}

/// Picks the longest malicious redirect chain in the corpus as the
/// Figure 4 exhibit.
///
/// Hop-count ties break deterministically on the lexicographically
/// smallest `(url, chain, exchange)`, so the exhibit is a function of
/// the corpus *contents* — `max_by_key` alone keeps the last maximum,
/// which silently changes the figure whenever record order does.
pub fn longest_chain(pairs: &[(&CrawlRecord, &ScanOutcome)]) -> Option<ChainExhibit> {
    pairs
        .iter()
        .filter(|(r, o)| o.malicious && r.redirect_hops > 0)
        .max_by_key(|(r, _)| {
            (
                r.redirect_hops,
                std::cmp::Reverse((r.url.canonical(), r.chain_hosts.clone(), r.exchange.clone())),
            )
        })
        .map(|(r, _)| {
            // chain_hosts collapses consecutive repeats, so a chain of
            // `hops` redirects carries between 1 and hops+1 hosts.
            debug_assert!(
                !r.chain_hosts.is_empty()
                    && r.chain_hosts.len() as u64 <= u64::from(r.redirect_hops) + 1,
                "chain_hosts len {} inconsistent with redirect_hops {}",
                r.chain_hosts.len(),
                r.redirect_hops
            );
            ChainExhibit {
                exchange: r.exchange.clone(),
                hosts: r.chain_hosts.clone(),
                hops: r.redirect_hops,
            }
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use slum_browser::har::HarLog;
    use slum_detect::quttera::{QutteraReport, QutteraVerdict};
    use slum_detect::virustotal::VtReport;
    use slum_websim::Url;

    fn record(hops: u32) -> CrawlRecord {
        CrawlRecord {
            exchange: "X".into(),
            seq: 0,
            at: 0,
            url: Url::parse("http://entry.example/").unwrap(),
            final_url: Url::parse("http://dest.example/").unwrap(),
            redirect_hops: hops,
            chain_hosts: (0..=hops).map(|i| format!("h{i}.example")).collect(),
            via_shortener: false,
            via_js_redirect: false,
            content: None,
            download_filenames: vec![],
            har: HarLog::new(),
            failed: false,
        }
    }

    fn outcome(malicious: bool) -> ScanOutcome {
        ScanOutcome {
            malicious,
            vt: VtReport { detections: vec![], total_engines: 12, threshold: 2 },
            quttera: QutteraReport {
                url: Url::parse("http://x.example/").unwrap(),
                findings: vec![],
                verdict: QutteraVerdict::Clean,
            },
            blacklisted_domain: None,
            needed_content_upload: false,
            source: crate::scanpipe::VerdictSource::Full,
            faults: crate::scanpipe::FaultLog::default(),
        }
    }

    fn record_with_url(hops: u32, url: &str, host_prefix: &str) -> CrawlRecord {
        CrawlRecord {
            url: Url::parse(url).unwrap(),
            chain_hosts: (0..=hops).map(|i| format!("{host_prefix}{i}.example")).collect(),
            ..record(hops)
        }
    }

    #[test]
    fn histogram_counts_only_malicious_redirecting() {
        let records = vec![record(1), record(1), record(2), record(0), record(3)];
        let outcomes =
            vec![outcome(true), outcome(true), outcome(true), outcome(true), outcome(false)];
        let pairs: Vec<_> = records.iter().zip(&outcomes).collect();
        let h = RedirectHistogram::build(&pairs);
        assert_eq!(h.at(1), 2);
        assert_eq!(h.at(2), 1);
        assert_eq!(h.at(3), 0, "benign chains excluded");
        assert_eq!(h.total(), 3);
        assert_eq!(h.max_hops(), 2);
    }

    #[test]
    fn monotone_check() {
        let mut h = RedirectHistogram::default();
        h.counts.insert(1, 100);
        h.counts.insert(2, 50);
        h.counts.insert(3, 50);
        assert!(h.is_monotone_decreasing());
        h.counts.insert(4, 80);
        assert!(!h.is_monotone_decreasing());
    }

    #[test]
    fn gapped_histogram_is_not_monotone() {
        // Counts at hops 1 and 3 but none at 2: the rendered shape is
        // 5 → 0 → 3, which rises again after the gap. Comparing only
        // the present BTreeMap keys saw [5, 3] and wrongly said
        // monotone.
        let mut h = RedirectHistogram::default();
        h.counts.insert(1, 5);
        h.counts.insert(3, 3);
        assert!(!h.is_monotone_decreasing(), "gap at hops=2 breaks monotonicity");

        // A gap at the *tail* is fine: 5 → 3 → 0 never rises.
        let mut tail = RedirectHistogram::default();
        tail.counts.insert(1, 5);
        tail.counts.insert(2, 3);
        assert!(tail.is_monotone_decreasing());
    }

    #[test]
    fn longest_chain_selected() {
        let records = vec![record(2), record(5), record(7), record(6)];
        let outcomes = vec![outcome(true), outcome(true), outcome(false), outcome(true)];
        let pairs: Vec<_> = records.iter().zip(&outcomes).collect();
        let exhibit = longest_chain(&pairs).unwrap();
        assert_eq!(exhibit.hops, 6, "the 7-hop chain is benign");
        assert_eq!(exhibit.hosts.len(), 7);
    }

    #[test]
    fn longest_chain_ties_break_by_url_not_input_position() {
        // Two malicious chains tie at 4 hops. The exhibit must be the
        // lexicographically smallest URL ("http://aaa...") no matter
        // where it sits in the input — `max_by_key`'s last-max-wins
        // behaviour used to pick whichever tied record came last.
        let first = record_with_url(4, "http://aaa.example/", "aaa");
        let second = record_with_url(4, "http://zzz.example/", "zzz");
        let outcomes = vec![outcome(true), outcome(true)];

        let pairs: Vec<_> = [&first, &second].into_iter().zip(&outcomes).collect();
        let exhibit = longest_chain(&pairs).unwrap();
        assert_eq!(exhibit.hosts[0], "aaa0.example", "smallest URL wins the tie");

        let reversed: Vec<_> = [&second, &first].into_iter().zip(&outcomes).collect();
        assert_eq!(longest_chain(&reversed).unwrap(), exhibit, "order must not matter");
    }

    #[test]
    fn empty_corpus_has_no_exhibit() {
        assert!(longest_chain(&[]).is_none());
        let h = RedirectHistogram::build(&[]);
        assert_eq!(h.total(), 0);
        assert_eq!(h.max_hops(), 0);
    }
}
