//! Token stream to DOM tree construction.

use crate::dom::{Document, Element, NodeId, NodeKind};
use crate::tokenizer::{tokenize, Token};

/// Void elements never take children; their start tag implies an
/// immediate close.
const VOID_ELEMENTS: [&str; 10] =
    ["br", "hr", "img", "input", "meta", "link", "area", "base", "col", "embed"];

/// Parses `html` into a [`Document`].
///
/// Recovery model:
/// - unclosed elements are closed at end-of-input;
/// - an end tag with no matching open element is dropped;
/// - an end tag that skips open elements closes everything above the
///   match (standard "implied end tags" behaviour).
pub fn parse_document(html: &str) -> Document {
    let mut doc = Document::new();
    let mut stack: Vec<(NodeId, String)> = vec![(NodeId::ROOT, String::new())];

    for token in tokenize(html) {
        let top = stack.last().expect("stack never empties").0;
        match token {
            Token::StartTag { name, attrs, self_closing } => {
                let is_void = VOID_ELEMENTS.contains(&name.as_str());
                let id = doc.append(top, NodeKind::Element(Element { name: name.clone(), attrs }));
                if !self_closing && !is_void {
                    stack.push((id, name));
                }
            }
            Token::EndTag { name } => {
                if let Some(pos) = stack.iter().rposition(|(_, n)| *n == name) {
                    if pos > 0 {
                        stack.truncate(pos);
                    }
                }
            }
            Token::Text(text) => {
                doc.append(top, NodeKind::Text(text));
            }
            Token::Comment(body) => {
                doc.append(top, NodeKind::Comment(body));
            }
            Token::Doctype(_) => {}
        }
    }
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::NodeId;

    fn tag_names(doc: &Document) -> Vec<String> {
        doc.descendants(NodeId::ROOT)
            .into_iter()
            .filter_map(|id| doc.element(id).map(|e| e.name.clone()))
            .collect()
    }

    #[test]
    fn nesting_builds_expected_tree() {
        let doc = parse_document("<html><body><div><p>x</p></div></body></html>");
        assert_eq!(tag_names(&doc), vec!["html", "body", "div", "p"]);
        let p = doc.elements_by_tag("p")[0];
        let div = doc.elements_by_tag("div")[0];
        assert_eq!(doc.node(p).parent, Some(div));
    }

    #[test]
    fn void_elements_take_no_children() {
        let doc = parse_document("<div><img src=a><p>t</p></div>");
        let img = doc.elements_by_tag("img")[0];
        assert!(doc.node(img).children.is_empty());
        let p = doc.elements_by_tag("p")[0];
        let div = doc.elements_by_tag("div")[0];
        assert_eq!(doc.node(p).parent, Some(div));
    }

    #[test]
    fn unclosed_elements_close_at_eof() {
        let doc = parse_document("<div><span>abc");
        assert_eq!(tag_names(&doc), vec!["div", "span"]);
        assert_eq!(doc.text_content(NodeId::ROOT), "abc");
    }

    #[test]
    fn stray_end_tag_is_ignored() {
        let doc = parse_document("</div><p>x</p>");
        assert_eq!(tag_names(&doc), vec!["p"]);
    }

    #[test]
    fn mismatched_end_tag_closes_through() {
        // </div> should close the still-open <span> too.
        let doc = parse_document("<div><span>a</div><p>b</p>");
        let p = doc.elements_by_tag("p")[0];
        assert_eq!(doc.node(p).parent, Some(NodeId::ROOT));
    }

    #[test]
    fn comments_are_preserved() {
        let doc = parse_document("<div><!-- note --></div>");
        let div = doc.elements_by_tag("div")[0];
        let child = doc.node(div).children[0];
        assert!(matches!(&doc.node(child).kind, NodeKind::Comment(c) if c == " note "));
    }

    #[test]
    fn doctype_is_dropped() {
        let doc = parse_document("<!DOCTYPE html><html></html>");
        assert_eq!(tag_names(&doc), vec!["html"]);
    }

    #[test]
    fn deep_nesting_does_not_overflow() {
        let mut html = String::new();
        for _ in 0..5_000 {
            html.push_str("<div>");
        }
        let doc = parse_document(&html);
        assert_eq!(doc.elements_by_tag("div").len(), 5_000);
    }
}
