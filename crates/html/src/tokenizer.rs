//! A forgiving HTML tokenizer.
//!
//! The tokenizer turns raw markup into a flat stream of [`Token`]s. It
//! never fails: malformed input degrades into text tokens, mirroring how
//! browsers cope with the broken markup that is endemic on the kind of
//! low-quality sites found on traffic exchanges.

use crate::escape::decode_entities;

/// A single lexical unit of an HTML document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// An opening tag such as `<iframe src="...">`. Attribute names are
    /// lower-cased; values are entity-decoded.
    StartTag {
        /// Lower-cased tag name.
        name: String,
        /// Attributes in source order. Duplicate names are preserved.
        attrs: Vec<(String, String)>,
        /// Whether the tag ended with `/>`.
        self_closing: bool,
    },
    /// A closing tag such as `</iframe>`.
    EndTag {
        /// Lower-cased tag name.
        name: String,
    },
    /// A run of character data (entity-decoded).
    Text(String),
    /// An HTML comment, with the `<!--`/`-->` delimiters stripped.
    Comment(String),
    /// A doctype declaration, e.g. `html` for `<!DOCTYPE html>`.
    Doctype(String),
}

/// Elements whose content is raw text (no nested markup) per the HTML
/// spec. `<script>` bodies in particular must not be re-tokenized, since
/// obfuscated JavaScript routinely contains `<` and `>`.
const RAW_TEXT_ELEMENTS: [&str; 4] = ["script", "style", "textarea", "title"];

/// Tokenizes `input` into a vector of [`Token`]s.
///
/// The tokenizer is total: any byte sequence that is valid UTF-8 produces
/// a token stream without panicking.
///
/// # Examples
///
/// ```
/// use slum_html::{tokenize, Token};
///
/// let tokens = tokenize("<p class=a>hi</p>");
/// assert_eq!(tokens.len(), 3);
/// assert!(matches!(&tokens[1], Token::Text(t) if t == "hi"));
/// ```
pub fn tokenize(input: &str) -> Vec<Token> {
    Tokenizer::new(input).run()
}

struct Tokenizer<'a> {
    input: &'a str,
    pos: usize,
    tokens: Vec<Token>,
}

impl<'a> Tokenizer<'a> {
    fn new(input: &'a str) -> Self {
        Tokenizer { input, pos: 0, tokens: Vec::new() }
    }

    fn run(mut self) -> Vec<Token> {
        while self.pos < self.input.len() {
            if self.rest().starts_with("<!--") {
                self.consume_comment();
            } else if self.rest().starts_with("<!") {
                self.consume_doctype();
            } else if self.rest().starts_with("</") {
                self.consume_end_tag();
            } else if self.rest().starts_with('<') && self.looks_like_tag() {
                self.consume_start_tag();
            } else {
                self.consume_text();
            }
        }
        self.tokens
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    /// A `<` only opens a tag when followed by an ASCII letter; otherwise
    /// it is literal text (e.g. `a < b` in script-free prose).
    fn looks_like_tag(&self) -> bool {
        self.rest()[1..].chars().next().is_some_and(|c| c.is_ascii_alphabetic())
    }

    fn consume_text(&mut self) {
        let rest = self.rest();
        let mut end = rest.len();
        let mut iter = rest.char_indices();
        // Skip the current char (which may itself be `<` that failed the
        // tag test) and stop at the next plausible tag opener.
        let _ = iter.next();
        for (i, c) in iter {
            if c == '<' {
                let after = &rest[i + 1..];
                let opener = after
                    .chars()
                    .next()
                    .is_some_and(|n| n.is_ascii_alphabetic() || n == '/' || n == '!');
                if opener {
                    end = i;
                    break;
                }
            }
        }
        let text = &rest[..end];
        self.pos += end;
        if !text.is_empty() {
            self.tokens.push(Token::Text(decode_entities(text)));
        }
    }

    fn consume_comment(&mut self) {
        let rest = &self.rest()[4..];
        let (body, advance) = match rest.find("-->") {
            Some(end) => (&rest[..end], 4 + end + 3),
            None => (rest, self.input.len() - self.pos),
        };
        self.tokens.push(Token::Comment(body.to_string()));
        self.pos += advance;
    }

    fn consume_doctype(&mut self) {
        let rest = &self.rest()[2..];
        let (body, advance) = match rest.find('>') {
            Some(end) => (&rest[..end], 2 + end + 1),
            None => (rest, self.input.len() - self.pos),
        };
        self.tokens.push(Token::Doctype(body.trim().to_string()));
        self.pos += advance;
    }

    fn consume_end_tag(&mut self) {
        let rest = &self.rest()[2..];
        let (body, advance) = match rest.find('>') {
            Some(end) => (&rest[..end], 2 + end + 1),
            None => (rest, self.input.len() - self.pos),
        };
        let name: String = body
            .trim()
            .chars()
            .take_while(|c| !c.is_whitespace())
            .collect::<String>()
            .to_ascii_lowercase();
        self.pos += advance;
        if !name.is_empty() {
            self.tokens.push(Token::EndTag { name });
        }
    }

    fn consume_start_tag(&mut self) {
        let rest = self.rest();
        let Some(gt) = find_tag_end(rest) else {
            // No closing `>`: treat the remainder as text.
            self.tokens.push(Token::Text(decode_entities(rest)));
            self.pos = self.input.len();
            return;
        };
        let body = &rest[1..gt];
        let self_closing = body.ends_with('/');
        let body = body.strip_suffix('/').unwrap_or(body);
        let (name, attrs) = parse_tag_body(body);
        self.pos += gt + 1;

        let is_raw = RAW_TEXT_ELEMENTS.contains(&name.as_str()) && !self_closing;
        self.tokens.push(Token::StartTag { name: name.clone(), attrs, self_closing });

        if is_raw {
            self.consume_raw_text(&name);
        }
    }

    /// After a raw-text start tag, scoop everything up to the matching
    /// case-insensitive end tag into a single text token.
    fn consume_raw_text(&mut self, name: &str) {
        let rest = self.rest();
        let closer = format!("</{name}");
        let lower = rest.to_ascii_lowercase();
        match lower.find(&closer) {
            Some(idx) => {
                let body = &rest[..idx];
                if !body.is_empty() {
                    self.tokens.push(Token::Text(body.to_string()));
                }
                // Consume the end tag too.
                let after = &rest[idx..];
                let end = after.find('>').map(|g| idx + g + 1).unwrap_or(rest.len());
                self.pos += end;
                self.tokens.push(Token::EndTag { name: name.to_string() });
            }
            None => {
                if !rest.is_empty() {
                    self.tokens.push(Token::Text(rest.to_string()));
                }
                self.pos = self.input.len();
                self.tokens.push(Token::EndTag { name: name.to_string() });
            }
        }
    }
}

/// Finds the index of the `>` terminating a tag that starts at byte 0 of
/// `s`, honouring quoted attribute values which may contain `>`.
fn find_tag_end(s: &str) -> Option<usize> {
    let mut quote: Option<char> = None;
    for (i, c) in s.char_indices().skip(1) {
        match (quote, c) {
            (None, '"') | (None, '\'') => quote = Some(c),
            (Some(q), c2) if q == c2 => quote = None,
            (None, '>') => return Some(i),
            _ => {}
        }
    }
    None
}

/// Parses a tag body (`name attr=val attr2="val2"`) into a lower-cased
/// name plus attribute list.
///
/// Tag names are truncated at the first character outside
/// `[A-Za-z0-9-]` — hostile markup like `<a"""">` yields element `a`,
/// keeping serialization round-trippable.
fn parse_tag_body(body: &str) -> (String, Vec<(String, String)>) {
    let name_end = body
        .char_indices()
        .find(|&(_, c)| !(c.is_ascii_alphanumeric() || c == '-'))
        .map(|(i, _)| i)
        .unwrap_or(body.len());
    let name = body[..name_end].to_ascii_lowercase();
    let mut attrs = Vec::new();
    let mut rest = &body[name_end..];
    loop {
        rest = rest.trim_start();
        if rest.is_empty() {
            break;
        }
        // Attribute name.
        let name_len = rest
            .char_indices()
            .find(|&(_, c)| c == '=' || c.is_whitespace())
            .map(|(i, _)| i)
            .unwrap_or(rest.len());
        let attr_name = rest[..name_len].to_ascii_lowercase();
        rest = rest[name_len..].trim_start();
        if let Some(after_eq) = rest.strip_prefix('=') {
            let after_eq = after_eq.trim_start();
            let (value, advance) = parse_attr_value(after_eq);
            attrs.push((attr_name, decode_entities(&value)));
            rest = &after_eq[advance..];
        } else {
            // Boolean attribute.
            if !attr_name.is_empty() {
                attrs.push((attr_name, String::new()));
            }
        }
    }
    (name, attrs)
}

/// Parses an attribute value (quoted or bare) and returns it along with
/// the number of bytes consumed.
fn parse_attr_value(s: &str) -> (String, usize) {
    let mut chars = s.chars();
    match chars.next() {
        Some(q @ ('"' | '\'')) => {
            let rest = &s[1..];
            match rest.find(q) {
                Some(end) => (rest[..end].to_string(), end + 2),
                None => (rest.to_string(), s.len()),
            }
        }
        Some(_) => {
            let end = s.find(char::is_whitespace).unwrap_or(s.len());
            (s[..end].to_string(), end)
        }
        None => (String::new(), 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(tokens: &[Token], idx: usize) -> (&str, &[(String, String)]) {
        match &tokens[idx] {
            Token::StartTag { name, attrs, .. } => (name.as_str(), attrs.as_slice()),
            other => panic!("expected start tag, got {other:?}"),
        }
    }

    #[test]
    fn simple_element_round() {
        let t = tokenize("<div>hello</div>");
        assert_eq!(t.len(), 3);
        assert_eq!(start(&t, 0).0, "div");
        assert!(matches!(&t[1], Token::Text(s) if s == "hello"));
        assert!(matches!(&t[2], Token::EndTag { name } if name == "div"));
    }

    #[test]
    fn attributes_parse_quoted_and_bare() {
        let t = tokenize(r#"<iframe src="http://x/" width=1 hidden>"#);
        let (name, attrs) = start(&t, 0);
        assert_eq!(name, "iframe");
        assert_eq!(attrs[0], ("src".into(), "http://x/".into()));
        assert_eq!(attrs[1], ("width".into(), "1".into()));
        assert_eq!(attrs[2], ("hidden".into(), String::new()));
    }

    #[test]
    fn attr_value_with_gt_inside_quotes() {
        let t = tokenize(r#"<a title="a > b">x</a>"#);
        let (_, attrs) = start(&t, 0);
        assert_eq!(attrs[0].1, "a > b");
    }

    #[test]
    fn script_body_is_raw_text() {
        let js = "if (a < b && b > c) { document.write('<iframe>'); }";
        let html = format!("<script>{js}</script>");
        let t = tokenize(&html);
        assert_eq!(t.len(), 3);
        assert!(matches!(&t[1], Token::Text(s) if s == js));
    }

    #[test]
    fn script_end_tag_case_insensitive() {
        let t = tokenize("<script>x=1</SCRIPT>after");
        assert!(matches!(&t[1], Token::Text(s) if s == "x=1"));
        assert!(matches!(&t[2], Token::EndTag { name } if name == "script"));
        assert!(matches!(&t[3], Token::Text(s) if s == "after"));
    }

    #[test]
    fn comment_and_doctype() {
        let t = tokenize("<!DOCTYPE html><!-- hidden --><p>x</p>");
        assert!(matches!(&t[0], Token::Doctype(d) if d == "DOCTYPE html"));
        assert!(matches!(&t[1], Token::Comment(c) if c == " hidden "));
    }

    #[test]
    fn self_closing_tag() {
        let t = tokenize("<br/><img src=x />");
        assert!(matches!(&t[0], Token::StartTag { self_closing: true, .. }));
        assert!(matches!(&t[1], Token::StartTag { self_closing: true, .. }));
    }

    #[test]
    fn stray_lt_is_text() {
        let t = tokenize("1 < 2 and 3 > 2");
        assert_eq!(t.len(), 1);
        assert!(matches!(&t[0], Token::Text(s) if s == "1 < 2 and 3 > 2"));
    }

    #[test]
    fn unterminated_tag_becomes_text() {
        let t = tokenize("<div class=");
        assert!(matches!(&t[0], Token::Text(_)));
    }

    #[test]
    fn unterminated_comment_is_swallowed() {
        let t = tokenize("<!-- never ends");
        assert!(matches!(&t[0], Token::Comment(c) if c == " never ends"));
    }

    #[test]
    fn unterminated_script_closes_at_eof() {
        let t = tokenize("<script>var x = 1;");
        assert!(matches!(&t[1], Token::Text(s) if s == "var x = 1;"));
        assert!(matches!(&t[2], Token::EndTag { name } if name == "script"));
    }

    #[test]
    fn entity_in_text_decodes() {
        let t = tokenize("<p>a &amp; b</p>");
        assert!(matches!(&t[1], Token::Text(s) if s == "a & b"));
    }

    #[test]
    fn uppercase_tag_name_lowered() {
        let t = tokenize("<IFRAME SRC='x'></IFRAME>");
        let (name, attrs) = start(&t, 0);
        assert_eq!(name, "iframe");
        assert_eq!(attrs[0].0, "src");
    }

    #[test]
    fn empty_input_yields_no_tokens() {
        assert!(tokenize("").is_empty());
    }
}
