//! Query layer: the structural questions the study asks of pages.

use crate::attr::{hidden_reasons, HiddenReason};
use crate::dom::{Document, NodeId, NodeKind};

impl Document {
    /// All elements with the given (case-insensitive) tag name, in
    /// document order.
    ///
    /// ```
    /// let doc = slum_html::Document::parse("<iframe></iframe><IFRAME></IFRAME>");
    /// assert_eq!(doc.elements_by_tag("iframe").len(), 2);
    /// ```
    pub fn elements_by_tag(&self, tag: &str) -> Vec<NodeId> {
        self.descendants(NodeId::ROOT)
            .into_iter()
            .filter(|&id| {
                self.element(id).is_some_and(|el| el.name.eq_ignore_ascii_case(tag))
            })
            .collect()
    }

    /// Elements matching an arbitrary predicate over `(tag, attrs)`.
    pub fn elements_where<F>(&self, mut pred: F) -> Vec<NodeId>
    where
        F: FnMut(&crate::dom::Element) -> bool,
    {
        self.descendants(NodeId::ROOT)
            .into_iter()
            .filter(|&id| self.element(id).is_some_and(&mut pred))
            .collect()
    }

    /// All `iframe` elements.
    pub fn iframes(&self) -> Vec<NodeId> {
        self.elements_by_tag("iframe")
    }

    /// All `script` elements.
    pub fn scripts(&self) -> Vec<NodeId> {
        self.elements_by_tag("script")
    }

    /// Inline source text of every `script` element that has no `src`
    /// attribute, in document order.
    pub fn inline_scripts(&self) -> Vec<String> {
        self.scripts()
            .into_iter()
            .filter(|&id| self.element(id).is_some_and(|el| el.attr("src").is_none()))
            .map(|id| self.text_content(id))
            .collect()
    }

    /// `src` URLs of every external `script`.
    pub fn external_script_srcs(&self) -> Vec<String> {
        self.scripts()
            .into_iter()
            .filter_map(|id| self.element(id).and_then(|el| el.attr("src")).map(String::from))
            .collect()
    }

    /// Reasons an element (or any of its ancestors) is hidden. An iframe
    /// inside a `display:none` wrapper is just as invisible as one that
    /// hides itself — the paper's second iframe category hides "the HTML
    /// component holding it".
    pub fn effective_hidden_reasons(&self, id: NodeId) -> Vec<HiddenReason> {
        let mut reasons = Vec::new();
        let mut chain = vec![id];
        chain.extend(self.ancestors(id));
        for node in chain {
            if let Some(el) = self.element(node) {
                for r in hidden_reasons(&el.attrs) {
                    if !reasons.contains(&r) {
                        reasons.push(r);
                    }
                }
            }
        }
        reasons
    }

    /// True when the iframe is a "barely visible" 1×1-style frame
    /// (paper §V-A category one).
    pub fn is_pixel_iframe(&self, id: NodeId) -> bool {
        self.effective_hidden_reasons(id).contains(&HiddenReason::PixelDimensions)
    }

    /// True when the element is hidden by any mechanism.
    pub fn is_hidden(&self, id: NodeId) -> bool {
        !self.effective_hidden_reasons(id).is_empty()
    }

    /// `href`/`src` attribute values of all elements, paired with the tag
    /// name — the link surface the crawler records.
    pub fn link_urls(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for id in self.descendants(NodeId::ROOT) {
            if let Some(el) = self.element(id) {
                for attr in ["href", "src"] {
                    if let Some(v) = el.attr(attr) {
                        out.push((el.name.clone(), v.to_string()));
                    }
                }
            }
        }
        out
    }

    /// `meta http-equiv="refresh"` redirect target, if any.
    ///
    /// Parses the `content="5; url=http://..."` form; a bare delay with no
    /// URL yields `None`.
    pub fn meta_refresh_target(&self) -> Option<String> {
        for id in self.elements_by_tag("meta") {
            let el = self.element(id)?;
            let equiv = el.attr("http-equiv")?;
            if !equiv.eq_ignore_ascii_case("refresh") {
                continue;
            }
            let content = el.attr("content")?;
            for part in content.split(';') {
                let part = part.trim();
                if let Some(url) = part
                    .strip_prefix("url=")
                    .or_else(|| part.strip_prefix("URL="))
                    .or_else(|| part.strip_prefix("Url="))
                {
                    return Some(url.trim().trim_matches(['\'', '"']).to_string());
                }
            }
        }
        None
    }

    /// Anchors whose `href` is a `data:` URI — the deceptive-download
    /// vector from the paper's §V-B.
    pub fn data_uri_anchors(&self) -> Vec<NodeId> {
        self.elements_by_tag("a")
            .into_iter()
            .filter(|&id| {
                self.element(id)
                    .and_then(|el| el.attr("href"))
                    .is_some_and(|href| href.trim_start().starts_with("data:"))
            })
            .collect()
    }

    /// Elements carrying any attribute whose name starts with `data-dm-`
    /// (the download-manager markup from the deceptive-download case
    /// study).
    pub fn download_manager_elements(&self) -> Vec<NodeId> {
        self.elements_where(|el| el.attrs.iter().any(|(k, _)| k.starts_with("data-dm")))
    }

    /// All comment bodies in the document.
    pub fn comments(&self) -> Vec<String> {
        self.descendants(NodeId::ROOT)
            .into_iter()
            .filter_map(|id| match &self.node(id).kind {
                NodeKind::Comment(c) => Some(c.clone()),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::Document;

    #[test]
    fn hidden_iframe_via_wrapper_div() {
        let doc = Document::parse(
            r#"<div style="display:none"><iframe src="http://x/"></iframe></div>"#,
        );
        let iframe = doc.iframes()[0];
        assert!(doc.is_hidden(iframe));
        assert!(!doc.is_pixel_iframe(iframe));
    }

    #[test]
    fn pixel_iframe_from_paper_listing() {
        // Mirrors the paper's Code 1 example: width/height both 1.
        let doc = Document::parse(
            r#"<iframe align="right" height="1" name="cwindow" scrolling="NO"
                src="http://tracker.example/" width="1"></iframe>"#,
        );
        assert!(doc.is_pixel_iframe(doc.iframes()[0]));
    }

    #[test]
    fn inline_and_external_scripts_separate() {
        let doc = Document::parse(
            r#"<script src="http://cdn.example/a.js"></script><script>var x=1;</script>"#,
        );
        assert_eq!(doc.inline_scripts(), vec!["var x=1;".to_string()]);
        assert_eq!(doc.external_script_srcs(), vec!["http://cdn.example/a.js".to_string()]);
    }

    #[test]
    fn meta_refresh_parses_url() {
        let doc = Document::parse(
            r#"<meta http-equiv="refresh" content="0; url=http://next.example/p">"#,
        );
        assert_eq!(doc.meta_refresh_target().as_deref(), Some("http://next.example/p"));
    }

    #[test]
    fn meta_refresh_without_url_is_none() {
        let doc = Document::parse(r#"<meta http-equiv="refresh" content="30">"#);
        assert_eq!(doc.meta_refresh_target(), None);
    }

    #[test]
    fn data_uri_anchor_found() {
        let doc = Document::parse(r#"<a href="data:text/html,%3Chtml%3E">dl</a>"#);
        assert_eq!(doc.data_uri_anchors().len(), 1);
    }

    #[test]
    fn download_manager_markup_found() {
        let doc = Document::parse(r#"<a data-dm-title="Flash Player" data-dm="1">install</a>"#);
        assert_eq!(doc.download_manager_elements().len(), 1);
    }

    #[test]
    fn link_urls_collects_href_and_src() {
        let doc = Document::parse(r#"<a href="http://a/">x</a><img src="http://b/i.png">"#);
        let urls = doc.link_urls();
        assert_eq!(urls.len(), 2);
        assert_eq!(urls[0], ("a".to_string(), "http://a/".to_string()));
        assert_eq!(urls[1], ("img".to_string(), "http://b/i.png".to_string()));
    }

    #[test]
    fn comments_collected() {
        let doc = Document::parse("<!--a--><div><!--b--></div>");
        assert_eq!(doc.comments(), vec!["a".to_string(), "b".to_string()]);
    }
}
