//! HTML entity decoding and encoding.
//!
//! Only the entities that actually occur in the synthetic web (and the
//! numeric forms used by obfuscated payloads) are supported; unknown
//! entities are passed through verbatim, matching lenient browser
//! behaviour.

/// Decodes HTML entities in `input`.
///
/// Supports the named entities `&amp;`, `&lt;`, `&gt;`, `&quot;`,
/// `&apos;`, `&nbsp;` and numeric character references in decimal
/// (`&#65;`) and hexadecimal (`&#x41;`) form. Unknown or malformed
/// entities are emitted unchanged.
///
/// # Examples
///
/// ```
/// assert_eq!(slum_html::escape::decode_entities("a &lt; b"), "a < b");
/// assert_eq!(slum_html::escape::decode_entities("&#x41;&#66;"), "AB");
/// assert_eq!(slum_html::escape::decode_entities("&bogus;"), "&bogus;");
/// ```
pub fn decode_entities(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    let mut chars = input.char_indices().peekable();
    while let Some((start, c)) = chars.next() {
        if c != '&' {
            out.push(c);
            continue;
        }
        // Find the terminating ';' within a reasonable window.
        let rest = &input[start + 1..];
        let semi = rest.char_indices().take(12).find(|&(_, rc)| rc == ';');
        let Some((semi_off, _)) = semi else {
            out.push('&');
            continue;
        };
        let body = &rest[..semi_off];
        let decoded = decode_entity_body(body);
        match decoded {
            Some(ch) => {
                out.push_str(&ch);
                // Skip past the consumed entity.
                for _ in 0..body.chars().count() + 1 {
                    chars.next();
                }
            }
            None => out.push('&'),
        }
    }
    out
}

/// Decodes a single entity body (the text between `&` and `;`).
fn decode_entity_body(body: &str) -> Option<String> {
    let named = match body {
        "amp" => Some('&'),
        "lt" => Some('<'),
        "gt" => Some('>'),
        "quot" => Some('"'),
        "apos" => Some('\''),
        "nbsp" => Some('\u{a0}'),
        _ => None,
    };
    if let Some(ch) = named {
        return Some(ch.to_string());
    }
    let digits = body.strip_prefix('#')?;
    let code = if let Some(hex) = digits.strip_prefix('x').or_else(|| digits.strip_prefix('X')) {
        u32::from_str_radix(hex, 16).ok()?
    } else {
        digits.parse::<u32>().ok()?
    };
    char::from_u32(code).map(|c| c.to_string())
}

/// Encodes the characters that are unsafe inside HTML text or attribute
/// values.
///
/// ```
/// assert_eq!(slum_html::escape::encode_text(r#"<a href="x">"#), "&lt;a href=&quot;x&quot;&gt;");
/// ```
pub fn encode_text(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    for c in input.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_entities_decode() {
        assert_eq!(decode_entities("&amp;&lt;&gt;&quot;&apos;"), "&<>\"'");
    }

    #[test]
    fn numeric_decimal_decodes() {
        assert_eq!(decode_entities("&#72;&#105;"), "Hi");
    }

    #[test]
    fn numeric_hex_decodes_both_cases() {
        assert_eq!(decode_entities("&#x48;&#X69;"), "Hi");
    }

    #[test]
    fn unknown_entity_passes_through() {
        assert_eq!(decode_entities("&unknown;"), "&unknown;");
    }

    #[test]
    fn unterminated_entity_passes_through() {
        assert_eq!(decode_entities("a & b"), "a & b");
        assert_eq!(decode_entities("&ampnope"), "&ampnope");
    }

    #[test]
    fn invalid_codepoint_passes_through() {
        // Surrogate code point is not a valid char.
        assert_eq!(decode_entities("&#xD800;"), "&#xD800;");
    }

    #[test]
    fn round_trip_encode_decode() {
        let original = r#"<iframe src="http://a/?q=1&r=2">"#;
        assert_eq!(decode_entities(&encode_text(original)), original);
    }

    #[test]
    fn nbsp_decodes() {
        assert_eq!(decode_entities("a&nbsp;b"), "a\u{a0}b");
    }
}
