//! Arena-backed DOM tree.
//!
//! Nodes live in a flat arena owned by the [`Document`]; relationships are
//! expressed through [`NodeId`] indices, which sidesteps ownership cycles
//! and keeps traversal allocation-free.

use std::fmt;

/// Index of a node inside a [`Document`]'s arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The root document node of every [`Document`].
    pub const ROOT: NodeId = NodeId(0);

    /// Returns the raw arena index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// An element node: tag name plus attributes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Element {
    /// Lower-cased tag name.
    pub name: String,
    /// Attributes in source order; duplicates preserved (first wins on
    /// lookup, matching browser behaviour).
    pub attrs: Vec<(String, String)>,
}

impl Element {
    /// Creates a new element with the given tag name and no attributes.
    pub fn new(name: impl Into<String>) -> Self {
        Element { name: name.into(), attrs: Vec::new() }
    }

    /// Returns the first value of attribute `name` (case-insensitive), if
    /// present.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Returns true if the attribute is present, regardless of value.
    pub fn has_attr(&self, name: &str) -> bool {
        self.attr(name).is_some()
    }
}

/// The payload of a DOM node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// The synthetic document root.
    Document,
    /// An element with a tag name and attributes.
    Element(Element),
    /// A text run.
    Text(String),
    /// A comment.
    Comment(String),
}

/// A node in the arena: payload plus tree links.
#[derive(Debug, Clone)]
pub struct Node {
    /// The node payload.
    pub kind: NodeKind,
    /// Parent node, `None` only for the root.
    pub parent: Option<NodeId>,
    /// Children in document order.
    pub children: Vec<NodeId>,
}

/// True when an attribute name can be emitted verbatim inside a tag.
fn is_serializable_attr_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | ':' | '.'))
}

/// A parsed HTML document.
///
/// Construct with [`Document::parse`]; inspect with the query methods in
/// [`crate::query`] (implemented as inherent methods on `Document`).
#[derive(Debug, Clone)]
pub struct Document {
    nodes: Vec<Node>,
}

impl Default for Document {
    fn default() -> Self {
        Self::new()
    }
}

impl Document {
    /// Creates an empty document containing only the root node.
    pub fn new() -> Self {
        Document {
            nodes: vec![Node { kind: NodeKind::Document, parent: None, children: Vec::new() }],
        }
    }

    /// Parses `html` into a document. Never fails; see the crate docs for
    /// the recovery model.
    pub fn parse(html: &str) -> Self {
        crate::parser::parse_document(html)
    }

    /// Total number of nodes, including the root.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the document contains only the root node.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Borrows the node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this document.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Returns the element payload for `id`, or `None` when the node is
    /// not an element.
    pub fn element(&self, id: NodeId) -> Option<&Element> {
        match &self.nodes[id.0].kind {
            NodeKind::Element(el) => Some(el),
            _ => None,
        }
    }

    /// Appends a new node under `parent` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is out of bounds.
    pub fn append(&mut self, parent: NodeId, kind: NodeKind) -> NodeId {
        assert!(parent.0 < self.nodes.len(), "parent {parent} out of bounds");
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node { kind, parent: Some(parent), children: Vec::new() });
        self.nodes[parent.0].children.push(id);
        id
    }

    /// Iterates over all node ids in arena (pre-order-compatible) order.
    pub fn iter_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId)
    }

    /// Depth-first pre-order traversal starting at `root`.
    pub fn descendants(&self, root: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            out.push(id);
            // Push children in reverse so traversal is document order.
            for &child in self.nodes[id.0].children.iter().rev() {
                stack.push(child);
            }
        }
        out
    }

    /// Concatenated text content beneath `root` (inclusive).
    pub fn text_content(&self, root: NodeId) -> String {
        let mut out = String::new();
        for id in self.descendants(root) {
            if let NodeKind::Text(t) = &self.nodes[id.0].kind {
                out.push_str(t);
            }
        }
        out
    }

    /// Walks ancestors of `id`, closest first (excluding `id` itself).
    pub fn ancestors(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut cur = self.nodes[id.0].parent;
        while let Some(p) = cur {
            out.push(p);
            cur = self.nodes[p.0].parent;
        }
        out
    }

    /// Serializes the tree back to HTML. Attribute values are re-escaped;
    /// raw-text elements are emitted verbatim.
    pub fn to_html(&self) -> String {
        let mut out = String::new();
        self.write_node(NodeId::ROOT, &mut out);
        out
    }

    fn write_node(&self, id: NodeId, out: &mut String) {
        match &self.nodes[id.0].kind {
            NodeKind::Document => {
                for &c in &self.nodes[id.0].children {
                    self.write_node(c, out);
                }
            }
            NodeKind::Element(el) => {
                out.push('<');
                out.push_str(&el.name);
                for (k, v) in &el.attrs {
                    // Attribute names from hostile markup can contain
                    // quotes or angle brackets; serializing those would
                    // produce malformed output, so they are dropped
                    // (matching how browsers refuse to set them).
                    if !is_serializable_attr_name(k) {
                        continue;
                    }
                    out.push(' ');
                    out.push_str(k);
                    out.push_str("=\"");
                    out.push_str(&crate::escape::encode_text(v));
                    out.push('"');
                }
                out.push('>');
                let raw = matches!(el.name.as_str(), "script" | "style" | "textarea" | "title");
                for &c in &self.nodes[id.0].children {
                    if raw {
                        if let NodeKind::Text(t) = &self.nodes[c.0].kind {
                            out.push_str(t);
                            continue;
                        }
                    }
                    self.write_node(c, out);
                }
                out.push_str("</");
                out.push_str(&el.name);
                out.push('>');
            }
            NodeKind::Text(t) => out.push_str(&crate::escape::encode_text(t)),
            NodeKind::Comment(c) => {
                out.push_str("<!--");
                out.push_str(c);
                out.push_str("-->");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_document_has_root_only() {
        let doc = Document::new();
        assert!(doc.is_empty());
        assert_eq!(doc.len(), 1);
        assert!(matches!(doc.node(NodeId::ROOT).kind, NodeKind::Document));
    }

    #[test]
    fn append_links_parent_and_child() {
        let mut doc = Document::new();
        let div = doc.append(NodeId::ROOT, NodeKind::Element(Element::new("div")));
        let text = doc.append(div, NodeKind::Text("hi".into()));
        assert_eq!(doc.node(div).parent, Some(NodeId::ROOT));
        assert_eq!(doc.node(div).children, vec![text]);
        assert_eq!(doc.ancestors(text), vec![div, NodeId::ROOT]);
    }

    #[test]
    fn text_content_concatenates_in_order() {
        let doc = Document::parse("<div>a<span>b</span>c</div>");
        assert_eq!(doc.text_content(NodeId::ROOT), "abc");
    }

    #[test]
    fn element_attr_is_case_insensitive_first_wins() {
        let el = Element {
            name: "a".into(),
            attrs: vec![("href".into(), "1".into()), ("HREF".into(), "2".into())],
        };
        assert_eq!(el.attr("HREF"), Some("1"));
        assert!(el.has_attr("href"));
        assert_eq!(el.attr("missing"), None);
    }

    #[test]
    fn descendants_are_document_order() {
        let doc = Document::parse("<a><b></b><c></c></a>");
        let names: Vec<String> = doc
            .descendants(NodeId::ROOT)
            .into_iter()
            .filter_map(|id| doc.element(id).map(|e| e.name.clone()))
            .collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn to_html_round_trips_structure() {
        let src = r#"<div id="x"><p>hi &amp; bye</p></div>"#;
        let doc = Document::parse(src);
        let re = Document::parse(&doc.to_html());
        assert_eq!(doc.text_content(NodeId::ROOT), re.text_content(NodeId::ROOT));
        assert_eq!(doc.elements_by_tag("p").len(), re.elements_by_tag("p").len());
    }

    #[test]
    fn script_round_trip_preserves_body() {
        let src = "<script>if (a<b) { x(); }</script>";
        let doc = Document::parse(src);
        assert_eq!(doc.to_html(), src);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn append_to_bogus_parent_panics() {
        let mut doc = Document::new();
        doc.append(NodeId(42), NodeKind::Text("x".into()));
    }
}
