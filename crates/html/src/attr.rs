//! Attribute and inline-style inspection helpers.
//!
//! The paper's iframe-injection taxonomy (§V-A) hinges on *how* an iframe
//! is hidden: 1×1 dimensions, CSS `visibility:hidden`/`display:none`,
//! off-screen positioning, or `allowtransparency`. This module parses the
//! relevant attribute forms.

use std::collections::BTreeMap;

/// A parsed `style="..."` attribute: property name → value, names
/// lower-cased, values trimmed.
pub type StyleMap = BTreeMap<String, String>;

/// Parses an inline CSS declaration list into a [`StyleMap`].
///
/// ```
/// let style = slum_html::attr::parse_style("width: 1px; HEIGHT:1px ; display :none");
/// assert_eq!(style.get("width").map(String::as_str), Some("1px"));
/// assert_eq!(style.get("display").map(String::as_str), Some("none"));
/// ```
pub fn parse_style(style: &str) -> StyleMap {
    let mut map = StyleMap::new();
    for decl in style.split(';') {
        let Some((prop, value)) = decl.split_once(':') else { continue };
        let prop = prop.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        if !prop.is_empty() && !value.is_empty() {
            map.insert(prop, value);
        }
    }
    map
}

/// Parses a CSS/HTML length (`"1"`, `"1px"`, `"-100px"`, `"50%"`) into a
/// numeric value. Percentages are returned as their numeric part with
/// [`Length::Percent`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Length {
    /// Absolute pixels (unit-less HTML attributes count as pixels).
    Px(f64),
    /// Percentage of the containing block.
    Percent(f64),
}

impl Length {
    /// Parses a length string, returning `None` on anything non-numeric.
    pub fn parse(s: &str) -> Option<Length> {
        let s = s.trim();
        if let Some(p) = s.strip_suffix('%') {
            return p.trim().parse::<f64>().ok().map(Length::Percent);
        }
        let num = s.strip_suffix("px").unwrap_or(s).trim();
        num.parse::<f64>().ok().map(Length::Px)
    }

    /// Pixel value when absolute, `None` for percentages.
    pub fn pixels(self) -> Option<f64> {
        match self {
            Length::Px(v) => Some(v),
            Length::Percent(_) => None,
        }
    }
}

/// How an element ends up invisible to the user. Mirrors the three
/// hidden-iframe categories of the paper's §V-A plus off-screen
/// positioning observed in the false-positive case study (§V-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HiddenReason {
    /// Width and/or height small enough (≤ 2px) that the element
    /// occupies effectively no screen space.
    PixelDimensions,
    /// `visibility:hidden` or `display:none` via inline style.
    CssHidden,
    /// `allowtransparency="true"` together with tiny/zero frame chrome.
    Transparency,
    /// Positioned outside the viewport (negative `top`/`left`).
    OffScreen,
    /// Legacy `hidden` boolean attribute.
    HiddenAttribute,
}

/// Inspects an attribute list (plus its parsed style) and reports every
/// reason the element would be invisible.
pub fn hidden_reasons(attrs: &[(String, String)]) -> Vec<HiddenReason> {
    let mut reasons = Vec::new();
    let get = |name: &str| {
        attrs
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    };
    let style = get("style").map(parse_style).unwrap_or_default();

    // Dimensions: attribute or style, whichever is present.
    let dim = |attr_name: &str| -> Option<f64> {
        get(attr_name)
            .and_then(Length::parse)
            .or_else(|| style.get(attr_name).and_then(|v| Length::parse(v)))
            .and_then(Length::pixels)
    };
    let w = dim("width");
    let h = dim("height");
    if w.is_some_and(|v| v <= 2.0) || h.is_some_and(|v| v <= 2.0) {
        reasons.push(HiddenReason::PixelDimensions);
    }

    if style.get("display").is_some_and(|v| v.eq_ignore_ascii_case("none"))
        || style.get("visibility").is_some_and(|v| v.eq_ignore_ascii_case("hidden"))
        || style.get("opacity").and_then(|v| v.parse::<f64>().ok()).is_some_and(|o| o == 0.0)
    {
        reasons.push(HiddenReason::CssHidden);
    }

    if get("allowtransparency").is_some_and(|v| v.eq_ignore_ascii_case("true") || v.is_empty()) {
        reasons.push(HiddenReason::Transparency);
    }

    let off = ["top", "left"].iter().any(|p| {
        style
            .get(*p)
            .and_then(|v| Length::parse(v))
            .and_then(Length::pixels)
            .is_some_and(|px| px <= -50.0)
    });
    if off {
        reasons.push(HiddenReason::OffScreen);
    }

    if get("hidden").is_some() {
        reasons.push(HiddenReason::HiddenAttribute);
    }

    reasons
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attrs(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
        pairs.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect()
    }

    #[test]
    fn style_parsing_normalizes() {
        let s = parse_style("Width : 1px; height:2px;;bogus");
        assert_eq!(s.get("width").unwrap(), "1px");
        assert_eq!(s.get("height").unwrap(), "2px");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn length_forms_parse() {
        assert_eq!(Length::parse("1"), Some(Length::Px(1.0)));
        assert_eq!(Length::parse("1px"), Some(Length::Px(1.0)));
        assert_eq!(Length::parse("-100px"), Some(Length::Px(-100.0)));
        assert_eq!(Length::parse("50%"), Some(Length::Percent(50.0)));
        assert_eq!(Length::parse("auto"), None);
    }

    #[test]
    fn pixel_iframe_detected_via_attributes() {
        let r = hidden_reasons(&attrs(&[("width", "1"), ("height", "1")]));
        assert!(r.contains(&HiddenReason::PixelDimensions));
    }

    #[test]
    fn pixel_iframe_detected_via_style() {
        let r = hidden_reasons(&attrs(&[("style", "width: 1px; height: 1px;")]));
        assert!(r.contains(&HiddenReason::PixelDimensions));
    }

    #[test]
    fn css_hidden_forms() {
        for style in ["display:none", "visibility:hidden", "opacity:0"] {
            let r = hidden_reasons(&attrs(&[("style", style)]));
            assert!(r.contains(&HiddenReason::CssHidden), "style {style} not detected");
        }
    }

    #[test]
    fn transparency_flag() {
        let r = hidden_reasons(&attrs(&[("allowtransparency", "true")]));
        assert!(r.contains(&HiddenReason::Transparency));
    }

    #[test]
    fn offscreen_positioning() {
        // The Google OAuth relay iframe from the paper's §V-E sits at top:-100px.
        let r = hidden_reasons(&attrs(&[(
            "style",
            "width: 1px; height: 1px; position: absolute; top: -100px;",
        )]));
        assert!(r.contains(&HiddenReason::OffScreen));
        assert!(r.contains(&HiddenReason::PixelDimensions));
    }

    #[test]
    fn visible_element_has_no_reasons() {
        let r = hidden_reasons(&attrs(&[("width", "800"), ("height", "600")]));
        assert!(r.is_empty());
    }

    #[test]
    fn hidden_attribute_detected() {
        let r = hidden_reasons(&attrs(&[("hidden", "")]));
        assert_eq!(r, vec![HiddenReason::HiddenAttribute]);
    }
}
