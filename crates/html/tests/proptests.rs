//! Property tests: the HTML layer must be total over arbitrary input —
//! crawled pages are hostile by assumption.

use proptest::prelude::*;
use slum_html::escape::{decode_entities, encode_text};
use slum_html::{tokenize, Document, NodeId};

proptest! {
    /// The tokenizer never panics and never loses input silently on
    /// arbitrary unicode strings.
    #[test]
    fn tokenizer_is_total(input in ".{0,400}") {
        let _ = tokenize(&input);
    }

    /// The parser never panics; the resulting tree is well-formed
    /// (every child's parent link points back at it).
    #[test]
    fn parser_builds_wellformed_trees(input in ".{0,400}") {
        let doc = Document::parse(&input);
        for id in doc.iter_ids() {
            for &child in &doc.node(id).children {
                prop_assert_eq!(doc.node(child).parent, Some(id));
            }
        }
    }

    /// Entity encode→decode is the identity for any string.
    #[test]
    fn entity_round_trip(input in ".{0,200}") {
        prop_assert_eq!(decode_entities(&encode_text(&input)), input);
    }

    /// Serializing a parsed document and re-parsing preserves text
    /// content and element counts (idempotent normal form).
    #[test]
    fn reparse_is_stable(input in "[a-zA-Z0-9 <>/=\"']{0,300}") {
        let doc = Document::parse(&input);
        let html = doc.to_html();
        let re = Document::parse(&html);
        prop_assert_eq!(doc.text_content(NodeId::ROOT), re.text_content(NodeId::ROOT));
        prop_assert_eq!(doc.iframes().len(), re.iframes().len());
        prop_assert_eq!(doc.scripts().len(), re.scripts().len());
        // Second round trip is exactly stable.
        prop_assert_eq!(re.to_html(), Document::parse(&re.to_html()).to_html());
    }

    /// Structured documents round-trip their attribute values.
    #[test]
    fn attribute_values_survive(value in "[^\"<>&]{0,60}") {
        let html = format!("<iframe src=\"{value}\"></iframe>");
        let doc = Document::parse(&html);
        let iframe = doc.iframes()[0];
        prop_assert_eq!(doc.element(iframe).unwrap().attr("src"), Some(value.as_str()));
    }

    /// descendants() visits every node exactly once.
    #[test]
    fn traversal_is_a_permutation(input in ".{0,300}") {
        let doc = Document::parse(&input);
        let mut ids = doc.descendants(NodeId::ROOT);
        ids.sort();
        ids.dedup();
        prop_assert_eq!(ids.len(), doc.len());
    }

    /// Hidden-reason analysis never panics on arbitrary attribute soups.
    #[test]
    fn hidden_reasons_total(
        w in "[0-9a-z%.-]{0,8}",
        h in "[0-9a-z%.-]{0,8}",
        style in "[a-z0-9:;% -]{0,60}",
    ) {
        let attrs = vec![
            ("width".to_string(), w),
            ("height".to_string(), h),
            ("style".to_string(), style),
        ];
        let _ = slum_html::attr::hidden_reasons(&attrs);
    }
}
