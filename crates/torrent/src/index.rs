//! The index site itself: listings, swarm rotation, download gates.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use slum_exchange::captcha::Captcha;
use slum_exchange::{ExchangeKind, SurfStep, TrafficSource};
use slum_websim::rng::{path_token, pick_weighted};
use slum_websim::Url;

/// One torrent listing: a swarm whose "download" link lands on the
/// publisher's payload page.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TorrentListing {
    /// Publisher payload-page URL.
    pub url: Url,
    /// Rotation weight (seeder count analog: hot swarms get followed
    /// more).
    pub weight: f64,
    /// Ground truth: whether the listing was seeded by a fake
    /// publisher (used by calibration and the oracle, never by
    /// rotation).
    pub fake_publisher: bool,
}

/// A configured torrent index: a deterministic listing stream behind
/// the [`TrafficSource`] contract.
#[derive(Debug, Clone)]
pub struct TorrentIndex {
    name: String,
    kind: ExchangeKind,
    /// The index's own browse page (self-referral target).
    home: Url,
    /// Community mirror sites the index cross-links.
    mirrors: Vec<Url>,
    listings: Vec<TorrentListing>,
    self_fraction: f64,
    mirror_fraction: f64,
    min_surf_secs: u32,
    captcha_nonce: u64,
}

impl TorrentIndex {
    /// Creates an index.
    ///
    /// # Panics
    ///
    /// Panics when `listings` is empty or the referral fractions leave
    /// no room for regular listings.
    #[allow(clippy::too_many_arguments)] // a constructor mirroring the profile fields
    pub fn new(
        name: impl Into<String>,
        kind: ExchangeKind,
        home: Url,
        mirrors: Vec<Url>,
        listings: Vec<TorrentListing>,
        self_fraction: f64,
        mirror_fraction: f64,
        min_surf_secs: u32,
    ) -> Self {
        assert!(!listings.is_empty(), "an index needs at least one listing");
        assert!(
            self_fraction + mirror_fraction < 1.0,
            "referral fractions must leave room for regular listings"
        );
        TorrentIndex {
            name: name.into(),
            kind,
            home,
            mirrors,
            listings,
            self_fraction,
            mirror_fraction,
            min_surf_secs,
            captcha_nonce: 0,
        }
    }

    /// Index name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Registered listings.
    pub fn listings(&self) -> &[TorrentListing] {
        &self.listings
    }
}

impl TrafficSource for TorrentIndex {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> ExchangeKind {
        self.kind
    }

    fn min_surf_secs(&self) -> u32 {
        self.min_surf_secs
    }

    /// Follows one listing at virtual time `t`.
    ///
    /// Rotation: with probability `self_fraction` the crawl lands on a
    /// browse page of the index itself (usually a paginated variant);
    /// with `mirror_fraction` a community mirror; otherwise a listing
    /// weighted by swarm heat. Download links usually carry a gate
    /// token (`?dl=`), so distinct URLs accumulate per payload domain.
    /// Manual-surf indexes CAPTCHA-gate every download; the nonce
    /// counter advances exactly like the manual-surf exchanges' so
    /// checkpoint resume regenerates the identical challenge sequence.
    fn next_step(&mut self, _t: u64, rng: &mut StdRng) -> SurfStep {
        let roll: f64 = rng.gen();
        let url = if roll < self.self_fraction {
            // Paginated browse pages: same host, varying path.
            if rng.gen_bool(0.6) {
                let token = path_token(rng, 4);
                self.home.with_path(&format!("/browse?p={token}"))
            } else {
                self.home.clone()
            }
        } else if roll < self.self_fraction + self.mirror_fraction && !self.mirrors.is_empty() {
            self.mirrors[rng.gen_range(0..self.mirrors.len())].clone()
        } else {
            let weights: Vec<f64> = self.listings.iter().map(|l| l.weight).collect();
            let total: f64 = weights.iter().sum();
            let idx = if total <= 0.0 {
                rng.gen_range(0..self.listings.len())
            } else {
                pick_weighted(rng, &weights)
            };
            let base = &self.listings[idx].url;
            if rng.gen_bool(0.7) {
                let token = path_token(rng, 6);
                base.with_path(&format!("{}?dl={}", base.path(), token))
            } else {
                base.clone()
            }
        };
        let captcha = match self.kind {
            ExchangeKind::ManualSurf => {
                self.captcha_nonce += 1;
                Some(Captcha::for_nonce(self.captcha_nonce))
            }
            ExchangeKind::AutoSurf => None,
        };
        SurfStep { url, min_surf_secs: self.min_surf_secs, captcha, campaign_boosted: false }
    }

    fn captcha_nonce(&self) -> u64 {
        self.captcha_nonce
    }

    fn restore_captcha_nonce(&mut self, nonce: u64) {
        self.captcha_nonce = nonce;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slum_websim::rng::seeded;

    fn listing(host: &str, weight: f64, fake: bool) -> TorrentListing {
        TorrentListing { url: Url::http(host, "/payload"), weight, fake_publisher: fake }
    }

    fn basic_index(kind: ExchangeKind) -> TorrentIndex {
        TorrentIndex::new(
            "TestIdx",
            kind,
            Url::http("testidx.torrent.example", "/"),
            vec![Url::http("mirror-a.example", "/"), Url::http("mirror-b.example", "/")],
            vec![
                listing("linux-iso.example.com", 1.0, false),
                listing("freeware.example.com", 1.0, false),
                listing("fake-codec.example.com", 1.0, true),
            ],
            0.15,
            0.08,
            20,
        )
    }

    #[test]
    fn referral_fractions_respected() {
        let mut idx = basic_index(ExchangeKind::AutoSurf);
        let mut rng = seeded(1);
        let n = 20_000;
        let (mut selfs, mut mirrors) = (0u64, 0u64);
        for t in 0..n {
            let step = idx.next_step(t, &mut rng);
            let host = step.url.host().to_string();
            if host == "testidx.torrent.example" {
                selfs += 1;
            } else if host.starts_with("mirror-") {
                mirrors += 1;
            }
        }
        assert!((selfs as f64 / n as f64 - 0.15).abs() < 0.01);
        assert!((mirrors as f64 / n as f64 - 0.08).abs() < 0.01);
    }

    #[test]
    fn self_pages_stay_on_the_index_host() {
        let mut idx = basic_index(ExchangeKind::AutoSurf);
        let mut rng = seeded(2);
        let mut browse_variants = std::collections::BTreeSet::new();
        for t in 0..5_000 {
            let step = idx.next_step(t, &mut rng);
            if step.url.host() == "testidx.torrent.example" {
                browse_variants.insert(step.url.to_string());
            }
        }
        assert!(browse_variants.len() > 10, "paginated browse pages vary");
    }

    #[test]
    fn manual_gates_downloads_auto_does_not() {
        let mut manual = basic_index(ExchangeKind::ManualSurf);
        let mut auto = basic_index(ExchangeKind::AutoSurf);
        let mut rng = seeded(3);
        assert!(manual.next_step(0, &mut rng).captcha.is_some());
        assert!(auto.next_step(0, &mut rng).captcha.is_none());
        assert_eq!(TrafficSource::captcha_nonce(&manual), 1);
        assert_eq!(TrafficSource::captcha_nonce(&auto), 0);
    }

    #[test]
    fn captcha_nonce_round_trips_for_resume() {
        let mut idx = basic_index(ExchangeKind::ManualSurf);
        let mut rng = seeded(4);
        let _ = idx.next_step(0, &mut rng);
        let _ = idx.next_step(1, &mut rng);
        let snapshot = TrafficSource::captcha_nonce(&idx);
        let expected = idx.next_step(2, &mut rng).captcha.unwrap();
        let mut resumed = basic_index(ExchangeKind::ManualSurf);
        resumed.restore_captcha_nonce(snapshot);
        let mut rng2 = seeded(4);
        let _ = rng2.gen::<u64>();
        let got = resumed.next_step(2, &mut rng2).captcha.unwrap();
        assert_eq!(got, expected);
    }

    #[test]
    fn stream_is_deterministic_per_seed() {
        let mut a = basic_index(ExchangeKind::ManualSurf);
        let mut b = basic_index(ExchangeKind::ManualSurf);
        let mut rng_a = seeded(9);
        let mut rng_b = seeded(9);
        for t in 0..500 {
            assert_eq!(a.next_step(t, &mut rng_a).url, b.next_step(t, &mut rng_b).url);
        }
    }

    #[test]
    #[should_panic(expected = "at least one listing")]
    fn empty_index_rejected() {
        TorrentIndex::new(
            "X",
            ExchangeKind::AutoSurf,
            Url::http("x.example", "/"),
            vec![],
            vec![],
            0.1,
            0.1,
            10,
        );
    }
}
