//! Wires a [`TorrentIndex`] to the synthetic web: installs its
//! publisher population and calibrates swarm weights so the crawl
//! statistics land on the profile's malice marginals.

use slum_websim::build::{BenignOptions, MaliciousOptions, WebBuilder};
use slum_websim::{ContentCategory, JsAttack, MaliceKind, Url};

use crate::index::{TorrentIndex, TorrentListing};
use crate::params::TorrentProfile;

/// Community mirror sites every index cross-links — the
/// popular-referral analog of the exchanges' Google / Facebook /
/// YouTube padding. Installed once; shared across indexes.
pub const MIRROR_HOSTS: [&str; 3] =
    ["mirrorbay.mirrors.example", "seedlist.mirrors.example", "trackerhub.mirrors.example"];

/// Payload archetypes fake publishers seed, guaranteed at small
/// publisher scales so every §V case-study flavor stays represented.
/// Deceptive downloads dominate: the ecosystem's classic fake-codec /
/// rebundled-installer scam. Taken in order up to the profile's
/// fake-publisher budget; weights are in units of the base malicious
/// weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FakePayload {
    /// Fake codec / installer page with a deceptive download prompt.
    DeceptiveDownload,
    /// Blacklisted mirror domain.
    Blacklisted,
    /// Uncategorized scam page.
    Misc,
    /// Cloaked miscellaneous payload (hides from scanner user agents).
    CloakedMisc,
}

/// Builds a torrent index from its profile.
///
/// * `domain_scale` scales the publisher population (1.0 = full size).
/// * `planned_virtual_secs` is accepted for signature parity with the
///   other substrates; torrent swarms have no time-boxed campaign
///   analog, so it is unused.
///
/// Weight calibration matches the other substrates: with `M` fake and
/// `B` genuine publishers and a target malicious listing fraction `f`,
/// genuine listings get weight 1 and fake listings weight
/// `f·B / ((1−f)·M)`.
pub fn build_torrent_index(
    builder: &mut WebBuilder,
    profile: &TorrentProfile,
    domain_scale: f64,
    _planned_virtual_secs: u64,
) -> TorrentIndex {
    let n_publishers = ((profile.publishers as f64 * domain_scale).round() as usize).max(10);
    let budget = ((n_publishers as f64 * profile.fake_publisher_fraction()).round() as usize)
        .clamp(2, n_publishers.saturating_sub(2).max(2));
    let forced_plan: Vec<(FakePayload, f64, ContentCategory)> = vec![
        (FakePayload::DeceptiveDownload, 1.6, ContentCategory::Entertainment),
        (FakePayload::Blacklisted, 1.0, ContentCategory::Entertainment),
        (FakePayload::Misc, 1.2, ContentCategory::Entertainment),
        (FakePayload::DeceptiveDownload, 0.9, ContentCategory::InformationTechnology),
        (FakePayload::Misc, 0.8, ContentCategory::Business),
        (FakePayload::CloakedMisc, 0.5, ContentCategory::Entertainment),
        (FakePayload::Blacklisted, 0.6, ContentCategory::InformationTechnology),
        (FakePayload::Misc, 0.4, ContentCategory::Other),
    ];
    let forced: Vec<(FakePayload, f64, ContentCategory)> =
        forced_plan.into_iter().take(budget).collect();
    let n_sampled = budget - forced.len();
    let n_genuine = n_publishers.saturating_sub(budget).max(2);

    let f = profile.malicious_fraction();
    let forced_units: f64 = forced.iter().map(|(_, u, _)| u).sum();
    let malicious_units = n_sampled as f64 + forced_units;
    let malicious_weight = (f * n_genuine as f64) / ((1.0 - f) * malicious_units);

    let mut listings = Vec::with_capacity(n_publishers);
    for _ in 0..n_genuine {
        let spec = builder.benign_site(BenignOptions::default());
        listings.push(TorrentListing { url: spec.url, weight: 1.0, fake_publisher: false });
    }
    for _ in 0..n_sampled {
        let spec = builder.malicious_site(MaliciousOptions::default());
        use slum_websim::MaliceKind as Mk;
        let unit = match spec.truth.malice_kind() {
            Some(Mk::MaliciousShortened) | Some(Mk::MaliciousFlash) => 0.1,
            _ => 1.0,
        };
        listings.push(TorrentListing {
            url: spec.url,
            weight: malicious_weight * unit,
            fake_publisher: true,
        });
    }
    for (payload, units, category) in &forced {
        let url = match payload {
            FakePayload::DeceptiveDownload => {
                builder
                    .malicious_site(MaliciousOptions {
                        kind: Some(MaliceKind::MaliciousJs(JsAttack::DeceptiveDownload)),
                        cloaked: Some(false),
                        category: Some(*category),
                        ..Default::default()
                    })
                    .url
            }
            FakePayload::Blacklisted => {
                builder
                    .malicious_site(MaliciousOptions {
                        kind: Some(MaliceKind::Blacklisted),
                        category: Some(*category),
                        ..Default::default()
                    })
                    .url
            }
            FakePayload::Misc => {
                builder
                    .malicious_site(MaliciousOptions {
                        kind: Some(MaliceKind::Misc),
                        category: Some(*category),
                        ..Default::default()
                    })
                    .url
            }
            FakePayload::CloakedMisc => {
                builder
                    .malicious_site(MaliciousOptions {
                        kind: Some(MaliceKind::Misc),
                        cloaked: Some(true),
                        category: Some(*category),
                        ..Default::default()
                    })
                    .url
            }
        };
        listings.push(TorrentListing {
            url,
            weight: malicious_weight * units,
            fake_publisher: true,
        });
    }

    let home = builder.exchange_home(profile.host).url;
    let mirrors: Vec<Url> =
        MIRROR_HOSTS.iter().map(|h| builder.popular_site(h).url).collect();

    TorrentIndex::new(
        profile.name,
        profile.kind,
        home,
        mirrors,
        listings,
        profile.self_fraction(),
        profile.mirror_fraction(),
        profile.min_surf_secs,
    )
}

/// Convenience: builds all three modeled indexes into one web.
pub fn build_all_indexes(
    builder: &mut WebBuilder,
    domain_scale: f64,
    planned_virtual_secs: u64,
) -> Vec<TorrentIndex> {
    crate::params::PROFILES
        .iter()
        .map(|p| build_torrent_index(builder, p, domain_scale, planned_virtual_secs))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::profile;
    use slum_exchange::TrafficSource;
    use slum_websim::rng::seeded;

    #[test]
    fn publisher_pool_respects_fake_fraction() {
        let mut b = WebBuilder::new(70);
        let p = profile("OpenBay").unwrap();
        let idx = build_torrent_index(&mut b, p, 0.1, 50_000);
        let fake = idx.listings().iter().filter(|l| l.fake_publisher).count();
        let frac = fake as f64 / idx.listings().len() as f64;
        assert!(
            (frac - p.fake_publisher_fraction()).abs() < 0.05,
            "fake-publisher fraction {frac} vs {}",
            p.fake_publisher_fraction()
        );
    }

    #[test]
    fn listing_malice_fraction_matches_profile() {
        let mut b = WebBuilder::new(71);
        let p = profile("RssLeech").unwrap();
        let mut idx = build_torrent_index(&mut b, p, 0.1, 50_000);
        let fake_hosts: std::collections::BTreeSet<String> = idx
            .listings()
            .iter()
            .filter(|l| l.fake_publisher)
            .map(|l| l.url.host().to_string())
            .collect();
        let mut rng = seeded(29);
        let (mut regular, mut malicious) = (0u64, 0u64);
        for t in 0..30_000u64 {
            let step = idx.next_step(t, &mut rng);
            let host = step.url.host().to_string();
            if host == p.host || MIRROR_HOSTS.contains(&host.as_str()) {
                continue;
            }
            regular += 1;
            if fake_hosts.contains(&host) {
                malicious += 1;
            }
        }
        let frac = malicious as f64 / regular as f64;
        assert!(
            (frac - p.malicious_fraction()).abs() < 0.03,
            "listing malice {frac} vs {}",
            p.malicious_fraction()
        );
    }

    #[test]
    fn all_three_build_with_population() {
        let mut b = WebBuilder::new(72);
        let indexes = build_all_indexes(&mut b, 0.05, 50_000);
        assert_eq!(indexes.len(), 3);
        let web = b.finish();
        assert!(web.len() > 50, "population installed: {}", web.len());
        for idx in &indexes {
            assert!(!idx.listings().is_empty());
            assert_eq!(
                TrafficSource::kind(idx),
                crate::params::profile(TrafficSource::name(idx)).unwrap().kind
            );
        }
    }
}
