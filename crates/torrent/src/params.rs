//! Per-index calibration profiles for the torrent substrate.
//!
//! Like the ad-network profiles these are synthetic (the paper measured
//! exchanges), but the shape follows the ecosystem's folklore: open
//! indexes with weak publisher vetting carry heavy fake-publisher
//! seeding, while the gated community index is markedly cleaner.

use serde::{Deserialize, Serialize};

use slum_exchange::ExchangeKind;

/// Calibration profile of one torrent index site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TorrentProfile {
    /// Index display name.
    pub name: &'static str,
    /// Simulated host for the index's own pages.
    pub host: &'static str,
    /// Pacing class: gated indexes are crawled manual-surf (CAPTCHA on
    /// the download gate); the RSS feed rotates auto-surf.
    pub kind: ExchangeKind,
    /// Listings followed over a full-scale crawl.
    pub urls_crawled: u64,
    /// Crawl hits on the index's own browse/search pages.
    pub self_listings: u64,
    /// Crawl hits on the community mirror sites.
    pub mirror_referrals: u64,
    /// Malicious payload pages among regular listings.
    pub malicious_urls: u64,
    /// Publisher population (the domain-pool analog).
    pub publishers: u64,
    /// Fake publishers seeding scam/malware payloads.
    pub fake_publishers: u64,
    /// Minimum dwell per payload page, in virtual seconds.
    pub min_surf_secs: u32,
}

impl TorrentProfile {
    /// Regular listings (crawled − self − mirror).
    pub fn regular_urls(&self) -> u64 {
        self.urls_crawled - self.self_listings - self.mirror_referrals
    }

    /// Fraction of crawl hits on the index's own pages.
    pub fn self_fraction(&self) -> f64 {
        self.self_listings as f64 / self.urls_crawled as f64
    }

    /// Fraction of crawl hits on mirror sites.
    pub fn mirror_fraction(&self) -> f64 {
        self.mirror_referrals as f64 / self.urls_crawled as f64
    }

    /// Fraction of regular listings that are malicious.
    pub fn malicious_fraction(&self) -> f64 {
        self.malicious_urls as f64 / self.regular_urls() as f64
    }

    /// Fraction of publishers that are fake.
    pub fn fake_publisher_fraction(&self) -> f64 {
        self.fake_publishers as f64 / self.publishers as f64
    }
}

/// The three modeled index sites.
pub const PROFILES: [TorrentProfile; 3] = [
    TorrentProfile {
        name: "OpenBay",
        host: "openbay.torrent.example",
        kind: ExchangeKind::ManualSurf,
        urls_crawled: 6_200,
        self_listings: 930,
        mirror_referrals: 496,
        malicious_urls: 1_480,
        publishers: 760,
        fake_publishers: 152,
        min_surf_secs: 25,
    },
    TorrentProfile {
        name: "SeedNest",
        host: "seednest.torrent.example",
        kind: ExchangeKind::ManualSurf,
        urls_crawled: 4_100,
        self_listings: 779,
        mirror_referrals: 328,
        malicious_urls: 336,
        publishers: 520,
        fake_publishers: 42,
        min_surf_secs: 35,
    },
    TorrentProfile {
        name: "RssLeech",
        host: "rssleech.torrent.example",
        kind: ExchangeKind::AutoSurf,
        urls_crawled: 112_000,
        self_listings: 13_440,
        mirror_referrals: 7_840,
        malicious_urls: 24_450,
        publishers: 1_900,
        fake_publishers: 304,
        min_surf_secs: 12,
    },
];

/// Looks a profile up by name.
pub fn profile(name: &str) -> Option<&'static TorrentProfile> {
    PROFILES.iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_are_sane() {
        for p in &PROFILES {
            assert!(p.self_fraction() + p.mirror_fraction() < 1.0, "{}", p.name);
            let f = p.malicious_fraction();
            assert!(f > 0.0 && f < 0.6, "{}: {f}", p.name);
            let pf = p.fake_publisher_fraction();
            assert!(pf > 0.0 && pf < 0.3, "{}: {pf}", p.name);
        }
    }

    #[test]
    fn kinds_partition_two_manual_one_auto() {
        let manual =
            PROFILES.iter().filter(|p| p.kind == ExchangeKind::ManualSurf).count();
        assert_eq!((manual, PROFILES.len() - manual), (2, 1));
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(profile("OpenBay").unwrap().host, "openbay.torrent.example");
        assert!(profile("PirateBay").is_none());
    }
}
