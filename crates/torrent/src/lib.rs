//! # slum-torrent
//!
//! The torrent-ecosystem traffic substrate: a third malware-distribution
//! ecosystem behind the same [`slum_exchange::TrafficSource`] contract
//! as the traffic exchanges and ad networks.
//!
//! Torrent index sites list content swarms uploaded by publishers; a
//! slice of those publishers are *fake* — accounts that seed
//! scam/malware payload pages (fake codecs, rebundled installers,
//! blacklisted mirror domains) behind legitimate-looking listings. The
//! crawler drives a [`TorrentIndex`] like any other source: each surf
//! step follows one listing to the publisher's payload page, so the
//! corpus flows through the unchanged referral filter, scan pipeline
//! and artifact layer.
//!
//! Mapping onto the crawl contract:
//!
//! - **Self-referrals** — the index's own browse/search pages.
//! - **Popular referrals** — the big community mirror sites every index
//!   cross-links (the analog of the exchanges' popular-site padding).
//! - **Regular URLs** — publisher payload pages: the analysis corpus.
//! - **Manual-surf indexes** — the two gated indexes front their
//!   download links with CAPTCHAs; the scripted operator solves them
//!   and the nonce counter checkpoints exactly like the manual-surf
//!   exchanges'. The RSS-style feed index rotates passively.
//!
//! All rotation randomness comes from the crawler's cursor RNG in an
//! order that is a pure function of index state and virtual time, so
//! worker fan-out, streaming overlap and kill+resume stay
//! bit-identical on this substrate too.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod index;
pub mod params;
pub mod setup;

pub use index::{TorrentIndex, TorrentListing};
pub use params::{profile, TorrentProfile, PROFILES};
pub use setup::{build_all_indexes, build_torrent_index, MIRROR_HOSTS};
