//! Property tests: the JS engine is exposed to attacker-controlled
//! source and must be total (no panics, bounded execution).

use proptest::prelude::*;
use slum_js::obfuscate::{pack, pack_layers, unpack_all_static, Packer};
use slum_js::parser::parse_program;
use slum_js::sandbox::{base64_decode, base64_encode, percent_decode, percent_encode, Sandbox};

proptest! {
    /// Lexer + parser are total over arbitrary strings.
    #[test]
    fn parser_is_total(src in ".{0,300}") {
        let _ = parse_program(&src);
    }

    /// The sandbox never panics and always terminates (budget) on
    /// arbitrary input.
    #[test]
    fn sandbox_is_total(src in ".{0,200}") {
        let mut sandbox = Sandbox::new().with_budget(30_000);
        let report = sandbox.run(&src);
        prop_assert!(report.steps_used <= 30_000);
    }

    /// Sandbox execution on syntactically plausible programs stays
    /// bounded too.
    #[test]
    fn sandbox_bounded_on_loopish_programs(n in 1u32..50, body in "[a-z =+0-9;]{0,40}") {
        let src = format!("for (var i = 0; i < {n}; i++) {{ {body} }}");
        let mut sandbox = Sandbox::new().with_budget(50_000);
        let _ = sandbox.run(&src);
    }

    /// Both packers round-trip arbitrary payloads through the static
    /// unpacker.
    #[test]
    fn packers_round_trip(payload in "[ -~]{1,120}") {
        for packer in [Packer::Unescape, Packer::FromCharCode] {
            let packed = pack(&payload, packer);
            let (inner, layers) = unpack_all_static(&packed);
            prop_assert_eq!(layers, 1);
            prop_assert_eq!(&inner, &payload);
        }
    }

    /// Multi-layer packing unpacks fully with the right layer count.
    #[test]
    fn layered_packing_round_trips(payload in "[ -~]{1,60}", layers in 0u32..5) {
        let packed = pack_layers(&payload, layers);
        let (inner, n) = unpack_all_static(&packed);
        prop_assert_eq!(n, layers);
        prop_assert_eq!(inner, payload);
    }

    /// Percent codec round-trips arbitrary unicode.
    #[test]
    fn percent_round_trip(s in ".{0,120}") {
        prop_assert_eq!(percent_decode(&percent_encode(&s)), s);
    }

    /// Base64 codec round-trips arbitrary ASCII (atob/btoa semantics).
    #[test]
    fn base64_round_trip(s in "[ -~]{0,120}") {
        prop_assert_eq!(base64_decode(&base64_encode(&s)), s);
    }

    /// Executing a packed `document.write` payload produces the same
    /// written HTML as the plain payload (packing is semantics-
    /// preserving under the sandbox).
    #[test]
    fn packed_execution_equivalent(text in "[a-zA-Z0-9 ]{1,40}", layers in 1u32..4) {
        let payload = format!("document.write('{text}');");
        let mut plain_sb = Sandbox::new();
        let plain = plain_sb.run(&payload);
        let mut packed_sb = Sandbox::new();
        let packed = packed_sb.run(&pack_layers(&payload, layers));
        prop_assert_eq!(plain.written_html, packed.written_html);
    }
}
