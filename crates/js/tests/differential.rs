//! Differential property tests: the bytecode VM must be observably
//! identical to the tree-walking interpreter — same effect stream
//! (host-call order), same written HTML, same error strings, same step
//! count (budget-exhaustion point), same eval depth — on arbitrary
//! source, generated programs, and `obfuscate` packed payloads, with
//! and without a warm module cache.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use proptest::prelude::*;
use slum_js::obfuscate::pack_layers;
use slum_js::sandbox::{JsEngine, Sandbox, SandboxReport};
use slum_js::{Module, ModuleStore};

/// Minimal shared module cache for tests.
#[derive(Debug, Default)]
struct TestStore(Mutex<HashMap<u64, Arc<Module>>>);

impl ModuleStore for TestStore {
    fn get(&self, key: u64) -> Option<Arc<Module>> {
        self.0.lock().unwrap().get(&key).cloned()
    }

    fn get_or_compile(
        &self,
        key: u64,
        compile: &mut dyn FnMut() -> Arc<Module>,
    ) -> Arc<Module> {
        let mut map = self.0.lock().unwrap();
        map.entry(key).or_insert_with(|| compile()).clone()
    }
}

/// Everything observable about a run except the VM-only counters.
fn observable(r: &SandboxReport) -> (Vec<String>, &str, &[String], u64, u32) {
    (
        r.effects.iter().map(|e| format!("{e:?}")).collect(),
        &r.written_html,
        &r.errors,
        r.steps_used,
        r.max_eval_depth,
    )
}

fn run_engine(src: &str, engine: JsEngine, budget: u64) -> SandboxReport {
    Sandbox::new().with_engine(engine).with_budget(budget).run(src)
}

fn assert_engines_agree(src: &str, budget: u64) {
    let interp = run_engine(src, JsEngine::TreeWalk, budget);
    let vm = run_engine(src, JsEngine::Vm, budget);
    assert_eq!(observable(&interp), observable(&vm), "engines diverged on {src:?}");

    // A warm cache must not change behaviour either: run twice against
    // the same store and compare both runs to the oracle.
    let store: Arc<dyn ModuleStore> = Arc::new(TestStore::default());
    let cold = Sandbox::new()
        .with_engine(JsEngine::Vm)
        .with_budget(budget)
        .with_module_store(store.clone())
        .run(src);
    let warm = Sandbox::new()
        .with_engine(JsEngine::Vm)
        .with_budget(budget)
        .with_module_store(store)
        .run(src);
    assert_eq!(observable(&interp), observable(&cold), "cold cache diverged on {src:?}");
    assert_eq!(observable(&interp), observable(&warm), "warm cache diverged on {src:?}");
}

/// Expression generator over a small pool of pre-declared names, so
/// most generated programs execute meaningfully rather than dying on
/// the first undefined identifier. `depth` bounds recursion manually
/// (the offline proptest shim has no `prop_recursive`).
fn expr_strategy(depth: u32) -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        (-100i32..100).prop_map(|n| n.to_string()),
        "[a-z]{0,6}".prop_map(|s| format!("'{s}'")),
        Just("true".to_string()),
        Just("false".to_string()),
        Just("null".to_string()),
        Just("undefined".to_string()),
        Just("x".to_string()),
        Just("y".to_string()),
        Just("o.a".to_string()),
        Just("arr[0]".to_string()),
        Just("arr.length".to_string()),
        Just("missing_name".to_string()),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let op = prop_oneof![
        Just("+"),
        Just("-"),
        Just("*"),
        Just("%"),
        Just("=="),
        Just("==="),
        Just("!="),
        Just("<"),
        Just(">="),
        Just("&&"),
        Just("||"),
    ];
    prop_oneof![
        leaf,
        (expr_strategy(depth - 1), op, expr_strategy(depth - 1))
            .prop_map(|(a, op, b)| format!("({a} {op} {b})")),
        expr_strategy(depth - 1).prop_map(|a| format!("(typeof {a})")),
        (expr_strategy(depth - 1), expr_strategy(depth - 1), expr_strategy(depth - 1))
            .prop_map(|(c, t, f)| format!("({c} ? {t} : {f})")),
        expr_strategy(depth - 1).prop_map(|a| format!("(-{a})")),
        expr_strategy(depth - 1).prop_map(|a| format!("(!{a})")),
        expr_strategy(depth - 1).prop_map(|a| format!("f({a})")),
        expr_strategy(depth - 1).prop_map(|a| format!("('' + {a})")),
    ]
    .boxed()
}

/// Statement templates exercising every compiled construct: loops with
/// `break`/`continue`, switch fall-through, try/catch, closures,
/// member/index assignment, postfix operators, `for..in`, and eval.
fn stmt_strategy() -> BoxedStrategy<String> {
    let e = || expr_strategy(2);
    prop_oneof![
        e().prop_map(|e| format!("x = {e}; alert(x);")),
        e().prop_map(|e| format!("var v = {e}; alert(v);")),
        e().prop_map(|e| format!("if ({e}) {{ alert('t'); }} else {{ alert('f'); }}")),
        (1u32..5, e()).prop_map(|(n, e)| format!(
            "for (var i = 0; i < {n}; i++) {{ y = y + i; \
             if (i == 1) continue; if (i == 3) break; alert({e}); }}"
        )),
        e().prop_map(|e| format!(
            "try {{ alert(missing_fn()); }} catch (err) {{ alert(err + '|' + {e}); }}"
        )),
        e().prop_map(|e| format!(
            "switch ({e}) {{ case 1: alert('one'); case 'a': alert('a'); \
             break; case true: alert('T'); default: alert('d'); }}"
        )),
        e().prop_map(|e| format!("function g(p) {{ var q = p; return q + 1; }} alert(g({e}));")),
        e().prop_map(|e| format!("o.b = {e}; alert(o.b); alert(o['b']++); alert(o.b);")),
        e().prop_map(|e| format!(
            "for (var k in o) {{ alert(k + ':' + o[k]); }} arr.push({e}); alert(arr.join('-'));"
        )),
        e().prop_map(|e| format!("var w = 0; do {{ w++; }} while (w < 2); alert(w + '' + {e});")),
        e().prop_map(|e| format!("eval('alert(' + {e} + ')');")),
        e().prop_map(|e| format!(
            "var mk = function (n) {{ return function () {{ return n + x; }}; }}; \
             alert(mk({e})());"
        )),
    ]
    .boxed()
}

/// Shared names the statement templates lean on.
const PRELUDE: &str = "var x = 0; var y = 0; var o = {a: 1}; var arr = [1, 2]; \
                       function f(q) { return q; }";

proptest! {
    /// Arbitrary (mostly invalid) source: identical reports, including
    /// parse/lex error strings.
    #[test]
    fn engines_agree_on_arbitrary_source(src in ".{0,200}") {
        assert_engines_agree(&src, 30_000);
    }

    /// Generated programs covering the full compiled statement surface.
    #[test]
    fn engines_agree_on_generated_programs(stmts in collection::vec(stmt_strategy(), 1..5)) {
        let src = format!("{PRELUDE} {}", stmts.join(" "));
        assert_engines_agree(&src, 60_000);
    }

    /// Packed payloads (the campaign-page shape the module cache is
    /// for): eval/unescape/fromCharCode layers must unpack identically.
    #[test]
    fn engines_agree_on_packed_payloads(
        text in "[a-zA-Z0-9 ]{1,40}",
        layers in 1u32..4,
    ) {
        let payload = format!("document.write('{text}'); alert('{text}');");
        assert_engines_agree(&pack_layers(&payload, layers), 120_000);
    }

    /// The budget-exhaustion point is bit-identical: for every budget,
    /// both engines stop after the same number of steps with the same
    /// error.
    #[test]
    fn engines_agree_on_budget_exhaustion_point(budget in 0u64..3000) {
        let src = "var i = 0; while (true) { i = i + 1; \
                   if (i % 7 == 0) { try { i[0](); } catch (e) {} } }";
        assert_engines_agree(src, budget);
    }
}

/// Warm cache sanity outside proptest: the second run of the same
/// payload through one store must record a cache lookup and still
/// produce the oracle report.
#[test]
fn warm_cache_reuses_modules_across_runs() {
    let payload = pack_layers("document.write('warm');", 2);
    let store = Arc::new(TestStore::default());
    let as_dyn: Arc<dyn ModuleStore> = store.clone();

    let first = Sandbox::new().with_module_store(as_dyn.clone()).run(&payload);
    let modules_after_first = store.0.lock().unwrap().len();
    let second = Sandbox::new().with_module_store(as_dyn).run(&payload);

    assert_eq!(observable(&first), observable(&second));
    // Outer script + each eval layer got cached once...
    assert!(modules_after_first >= 2, "expected outer + eval layers cached");
    // ...and the second run compiled nothing new.
    assert_eq!(store.0.lock().unwrap().len(), modules_after_first);
    assert!(second.vm_module_lookups >= 2);
    assert_eq!(first.written_html, "warm");
}
