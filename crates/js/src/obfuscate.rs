//! Obfuscation tooling: packers used by the synthetic web's malicious
//! payloads, and the unpacking/analysis passes used by scanners.
//!
//! The paper notes that "some JavaScript code snippets were obfuscated,
//! which required execution analysis in a virtual machine environment"
//! (§IV-A1). We model the two packer families the 2015-era corpus used
//! most: percent-escaped `eval(unescape(...))` and
//! `eval(String.fromCharCode(...))`, both stackable into multiple layers.

use crate::sandbox::percent_decode;

/// A packer scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Packer {
    /// `eval(unescape('%76%61...'))`
    Unescape,
    /// `eval(String.fromCharCode(118,97,...))`
    FromCharCode,
}

/// Packs `src` under a single layer of the given scheme.
///
/// ```
/// use slum_js::obfuscate::{pack, Packer};
/// let packed = pack("alert(1);", Packer::Unescape);
/// assert!(packed.starts_with("eval(unescape("));
/// ```
pub fn pack(src: &str, packer: Packer) -> String {
    match packer {
        Packer::Unescape => format!("eval(unescape('{}'));", full_percent_encode(src)),
        Packer::FromCharCode => {
            let codes: Vec<String> = src.chars().map(|c| (c as u32).to_string()).collect();
            format!("eval(String.fromCharCode({}));", codes.join(","))
        }
    }
}

/// Packs `src` under `layers` alternating layers (unescape, fromCharCode,
/// unescape, ...). Zero layers returns the source unchanged.
pub fn pack_layers(src: &str, layers: u32) -> String {
    let mut out = src.to_string();
    for i in 0..layers {
        let packer = if i % 2 == 0 { Packer::Unescape } else { Packer::FromCharCode };
        out = pack(&out, packer);
    }
    out
}

/// Percent-encodes *every* character (the aggressive form real packers
/// use — `percent_encode` leaves alphanumerics bare, which would make
/// payload strings trivially greppable).
fn full_percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len() * 3);
    for c in s.chars() {
        if (c as u32) < 256 {
            out.push_str(&format!("%{:02X}", c as u32));
        } else {
            out.push_str(&format!("%u{:04X}", c as u32));
        }
    }
    out
}

/// Attempts one layer of *static* unpacking without executing the code.
///
/// Returns `None` when the source does not match a known packer shape —
/// callers then fall back to dynamic (sandboxed) analysis, mirroring the
/// static-then-dynamic split of tools like Zozzle vs. Rozzle discussed in
/// the paper's related work.
pub fn unpack_static(src: &str) -> Option<String> {
    let trimmed = src.trim();
    if let Some(inner) = extract_call_arg(trimmed, "eval(unescape(") {
        let lit = string_literal_body(&inner)?;
        return Some(percent_decode(&lit));
    }
    if let Some(inner) = extract_call_arg(trimmed, "eval(String.fromCharCode(") {
        let decoded: Option<String> = inner
            .split(',')
            .map(|n| n.trim().parse::<u32>().ok().and_then(char::from_u32))
            .collect();
        return decoded;
    }
    None
}

/// Fully unpacks nested layers statically; returns the innermost code and
/// the number of layers removed.
pub fn unpack_all_static(src: &str) -> (String, u32) {
    let mut cur = src.to_string();
    let mut layers = 0;
    while let Some(next) = unpack_static(&cur) {
        cur = next;
        layers += 1;
        if layers > 32 {
            break; // pathological nesting bomb
        }
    }
    (cur, layers)
}

/// Extracts the argument text of `prefix(...)` calls, handling the
/// trailing `))`/`));` tail.
fn extract_call_arg(src: &str, prefix: &str) -> Option<String> {
    let rest = src.strip_prefix(prefix)?;
    let end = rest.rfind("))")?;
    Some(rest[..end].to_string())
}

/// Strips matching quotes from a string literal.
fn string_literal_body(s: &str) -> Option<String> {
    let s = s.trim();
    let first = s.chars().next()?;
    if (first == '\'' || first == '"') && s.len() >= 2 && s.ends_with(first) {
        return Some(s[1..s.len() - 1].to_string());
    }
    None
}

/// Shannon entropy of the byte distribution, in bits per byte.
pub fn shannon_entropy(s: &str) -> f64 {
    if s.is_empty() {
        return 0.0;
    }
    let mut counts = [0u64; 256];
    for b in s.bytes() {
        counts[b as usize] += 1;
    }
    let len = s.len() as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / len;
            -p * p.log2()
        })
        .sum()
}

/// Heuristic: does this source *look* obfuscated? Used by the
/// Quttera-like static scanner as a suspicion signal.
///
/// Triggers on heavy percent-escape density, `fromCharCode` decoding
/// loops, `eval(`+`unescape(` co-occurrence, or very long single-line
/// high-entropy strings.
pub fn is_likely_obfuscated(src: &str) -> bool {
    let len = src.len().max(1) as f64;
    let pct_density = src.matches('%').count() as f64 / len;
    if pct_density > 0.05 && src.contains("unescape") {
        return true;
    }
    if src.contains("fromCharCode") && src.matches(',').count() > 20 {
        return true;
    }
    if src.contains("eval(") && (src.contains("unescape(") || src.contains("atob(")) {
        return true;
    }
    // Long packed one-liners carry much higher entropy than hand-written
    // JS (~4.2 bits/byte); percent-packed payloads exceed 5.
    src.len() > 512 && !src.contains('\n') && shannon_entropy(src) > 5.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sandbox::{Effect, Sandbox};

    const PAYLOAD: &str = "document.write('<iframe src=\"http://evil.example/\" width=\"1\" height=\"1\"></iframe>');";

    #[test]
    fn pack_unpack_unescape_round_trip() {
        let packed = pack(PAYLOAD, Packer::Unescape);
        assert_eq!(unpack_static(&packed).as_deref(), Some(PAYLOAD));
    }

    #[test]
    fn pack_unpack_fromcharcode_round_trip() {
        let packed = pack(PAYLOAD, Packer::FromCharCode);
        assert_eq!(unpack_static(&packed).as_deref(), Some(PAYLOAD));
    }

    #[test]
    fn multi_layer_unpack_counts_layers() {
        let packed = pack_layers(PAYLOAD, 3);
        let (inner, layers) = unpack_all_static(&packed);
        assert_eq!(layers, 3);
        assert_eq!(inner, PAYLOAD);
    }

    #[test]
    fn zero_layers_is_identity() {
        assert_eq!(pack_layers(PAYLOAD, 0), PAYLOAD);
        let (inner, layers) = unpack_all_static(PAYLOAD);
        assert_eq!(layers, 0);
        assert_eq!(inner, PAYLOAD);
    }

    #[test]
    fn packed_payload_executes_identically() {
        // Dynamic analysis ground truth: the packed payload must produce
        // the same effects as the original when executed.
        let mut sb = Sandbox::new();
        let plain = sb.run(PAYLOAD);
        let mut sb2 = Sandbox::new();
        let packed = sb2.run(&pack_layers(PAYLOAD, 2));
        let plain_writes: Vec<_> = plain
            .effects
            .iter()
            .filter(|e| matches!(e, Effect::DocumentWrite(_)))
            .collect();
        let packed_writes: Vec<_> = packed
            .effects
            .iter()
            .filter(|e| matches!(e, Effect::DocumentWrite(_)))
            .collect();
        assert_eq!(plain_writes, packed_writes);
        assert_eq!(packed.max_eval_depth, 2);
    }

    #[test]
    fn unpack_rejects_plain_source() {
        assert_eq!(unpack_static("var x = 1;"), None);
        assert_eq!(unpack_static("eval(dynamicCode)"), None);
    }

    #[test]
    fn entropy_ordering() {
        let repetitive = "spam spam spam spam spam spam spam spam spam spam";
        let packed = full_percent_encode(PAYLOAD);
        assert!(shannon_entropy(&packed) > shannon_entropy(repetitive));
        assert_eq!(shannon_entropy(""), 0.0);
        assert_eq!(shannon_entropy("aaaa"), 0.0);
        // Uniform binary alphabet → exactly 1 bit/byte.
        assert!((shannon_entropy("abababab") - 1.0).abs() < 1e-9);
    }

    #[test]
    fn obfuscation_heuristic_hits_packed_misses_plain() {
        assert!(is_likely_obfuscated(&pack(PAYLOAD, Packer::Unescape)));
        assert!(is_likely_obfuscated(&pack(PAYLOAD, Packer::FromCharCode)));
        assert!(!is_likely_obfuscated(PAYLOAD));
        assert!(!is_likely_obfuscated("function add(a, b) { return a + b; }"));
    }

    #[test]
    fn nesting_bomb_terminates() {
        let bomb = pack_layers("alert(1);", 8);
        let (inner, layers) = unpack_all_static(&bomb);
        assert_eq!(layers, 8);
        assert_eq!(inner, "alert(1);");
    }
}
