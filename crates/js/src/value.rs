//! Runtime values for the interpreter.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

use crate::ast::Stmt;
use crate::compile::Module;
use crate::env::EnvRef;

/// Shared, mutable object storage.
pub type ObjRef = Rc<RefCell<ObjectData>>;

/// Backing data of an object (including arrays, which carry the
/// `"Array"` class and numeric-string keys).
#[derive(Debug, Default)]
pub struct ObjectData {
    /// Property map. Array elements live here under numeric-string keys.
    pub props: BTreeMap<String, Value>,
    /// Internal class tag: `"Array"`, `"Object"`, or a host class name.
    pub class: String,
}

impl ObjectData {
    /// Creates a plain object.
    pub fn object() -> ObjRef {
        Rc::new(RefCell::new(ObjectData { props: BTreeMap::new(), class: "Object".into() }))
    }

    /// Creates an array object from elements.
    pub fn array(items: Vec<Value>) -> ObjRef {
        let mut props = BTreeMap::new();
        let len = items.len();
        for (i, v) in items.into_iter().enumerate() {
            props.insert(i.to_string(), v);
        }
        props.insert("length".into(), Value::Num(len as f64));
        Rc::new(RefCell::new(ObjectData { props, class: "Array".into() }))
    }
}

/// A user-defined function: parameters, body and captured environment.
#[derive(Debug)]
pub struct FnDef {
    /// Function name, if any (used in `Debug`/`typeof` output only).
    pub name: Option<String>,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body statements (empty for closures minted by the bytecode VM,
    /// which carry [`FnDef::code`] instead).
    pub body: Vec<Stmt>,
    /// Captured lexical environment.
    pub env: EnvRef,
    /// Compiled body: the owning module plus the chunk index within it.
    /// `None` for closures built by the tree-walking interpreter.
    pub code: Option<(Arc<Module>, u32)>,
}

/// A JavaScript value.
#[derive(Clone)]
pub enum Value {
    /// `undefined`
    Undefined,
    /// `null`
    Null,
    /// Boolean.
    Bool(bool),
    /// IEEE-754 number.
    Num(f64),
    /// Immutable string.
    Str(String),
    /// Object or array.
    Object(ObjRef),
    /// User-defined function.
    Function(Rc<FnDef>),
    /// Host (native) function, identified by name and dispatched by the
    /// sandbox.
    Native(&'static str),
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Undefined => write!(f, "undefined"),
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Num(n) => write!(f, "{n}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Object(o) => write!(f, "[object {}]", o.borrow().class),
            Value::Function(d) => {
                write!(f, "[function {}]", d.name.as_deref().unwrap_or("anonymous"))
            }
            Value::Native(n) => write!(f, "[native {n}]"),
        }
    }
}

impl Value {
    /// JavaScript truthiness.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Undefined | Value::Null => false,
            Value::Bool(b) => *b,
            Value::Num(n) => *n != 0.0 && !n.is_nan(),
            Value::Str(s) => !s.is_empty(),
            Value::Object(_) | Value::Function(_) | Value::Native(_) => true,
        }
    }

    /// `ToString` coercion (the subset browsers apply in string contexts).
    pub fn to_js_string(&self) -> String {
        match self {
            Value::Undefined => "undefined".into(),
            Value::Null => "null".into(),
            Value::Bool(b) => b.to_string(),
            Value::Num(n) => format_number(*n),
            Value::Str(s) => s.clone(),
            Value::Object(o) => {
                let data = o.borrow();
                if data.class == "Array" {
                    let len = data
                        .props
                        .get("length")
                        .and_then(Value::as_number)
                        .unwrap_or(0.0) as usize;
                    (0..len)
                        .map(|i| {
                            data.props
                                .get(&i.to_string())
                                .map(Value::to_js_string)
                                .unwrap_or_default()
                        })
                        .collect::<Vec<_>>()
                        .join(",")
                } else {
                    "[object Object]".into()
                }
            }
            Value::Function(d) => {
                format!("function {}() {{ ... }}", d.name.as_deref().unwrap_or(""))
            }
            Value::Native(n) => format!("function {n}() {{ [native code] }}"),
        }
    }

    /// `ToNumber` coercion.
    pub fn to_number(&self) -> f64 {
        match self {
            Value::Undefined => f64::NAN,
            Value::Null => 0.0,
            Value::Bool(b) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
            Value::Num(n) => *n,
            Value::Str(s) => {
                let t = s.trim();
                if t.is_empty() {
                    0.0
                } else {
                    t.parse::<f64>().unwrap_or(f64::NAN)
                }
            }
            Value::Object(_) | Value::Function(_) | Value::Native(_) => f64::NAN,
        }
    }

    /// Returns the numeric payload without coercion.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the string payload without coercion.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// `typeof` semantics.
    pub fn type_of(&self) -> &'static str {
        match self {
            Value::Undefined => "undefined",
            Value::Null => "object",
            Value::Bool(_) => "boolean",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Object(_) => "object",
            Value::Function(_) | Value::Native(_) => "function",
        }
    }

    /// Loose equality (`==`) for the value subset we model.
    pub fn loose_eq(&self, other: &Value) -> bool {
        use Value::*;
        match (self, other) {
            (Undefined | Null, Undefined | Null) => true,
            (Num(a), Num(b)) => a == b,
            (Str(a), Str(b)) => a == b,
            (Bool(_), _) | (_, Bool(_)) => self.to_number() == other.to_number(),
            (Num(_), Str(_)) | (Str(_), Num(_)) => self.to_number() == other.to_number(),
            (Object(a), Object(b)) => Rc::ptr_eq(a, b),
            (Function(a), Function(b)) => Rc::ptr_eq(a, b),
            (Native(a), Native(b)) => a == b,
            _ => false,
        }
    }

    /// Strict equality (`===`).
    pub fn strict_eq(&self, other: &Value) -> bool {
        use Value::*;
        match (self, other) {
            (Undefined, Undefined) | (Null, Null) => true,
            (Bool(a), Bool(b)) => a == b,
            (Num(a), Num(b)) => a == b,
            (Str(a), Str(b)) => a == b,
            (Object(a), Object(b)) => Rc::ptr_eq(a, b),
            (Function(a), Function(b)) => Rc::ptr_eq(a, b),
            (Native(a), Native(b)) => a == b,
            _ => false,
        }
    }
}

/// Formats a number the way JS `ToString` does for the common cases:
/// integral values lose the trailing `.0`.
pub fn format_number(n: f64) -> String {
    if n.is_nan() {
        "NaN".into()
    } else if n.is_infinite() {
        if n > 0.0 {
            "Infinity".into()
        } else {
            "-Infinity".into()
        }
    } else if n == n.trunc() && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness_matrix() {
        assert!(!Value::Undefined.truthy());
        assert!(!Value::Null.truthy());
        assert!(!Value::Num(0.0).truthy());
        assert!(!Value::Num(f64::NAN).truthy());
        assert!(!Value::Str(String::new()).truthy());
        assert!(Value::Num(-1.0).truthy());
        assert!(Value::Str("0".into()).truthy());
        assert!(Value::Object(ObjectData::object()).truthy());
    }

    #[test]
    fn number_formatting() {
        assert_eq!(format_number(42.0), "42");
        assert_eq!(format_number(3.5), "3.5");
        assert_eq!(format_number(f64::NAN), "NaN");
        assert_eq!(format_number(-0.0), "0");
    }

    #[test]
    fn string_coercion_of_array() {
        let arr = ObjectData::array(vec![Value::Num(1.0), Value::Str("b".into())]);
        assert_eq!(Value::Object(arr).to_js_string(), "1,b");
    }

    #[test]
    fn to_number_coercions() {
        assert_eq!(Value::Str(" 12 ".into()).to_number(), 12.0);
        assert_eq!(Value::Str("".into()).to_number(), 0.0);
        assert!(Value::Str("abc".into()).to_number().is_nan());
        assert_eq!(Value::Bool(true).to_number(), 1.0);
        assert_eq!(Value::Null.to_number(), 0.0);
        assert!(Value::Undefined.to_number().is_nan());
    }

    #[test]
    fn loose_vs_strict_equality() {
        assert!(Value::Num(1.0).loose_eq(&Value::Str("1".into())));
        assert!(!Value::Num(1.0).strict_eq(&Value::Str("1".into())));
        assert!(Value::Null.loose_eq(&Value::Undefined));
        assert!(!Value::Null.strict_eq(&Value::Undefined));
        let o = ObjectData::object();
        assert!(Value::Object(o.clone()).strict_eq(&Value::Object(o.clone())));
        assert!(!Value::Object(o).strict_eq(&Value::Object(ObjectData::object())));
    }

    #[test]
    fn typeof_values() {
        assert_eq!(Value::Undefined.type_of(), "undefined");
        assert_eq!(Value::Null.type_of(), "object");
        assert_eq!(Value::Native("x").type_of(), "function");
    }
}
