//! Tokenizer for the JavaScript subset.

use crate::JsError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword.
    Ident(String),
    /// Numeric literal (decimal or hex).
    Num(f64),
    /// String literal (quotes stripped, escapes resolved).
    Str(String),
    /// Punctuation / operator, e.g. `==`, `(`, `+=`.
    Punct(&'static str),
}

/// All multi- and single-character punctuators, longest first so maximal
/// munch works by scanning in order.
const PUNCTS: [&str; 44] = [
    "===", "!==", ">>>", "&&=", "||=", "==", "!=", "<=", ">=", "&&", "||", "++", "--", "+=", "-=",
    "*=", "/=", "%=", "<<", ">>", "&=", "|=", "^=", "=>", "{", "}", "(", ")", "[", "]", ";", ",",
    "<", ">", "+", "-", "*", "/", "%", "=", "!", "?", ":", ".",
];

/// Tokenizes `src`.
///
/// # Errors
///
/// Returns [`JsError::Lex`] on an unterminated string or an unexpected
/// byte. Comments (`//` and `/* */`) are skipped.
pub fn lex(src: &str) -> Result<Vec<Token>, JsError> {
    let bytes: Vec<char> = src.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let n = bytes.len();

    while i < n {
        let c = bytes[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < n {
            if bytes[i + 1] == '/' {
                while i < n && bytes[i] != '\n' {
                    i += 1;
                }
                continue;
            }
            if bytes[i + 1] == '*' {
                i += 2;
                while i + 1 < n && !(bytes[i] == '*' && bytes[i + 1] == '/') {
                    i += 1;
                }
                i = (i + 2).min(n);
                continue;
            }
        }
        // Strings.
        if c == '"' || c == '\'' {
            let (s, next) = lex_string(&bytes, i, c)?;
            tokens.push(Token::Str(s));
            i = next;
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() || (c == '.' && i + 1 < n && bytes[i + 1].is_ascii_digit()) {
            let (num, next) = lex_number(&bytes, i)?;
            tokens.push(Token::Num(num));
            i = next;
            continue;
        }
        // Identifiers / keywords.
        if c.is_ascii_alphabetic() || c == '_' || c == '$' {
            let start = i;
            while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_' || bytes[i] == '$')
            {
                i += 1;
            }
            tokens.push(Token::Ident(bytes[start..i].iter().collect()));
            continue;
        }
        // Punctuation, maximal munch.
        let rest: String = bytes[i..(i + 3).min(n)].iter().collect();
        let matched = PUNCTS.iter().find(|p| rest.starts_with(**p));
        match matched {
            Some(p) => {
                tokens.push(Token::Punct(p));
                i += p.len();
            }
            None => {
                return Err(JsError::Lex(format!("unexpected character {c:?} at offset {i}")));
            }
        }
    }
    Ok(tokens)
}

fn lex_string(bytes: &[char], start: usize, quote: char) -> Result<(String, usize), JsError> {
    let mut out = String::new();
    let mut i = start + 1;
    let n = bytes.len();
    while i < n {
        let c = bytes[i];
        if c == quote {
            return Ok((out, i + 1));
        }
        if c == '\\' && i + 1 < n {
            let esc = bytes[i + 1];
            i += 2;
            match esc {
                'n' => out.push('\n'),
                't' => out.push('\t'),
                'r' => out.push('\r'),
                '0' => out.push('\0'),
                'x' if i + 1 < n => {
                    let hex: String = bytes[i..i + 2].iter().collect();
                    if let Ok(code) = u32::from_str_radix(&hex, 16) {
                        if let Some(ch) = char::from_u32(code) {
                            out.push(ch);
                        }
                    }
                    i += 2;
                }
                'u' if i + 3 < n => {
                    let hex: String = bytes[i..i + 4].iter().collect();
                    if let Ok(code) = u32::from_str_radix(&hex, 16) {
                        if let Some(ch) = char::from_u32(code) {
                            out.push(ch);
                        }
                    }
                    i += 4;
                }
                other => out.push(other),
            }
            continue;
        }
        out.push(c);
        i += 1;
    }
    Err(JsError::Lex("unterminated string literal".into()))
}

fn lex_number(bytes: &[char], start: usize) -> Result<(f64, usize), JsError> {
    let n = bytes.len();
    let mut i = start;
    // Hex literal.
    if bytes[i] == '0' && i + 1 < n && (bytes[i + 1] == 'x' || bytes[i + 1] == 'X') {
        i += 2;
        let hstart = i;
        while i < n && bytes[i].is_ascii_hexdigit() {
            i += 1;
        }
        let hex: String = bytes[hstart..i].iter().collect();
        let v = u64::from_str_radix(&hex, 16)
            .map_err(|_| JsError::Lex("bad hex literal".into()))?;
        return Ok((v as f64, i));
    }
    let mut seen_dot = false;
    while i < n {
        let c = bytes[i];
        if c.is_ascii_digit() {
            i += 1;
        } else if c == '.' && !seen_dot {
            seen_dot = true;
            i += 1;
        } else if (c == 'e' || c == 'E')
            && i + 1 < n
            && (bytes[i + 1].is_ascii_digit() || bytes[i + 1] == '-' || bytes[i + 1] == '+')
        {
            i += 2;
            while i < n && bytes[i].is_ascii_digit() {
                i += 1;
            }
            break;
        } else {
            break;
        }
    }
    let text: String = bytes[start..i].iter().collect();
    text.parse::<f64>()
        .map(|v| (v, i))
        .map_err(|_| JsError::Lex(format!("bad number literal {text:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idents_numbers_strings() {
        let t = lex("var x = 42; y = 'hi';").unwrap();
        assert_eq!(t[0], Token::Ident("var".into()));
        assert_eq!(t[1], Token::Ident("x".into()));
        assert_eq!(t[2], Token::Punct("="));
        assert_eq!(t[3], Token::Num(42.0));
        assert!(t.contains(&Token::Str("hi".into())));
    }

    #[test]
    fn string_escapes() {
        let t = lex(r#"'a\nb\t\x41B\\'"#).unwrap();
        assert_eq!(t[0], Token::Str("a\nb\tAB\\".into()));
    }

    #[test]
    fn both_quote_styles() {
        let t = lex(r#""dq" 'sq'"#).unwrap();
        assert_eq!(t, vec![Token::Str("dq".into()), Token::Str("sq".into())]);
    }

    #[test]
    fn hex_and_float_numbers() {
        let t = lex("0xFF 3.25 1e3 .5").unwrap();
        assert_eq!(t, vec![Token::Num(255.0), Token::Num(3.25), Token::Num(1000.0), Token::Num(0.5)]);
    }

    #[test]
    fn comments_skipped() {
        let t = lex("a // line\n/* block\nmore */ b").unwrap();
        assert_eq!(t, vec![Token::Ident("a".into()), Token::Ident("b".into())]);
    }

    #[test]
    fn maximal_munch_operators() {
        let t = lex("a===b!==c==d!=e<=f").unwrap();
        let puncts: Vec<&str> = t
            .iter()
            .filter_map(|tok| match tok {
                Token::Punct(p) => Some(*p),
                _ => None,
            })
            .collect();
        assert_eq!(puncts, vec!["===", "!==", "==", "!=", "<="]);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(matches!(lex("'oops"), Err(JsError::Lex(_))));
    }

    #[test]
    fn unexpected_char_errors() {
        assert!(matches!(lex("a # b"), Err(JsError::Lex(_))));
    }

    #[test]
    fn dollar_and_underscore_idents() {
        let t = lex("$a _b c$d").unwrap();
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn empty_source() {
        assert!(lex("").unwrap().is_empty());
    }
}
