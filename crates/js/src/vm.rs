//! Stack-based bytecode VM.
//!
//! Executes [`crate::compile::Module`]s produced by the bytecode
//! compiler. The VM honours exactly the contracts the tree-walking
//! interpreter established — the same step budget (one
//! [`crate::compile::Insn::Tick`] per interpreter tick site), the same
//! [`Host`] callout points in the same order, the same `JsError`
//! values, and the same 64-frame call-depth cap — so the interpreter
//! can serve as a differential-testing oracle while the VM carries the
//! scan hot path.
//!
//! When constructed with a [`ModuleStore`], top-level programs (and
//! `eval` layers, which flow through the same [`EngineCtx::run_program`]
//! entry point) are compiled once per source hash and shared across
//! workers: campaign pages reusing a packed payload skip both the
//! parse and the compile on warm lookups.

use std::rc::Rc;
use std::sync::Arc;

use crate::ast::UnOp;
use crate::compile::{
    compile_function, compile_program, source_hash, HandlerKind, Insn, Module, ModuleStore,
};
use crate::env::{Env, EnvRef};
use crate::interp::{binop_eval, member_get, member_set, EngineCtx, Host};
use crate::parser::parse_program;
use crate::value::{FnDef, ObjectData, Value};
use crate::JsError;

/// A live error handler: where to resume and how much frame state to
/// drop on the way there.
struct Handler {
    kind: HandlerKind,
    target: u32,
    stack_len: usize,
    env_len: usize,
    iter_len: usize,
}

/// Bytecode executor state: budget, call depth, and instrumentation.
pub struct Vm {
    steps_remaining: u64,
    call_depth: u32,
    max_call_depth: u32,
    /// Total budget steps consumed (identical to the interpreter's
    /// count on the same script — tick parity is a hard invariant).
    pub steps_used: u64,
    /// Total instructions dispatched (deterministic per script;
    /// surfaces as `js.vm.instructions`).
    pub instructions: u64,
    /// Module-cache lookups issued (hits + misses).
    pub module_lookups: u64,
    store: Option<Arc<dyn ModuleStore>>,
}

impl Vm {
    /// Creates a VM with the given step budget and optional shared
    /// module cache.
    pub fn new(budget: u64, store: Option<Arc<dyn ModuleStore>>) -> Self {
        Vm {
            steps_remaining: budget,
            call_depth: 0,
            max_call_depth: 64,
            steps_used: 0,
            instructions: 0,
            module_lookups: 0,
            store,
        }
    }

    fn tick(&mut self) -> Result<(), JsError> {
        if self.steps_remaining == 0 {
            return Err(JsError::BudgetExhausted);
        }
        self.steps_remaining -= 1;
        self.steps_used += 1;
        Ok(())
    }

    /// Parses (on cache miss), compiles and runs `src` in `env`.
    /// Lex/parse errors surface as the `Err` variant exactly as the
    /// interpreter path would produce them.
    pub fn run_source(
        &mut self,
        src: &str,
        env: &EnvRef,
        host: &mut dyn Host,
    ) -> Result<(), JsError> {
        let module = self.obtain_module(src)?;
        self.run_chunk(&module, 0, env.clone(), host).map(|_| ())
    }

    /// Fetches the compiled module for `src`, consulting the shared
    /// store first. A warm hit skips both the parse and the compile —
    /// that is the entire point of the cache.
    fn obtain_module(&mut self, src: &str) -> Result<Arc<Module>, JsError> {
        let key = source_hash(src);
        if let Some(store) = self.store.clone() {
            self.module_lookups += 1;
            if let Some(m) = store.get(key) {
                return Ok(m);
            }
            let prog = parse_program(src)?;
            Ok(store.get_or_compile(key, &mut || compile_program(&prog, key)))
        } else {
            let prog = parse_program(src)?;
            Ok(compile_program(&prog, key))
        }
    }

    /// Invokes a function value (compiled chunk, or an interpreter-made
    /// closure compiled on the fly as a fallback).
    fn call_def(
        &mut self,
        def: &FnDef,
        this_val: Value,
        args: Vec<Value>,
        host: &mut dyn Host,
    ) -> Result<Value, JsError> {
        if self.call_depth >= self.max_call_depth {
            return Err(JsError::Runtime("maximum call depth exceeded".into()));
        }
        let (module, chunk_idx) = match &def.code {
            Some((m, i)) => (m.clone(), *i),
            None => (compile_function(def.name.as_deref(), &def.params, &def.body), 0),
        };
        let scope = {
            let chunk = &module.chunks[chunk_idx as usize];
            let scope = match &chunk.slot_map {
                Some(map) => Env::child_with_slots(&def.env, map.clone(), chunk.n_slots),
                None => Env::child(&def.env),
            };
            {
                let mut s = scope.borrow_mut();
                for (i, p) in chunk.params.iter().enumerate() {
                    s.declare(p.clone(), args.get(i).cloned().unwrap_or(Value::Undefined));
                }
                s.declare("this", this_val);
                s.declare("arguments", Value::Object(ObjectData::array(args)));
            }
            scope
        };
        self.call_depth += 1;
        let result = self.run_chunk(&module, chunk_idx, scope, host);
        self.call_depth -= 1;
        result
    }

    /// The dispatch loop. One Rust frame per JS activation (sound
    /// because the call-depth cap is 64); within a frame the value
    /// stack, scope stack, iterator stack and handler stack are plain
    /// vectors the compiler keeps balanced.
    fn run_chunk(
        &mut self,
        module: &Arc<Module>,
        chunk_idx: u32,
        base_env: EnvRef,
        host: &mut dyn Host,
    ) -> Result<Value, JsError> {
        let chunk = &module.chunks[chunk_idx as usize];
        let consts = &module.consts;
        let mut stack: Vec<Value> = Vec::new();
        let mut envs: Vec<EnvRef> = vec![base_env];
        let mut iters: Vec<(Vec<String>, usize)> = Vec::new();
        let mut handlers: Vec<Handler> = Vec::new();
        let mut ip: usize = 0;
        'dispatch: loop {
            let Some(insn) = chunk.code.get(ip) else {
                // Chunks end in Return/Halt; falling off is a compiler
                // bug but completing quietly beats a panic on it.
                return Ok(Value::Undefined);
            };
            ip += 1;
            self.instructions += 1;
            // Fallible instructions break out with the error; the
            // handler unwind below decides whether it is caught.
            let err: JsError = 'step: {
                match insn {
                    Insn::Tick => {
                        if let Err(e) = self.tick() {
                            break 'step e;
                        }
                    }
                    Insn::PushNum(n) => stack.push(Value::Num(*n)),
                    Insn::PushStr(c) => stack.push(Value::Str(consts[*c as usize].clone())),
                    Insn::PushBool(b) => stack.push(Value::Bool(*b)),
                    Insn::PushNull => stack.push(Value::Null),
                    Insn::PushUndefined => stack.push(Value::Undefined),
                    Insn::Pop => {
                        stack.pop();
                    }
                    Insn::Dup => {
                        let top = stack.last().expect("dup on empty stack").clone();
                        stack.push(top);
                    }
                    Insn::LoadName(c) => {
                        let name = &consts[*c as usize];
                        match Env::lookup(env_top(&envs), name) {
                            Some(v) => stack.push(v),
                            None => {
                                break 'step JsError::Runtime(format!("{name} is not defined"))
                            }
                        }
                    }
                    Insn::LoadSlot { slot, name } => {
                        let env = env_top(&envs);
                        if let Some(v) = env.borrow().get_slot(*slot) {
                            stack.push(v);
                        } else {
                            // Slot undeclared here: fall through the
                            // chain like the interpreter's name walk.
                            let name = &consts[*name as usize];
                            match Env::lookup(env, name) {
                                Some(v) => stack.push(v),
                                None => {
                                    break 'step JsError::Runtime(format!(
                                        "{name} is not defined"
                                    ))
                                }
                            }
                        }
                    }
                    Insn::StoreName(c) => {
                        let value = stack.pop().expect("store on empty stack");
                        Env::assign(env_top(&envs), &consts[*c as usize], value);
                    }
                    Insn::StoreSlot { slot, name } => {
                        let value = stack.pop().expect("store on empty stack");
                        let env = env_top(&envs);
                        let declared = env.borrow().get_slot(*slot).is_some();
                        if declared {
                            env.borrow_mut().set_slot(*slot, value);
                        } else {
                            Env::assign(env, &consts[*name as usize], value);
                        }
                    }
                    Insn::DeclareName(c) => {
                        let value = stack.pop().expect("declare on empty stack");
                        env_top(&envs).borrow_mut().declare(consts[*c as usize].clone(), value);
                    }
                    Insn::DeclareFn(ci) => {
                        let f = make_closure(module, *ci, env_top(&envs));
                        let name = module.chunks[*ci as usize]
                            .name
                            .clone()
                            .expect("hoisted function without a name");
                        env_top(&envs).borrow_mut().declare(name, f);
                    }
                    Insn::MakeClosure(ci) => {
                        let f = make_closure(module, *ci, env_top(&envs));
                        stack.push(f);
                    }
                    Insn::GetMember(c) => {
                        let base = stack.pop().expect("member on empty stack");
                        match member_get(&base, &consts[*c as usize]) {
                            Ok(v) => stack.push(v),
                            Err(e) => break 'step e,
                        }
                    }
                    Insn::GetIndex => {
                        let idx = stack.pop().expect("index on empty stack");
                        let base = stack.pop().expect("index base on empty stack");
                        match member_get(&base, &idx.to_js_string()) {
                            Ok(v) => stack.push(v),
                            Err(e) => break 'step e,
                        }
                    }
                    Insn::GetMethod(c) => {
                        let base = stack.pop().expect("method base on empty stack");
                        match member_get(&base, &consts[*c as usize]) {
                            Ok(f) => {
                                stack.push(base);
                                stack.push(f);
                            }
                            Err(e) => break 'step e,
                        }
                    }
                    Insn::GetMethodIndex => {
                        let idx = stack.pop().expect("method index on empty stack");
                        let base = stack.pop().expect("method base on empty stack");
                        match member_get(&base, &idx.to_js_string()) {
                            Ok(f) => {
                                stack.push(base);
                                stack.push(f);
                            }
                            Err(e) => break 'step e,
                        }
                    }
                    Insn::SetMember(c) => {
                        let base = stack.pop().expect("set base on empty stack");
                        let value = stack.pop().expect("set value on empty stack");
                        if let Err(e) = member_set(&base, &consts[*c as usize], value, host) {
                            break 'step e;
                        }
                    }
                    Insn::SetIndex => {
                        let idx = stack.pop().expect("set index on empty stack");
                        let base = stack.pop().expect("set base on empty stack");
                        let value = stack.pop().expect("set value on empty stack");
                        if let Err(e) = member_set(&base, &idx.to_js_string(), value, host) {
                            break 'step e;
                        }
                    }
                    Insn::ObjInsert(c) => {
                        let value = stack.pop().expect("insert on empty stack");
                        if let Some(Value::Object(o)) = stack.last() {
                            o.borrow_mut().props.insert(consts[*c as usize].clone(), value);
                        }
                    }
                    Insn::MakeArray(n) => {
                        let items = stack.split_off(stack.len() - *n as usize);
                        stack.push(Value::Object(ObjectData::array(items)));
                    }
                    Insn::MakeObject => stack.push(Value::Object(ObjectData::object())),
                    Insn::Binary(op) => {
                        let r = stack.pop().expect("binop rhs on empty stack");
                        let l = stack.pop().expect("binop lhs on empty stack");
                        match binop_eval(*op, l, r) {
                            Ok(v) => stack.push(v),
                            Err(e) => break 'step e,
                        }
                    }
                    Insn::Unary(op) => {
                        let v = stack.pop().expect("unary on empty stack");
                        stack.push(match op {
                            UnOp::Not => Value::Bool(!v.truthy()),
                            UnOp::Neg => Value::Num(-v.to_number()),
                            UnOp::Pos => Value::Num(v.to_number()),
                            UnOp::TypeOf => unreachable!("typeof compiles to a handler region"),
                        });
                    }
                    Insn::TypeOfValue => {
                        let v = stack.pop().expect("typeof on empty stack");
                        stack.push(Value::Str(v.type_of().to_string()));
                    }
                    Insn::ToNumber => {
                        let v = stack.pop().expect("tonumber on empty stack");
                        stack.push(Value::Num(v.to_number()));
                    }
                    Insn::AddConst(d) => {
                        let v = stack.pop().expect("addconst on empty stack");
                        stack.push(Value::Num(v.to_number() + d));
                    }
                    Insn::Call(n) => {
                        let args = stack.split_off(stack.len() - *n as usize);
                        let func = stack.pop().expect("callee on empty stack");
                        let this_val = stack.pop().expect("this on empty stack");
                        let result = match func {
                            Value::Function(def) => self.call_def(&def, this_val, args, host),
                            Value::Native(name) => {
                                let env = env_top(&envs).clone();
                                host.call_native(self, &env, name, this_val, args)
                            }
                            other => {
                                Err(JsError::Runtime(format!("{other:?} is not a function")))
                            }
                        };
                        match result {
                            Ok(v) => stack.push(v),
                            Err(e) => break 'step e,
                        }
                    }
                    Insn::New(n) => {
                        let args = stack.split_off(stack.len() - *n as usize);
                        let ctor = stack.pop().expect("constructor on empty stack");
                        let result = match ctor {
                            Value::Function(def) => {
                                let this = Value::Object(ObjectData::object());
                                self.call_def(&def, this.clone(), args, host).map(|_| this)
                            }
                            Value::Native(name) => {
                                let env = env_top(&envs).clone();
                                host.call_native(self, &env, name, Value::Undefined, args)
                            }
                            other => {
                                Err(JsError::Runtime(format!("{other:?} is not a constructor")))
                            }
                        };
                        match result {
                            Ok(v) => stack.push(v),
                            Err(e) => break 'step e,
                        }
                    }
                    Insn::Jump(t) => ip = *t as usize,
                    Insn::JumpIfFalsy(t) => {
                        let v = stack.pop().expect("branch on empty stack");
                        if !v.truthy() {
                            ip = *t as usize;
                        }
                    }
                    Insn::JumpIfTruthy(t) => {
                        let v = stack.pop().expect("branch on empty stack");
                        if v.truthy() {
                            ip = *t as usize;
                        }
                    }
                    Insn::JumpIfFalsyKeep(t) => {
                        if !stack.last().expect("branch on empty stack").truthy() {
                            ip = *t as usize;
                        }
                    }
                    Insn::JumpIfTruthyKeep(t) => {
                        if stack.last().expect("branch on empty stack").truthy() {
                            ip = *t as usize;
                        }
                    }
                    Insn::PushScope => {
                        let child = Env::child(env_top(&envs));
                        envs.push(child);
                    }
                    Insn::PopScope => {
                        envs.pop();
                    }
                    Insn::PushHandler { kind, target } => handlers.push(Handler {
                        kind: *kind,
                        target: *target,
                        stack_len: stack.len(),
                        env_len: envs.len(),
                        iter_len: iters.len(),
                    }),
                    Insn::PopHandler => {
                        handlers.pop();
                    }
                    Insn::MakeIter => {
                        let v = stack.pop().expect("iter on empty stack");
                        iters.push((for_in_keys(&v), 0));
                    }
                    Insn::IterNext { name, end } => {
                        let (keys, pos) = iters.last_mut().expect("iter-next without iterator");
                        if *pos < keys.len() {
                            let key = keys[*pos].clone();
                            *pos += 1;
                            env_top(&envs)
                                .borrow_mut()
                                .declare(consts[*name as usize].clone(), Value::Str(key));
                        } else {
                            ip = *end as usize;
                        }
                    }
                    Insn::PopIter => {
                        iters.pop();
                    }
                    Insn::Return => {
                        return Ok(stack.pop().expect("return on empty stack"));
                    }
                    Insn::Halt => return Ok(Value::Undefined),
                    Insn::ThrowConst(c) => {
                        break 'step JsError::Runtime(consts[*c as usize].clone());
                    }
                }
                continue 'dispatch;
            };
            // Unwind: innermost handler out. `typeof` regions swallow
            // everything (the next tick re-raises exhaustion); `catch`
            // swallows everything except budget exhaustion.
            let mut caught = false;
            while let Some(h) = handlers.pop() {
                let catches = match h.kind {
                    HandlerKind::TypeOf => true,
                    HandlerKind::Catch => !matches!(err, JsError::BudgetExhausted),
                };
                if catches {
                    stack.truncate(h.stack_len);
                    envs.truncate(h.env_len);
                    iters.truncate(h.iter_len);
                    stack.push(match h.kind {
                        HandlerKind::TypeOf => Value::Str("undefined".into()),
                        HandlerKind::Catch => Value::Str(err.to_string()),
                    });
                    ip = h.target as usize;
                    caught = true;
                    break;
                }
            }
            if !caught {
                return Err(err);
            }
        }
    }
}

impl EngineCtx for Vm {
    fn call_function_value(
        &mut self,
        host: &mut dyn Host,
        def: &FnDef,
        this_val: Value,
        args: Vec<Value>,
    ) -> Result<Value, JsError> {
        self.call_def(def, this_val, args, host)
    }

    fn run_program(
        &mut self,
        host: &mut dyn Host,
        src: &str,
        env: &EnvRef,
    ) -> Result<(), JsError> {
        self.run_source(src, env, host)
    }

    fn steps_used(&self) -> u64 {
        self.steps_used
    }
}

/// The current scope (innermost entry of the frame's scope stack).
fn env_top(envs: &[EnvRef]) -> &EnvRef {
    envs.last().expect("scope stack underflow")
}

/// Mints a closure over `chunk` and the current scope. A fresh `Rc` per
/// execution matches the interpreter, which builds a new `FnDef` every
/// time it evaluates a function expression or hoists a declaration.
fn make_closure(module: &Arc<Module>, chunk_idx: u32, env: &EnvRef) -> Value {
    let chunk = &module.chunks[chunk_idx as usize];
    Value::Function(Rc::new(FnDef {
        name: chunk.name.clone(),
        params: chunk.params.clone(),
        body: Vec::new(),
        env: env.clone(),
        code: Some((module.clone(), chunk_idx)),
    }))
}

/// `for..in` key snapshot, identical to the interpreter's: own
/// enumerable keys minus array bookkeeping; strings yield index
/// strings.
fn for_in_keys(v: &Value) -> Vec<String> {
    match v {
        Value::Object(o) => o
            .borrow()
            .props
            .keys()
            .filter(|k| k.as_str() != "length" && !k.starts_with("__"))
            .cloned()
            .collect(),
        Value::Str(s) => (0..s.chars().count()).map(|i| i.to_string()).collect(),
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{call_prototype_method, display_value, Interp, DEFAULT_BUDGET};

    /// Minimal host mirroring the interpreter's test host.
    struct TestHost {
        log: Vec<String>,
    }

    impl Host for TestHost {
        fn call_native(
            &mut self,
            _cx: &mut dyn EngineCtx,
            _env: &EnvRef,
            name: &str,
            this_val: Value,
            args: Vec<Value>,
        ) -> Result<Value, JsError> {
            if let Some(r) = call_prototype_method(name, &this_val, &args) {
                return r;
            }
            match name {
                "log" => {
                    self.log.push(args.first().map(display_value).unwrap_or_default());
                    Ok(Value::Undefined)
                }
                other => Err(JsError::Runtime(format!("unknown native {other}"))),
            }
        }
    }

    fn test_env() -> EnvRef {
        let env = Env::global();
        env.borrow_mut().declare("log", Value::Native("log"));
        env.borrow_mut().declare("parseInt", Value::Native("parseInt"));
        env
    }

    fn run_vm(src: &str) -> Vec<String> {
        let env = test_env();
        let mut host = TestHost { log: Vec::new() };
        let mut vm = Vm::new(DEFAULT_BUDGET, None);
        vm.run_source(src, &env, &mut host).expect("vm run");
        host.log
    }

    /// Runs `src` on both engines and asserts identical host-visible
    /// behaviour including the step count.
    fn assert_engines_agree(src: &str) {
        let prog = parse_program(src).expect("parse");
        let i_env = test_env();
        let mut i_host = TestHost { log: Vec::new() };
        let mut interp = Interp::default();
        let i_res = interp.run(&prog, &i_env, &mut i_host);

        let v_env = test_env();
        let mut v_host = TestHost { log: Vec::new() };
        let mut vm = Vm::new(DEFAULT_BUDGET, None);
        let v_res = vm.run_source(src, &v_env, &mut v_host);

        assert_eq!(i_res, v_res, "result mismatch on {src:?}");
        assert_eq!(i_host.log, v_host.log, "host log mismatch on {src:?}");
        assert_eq!(interp.steps_used, vm.steps_used, "step count mismatch on {src:?}");
    }

    #[test]
    fn basics_match_interpreter() {
        for src in [
            "log(2 + 3 * 4);",
            "log('n=' + 42);",
            "var s = 0; for (var i = 1; i <= 10; i++) { s += i; } log(s);",
            "var i = 0; while (true) { i++; if (i >= 3) break; } log(i);",
            "var s = 0; for (var i = 0; i < 5; i++) { if (i == 2) continue; s += i; } log(s);",
            "function mk(n) { return function() { return n + 1; }; } log(mk(4)());",
            "log(f()); function f() { return 'hoisted'; }",
            "function fact(n) { return n <= 1 ? 1 : n * fact(n - 1); } log(fact(10));",
            "var o = {a: 1}; o.b = o.a + 1; log(o.b); o['c'] = 'z'; log(o.c);",
            "var a = [1,2]; a.push(3); log(a.length); log(a.join('-'));",
            "log(typeof nothing_here);",
            "try { missing(); } catch (e) { log('caught'); log(e); }",
            "var i = 5; log(i++); log(i);",
            "var o = {v: 7, get: function() { return this.v; }}; log(o.get());",
            "function f() { return arguments.length; } log(f(1,2,3));",
            "var i = 10; do { log(i); } while (i < 5);",
            "var o = {a: 1, b: 2}; var keys = ''; for (var k in o) { keys += k; } log(keys);",
            "var s = ''; for (var i in 'xyz') { s += i; } log(s);",
            "switch (2) { case 1: log('one'); break; case 2: log('two'); break; default: log('other'); }",
            "switch (1) { case 1: log('a'); case 2: log('b'); break; case 3: log('c'); }",
            "switch ('zz') { case 'a': log('a'); break; default: log('dflt'); }",
            "function f(x) { switch (x) { case 1: return 'one'; default: return 'many'; } } log(f(1)); log(f(9));",
            "log(0 || 'fallback'); log(1 && 2);",
            "log(parseInt('42px')); log(parseInt('ff', 16));",
            "log('abcdef'.substring(1, 3)); log('a,b,c'.split(',').length);",
        ] {
            assert_engines_agree(src);
        }
    }

    #[test]
    fn budget_exhaustion_point_matches_interpreter() {
        let src = "var i = 0; while (true) { i = i + 1; }";
        let prog = parse_program(src).expect("parse");
        for budget in [0, 1, 7, 100, 1001] {
            let mut i_host = TestHost { log: Vec::new() };
            let mut interp = Interp::new(budget);
            let i_res = interp.run(&prog, &Env::global(), &mut i_host);

            let mut v_host = TestHost { log: Vec::new() };
            let mut vm = Vm::new(budget, None);
            let v_res = vm.run_source(src, &Env::global(), &mut v_host);

            assert_eq!(i_res, v_res, "budget {budget}");
            assert_eq!(interp.steps_used, vm.steps_used, "budget {budget}");
        }
    }

    #[test]
    fn budget_exhaustion_not_catchable() {
        let env = Env::global();
        let mut host = TestHost { log: Vec::new() };
        let mut vm = Vm::new(5_000, None);
        assert_eq!(
            vm.run_source("try { while (true) {} } catch (e) { }", &env, &mut host),
            Err(JsError::BudgetExhausted)
        );
    }

    #[test]
    fn deep_recursion_hits_depth_cap() {
        let env = Env::global();
        let mut host = TestHost { log: Vec::new() };
        let mut vm = Vm::new(DEFAULT_BUDGET, None);
        assert!(matches!(
            vm.run_source("function f() { return f(); } f();", &env, &mut host),
            Err(JsError::Runtime(_))
        ));
    }

    #[test]
    fn instructions_are_counted() {
        let env = test_env();
        let mut host = TestHost { log: Vec::new() };
        let mut vm = Vm::new(DEFAULT_BUDGET, None);
        vm.run_source("log(1 + 2);", &env, &mut host).expect("run");
        assert!(vm.instructions > 0);
        assert!(vm.steps_used > 0);
    }

    #[test]
    fn continue_in_switch_arm_is_swallowed() {
        // The interpreter's arm loop treats `continue` like `Normal`:
        // the next arm statement still runs.
        assert_engines_agree(
            "var s = ''; for (var i = 0; i < 2; i++) { \
               switch (i) { case 0: s += 'a'; continue; case 1: s += 'b'; } s += '.'; } log(s);",
        );
    }

    #[test]
    fn slot_fallback_handles_delayed_declaration() {
        // `v` is slot-mapped (top-level var) but read before its
        // declaration executes: the slot is unset, so the read walks
        // out to the global the same way the interpreter would.
        assert_engines_agree("g = 'outer'; function f() { log(typeof v); var v = 1; log(v); } f();");
    }
}
