//! Browser-shaped execution sandbox with an effect log.
//!
//! The sandbox gives a script the browser surface the traffic-exchange
//! malware corpus relies on — `document`, `window`, `navigator`,
//! `location`, `eval`, `unescape` — and records every externally
//! observable action as an [`Effect`]. Behavioural scanners and the
//! headless browser both consume the effect stream.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::compile::ModuleStore;
use crate::env::{Env, EnvRef};
use crate::interp::{
    call_prototype_method, display_value, EngineCtx, Host, Interp, DEFAULT_BUDGET,
};
use crate::parser::parse_program;
use crate::value::{ObjectData, Value};
use crate::vm::Vm;
use crate::JsError;

/// Which execution engine the sandbox drives.
///
/// Both engines produce bit-identical [`SandboxReport`]s (modulo the
/// `vm_*` instrumentation fields, which are zero on the tree-walk
/// path); the tree-walking interpreter survives as the differential-
/// testing oracle while the bytecode VM carries the scan hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JsEngine {
    /// The original AST-walking interpreter ([`crate::interp`]).
    TreeWalk,
    /// The bytecode compiler + stack VM ([`crate::compile`],
    /// [`crate::vm`]), optionally backed by a shared module cache.
    #[default]
    Vm,
}

impl JsEngine {
    /// Parses a CLI/config spelling of an engine name.
    pub fn parse(s: &str) -> Option<JsEngine> {
        match s {
            "vm" | "bytecode" => Some(JsEngine::Vm),
            "interp" | "interpreter" | "tree-walk" | "treewalk" => Some(JsEngine::TreeWalk),
            _ => None,
        }
    }

    /// Canonical name (round-trips through [`JsEngine::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            JsEngine::TreeWalk => "tree-walk",
            JsEngine::Vm => "vm",
        }
    }
}

/// An externally observable action taken by a script.
#[derive(Debug, Clone, PartialEq)]
pub enum Effect {
    /// `document.write(html)` — the written markup (concatenated per call).
    DocumentWrite(String),
    /// `document.createElement(tag)` followed by DOM insertion.
    ElementInserted {
        /// Lower-cased tag name.
        tag: String,
        /// Attributes set on the element before insertion.
        attrs: Vec<(String, String)>,
    },
    /// Navigation via `window.location`/`location.href` assignment.
    Navigate {
        /// Target URL.
        url: String,
    },
    /// `window.open(url)` — pop-up creation.
    Popup {
        /// Target URL ("" for about:blank).
        url: String,
    },
    /// `ExternalInterface.call(name, ...)` from Flash glue code.
    ExternalCall {
        /// Called function path, e.g. `AdFlash.onClick`.
        name: String,
        /// Stringified arguments.
        args: Vec<String>,
    },
    /// `addEventListener`/`on*` registration — fingerprinting scripts
    /// subscribe to `mousemove`/`keydown`/`scroll`.
    ListenerRegistered {
        /// Target description (`document`, `window`, element tag).
        target: String,
        /// Event name.
        event: String,
    },
    /// A layer of `eval` executed dynamically generated code.
    EvalLayer {
        /// Nesting depth (1 = first eval).
        depth: u32,
        /// Byte length of the evaluated code.
        code_len: usize,
    },
    /// `document.cookie = ...`.
    CookieSet(String),
    /// `alert(...)` / `confirm(...)`.
    Dialog(String),
    /// `setTimeout`/`setInterval` callback scheduled (and, in this model,
    /// executed immediately once).
    TimerScheduled,
}

/// Result of running a script in the sandbox.
#[derive(Debug, Clone, Default)]
pub struct SandboxReport {
    /// Ordered effect log.
    pub effects: Vec<Effect>,
    /// Markup accumulated through `document.write`, in write order.
    pub written_html: String,
    /// Errors raised during execution (script-level, non-fatal to the
    /// analysis).
    pub errors: Vec<String>,
    /// Interpreter steps consumed.
    pub steps_used: u64,
    /// Deepest `eval` nesting observed.
    pub max_eval_depth: u32,
    /// Bytecode instructions dispatched (zero on the tree-walk path).
    pub vm_instructions: u64,
    /// Module-cache lookups issued (zero on the tree-walk path or
    /// without a cache).
    pub vm_module_lookups: u64,
}

impl SandboxReport {
    /// True when any effect navigates or opens a window toward `needle`.
    pub fn navigates_to(&self, needle: &str) -> bool {
        self.effects.iter().any(|e| match e {
            Effect::Navigate { url } | Effect::Popup { url } => url.contains(needle),
            _ => false,
        })
    }

    /// All URLs the script tried to reach (navigations + popups).
    pub fn outbound_urls(&self) -> Vec<String> {
        self.effects
            .iter()
            .filter_map(|e| match e {
                Effect::Navigate { url } | Effect::Popup { url } => Some(url.clone()),
                _ => None,
            })
            .collect()
    }
}

/// Mutable browser state shared with natives during a run.
struct BrowserState {
    effects: Vec<Effect>,
    written_html: String,
    errors: Vec<String>,
    eval_depth: u32,
    max_eval_depth: u32,
    /// Elements created via `document.createElement`, keyed by an id we
    /// hand to the script; used to reconstruct attrs on insertion.
    user_agent: String,
    location: String,
    referrer: String,
}

/// A sandboxed script runner.
///
/// Construct, optionally configure the simulated environment
/// ([`Sandbox::with_location`], [`Sandbox::with_user_agent`]), then call
/// [`Sandbox::run`]. The sandbox is reusable; each run gets a fresh
/// global scope and report.
pub struct Sandbox {
    budget: u64,
    user_agent: String,
    location: String,
    referrer: String,
    engine: JsEngine,
    module_store: Option<Arc<dyn ModuleStore>>,
}

impl Default for Sandbox {
    fn default() -> Self {
        Self::new()
    }
}

impl Sandbox {
    /// Creates a sandbox with the default budget and a desktop-browser
    /// user agent.
    pub fn new() -> Self {
        Sandbox {
            budget: DEFAULT_BUDGET,
            user_agent: "Mozilla/5.0 (X11; Linux x86_64; rv:38.0) Gecko/20100101 Firefox/38.0"
                .into(),
            location: "about:blank".into(),
            referrer: String::new(),
            engine: JsEngine::default(),
            module_store: None,
        }
    }

    /// Selects the execution engine (default: [`JsEngine::Vm`]).
    pub fn with_engine(mut self, engine: JsEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Attaches a shared compiled-module cache (VM engine only; the
    /// tree-walk path ignores it). Pages sharing a payload hash then
    /// skip the parse and compile entirely.
    pub fn with_module_store(mut self, store: Arc<dyn ModuleStore>) -> Self {
        self.module_store = Some(store);
        self
    }

    /// Sets the interpreter step budget.
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the simulated `navigator.userAgent`.
    pub fn with_user_agent(mut self, ua: impl Into<String>) -> Self {
        self.user_agent = ua.into();
        self
    }

    /// Sets the simulated `document.location`.
    pub fn with_location(mut self, url: impl Into<String>) -> Self {
        self.location = url.into();
        self
    }

    /// Sets the simulated `document.referrer`.
    pub fn with_referrer(mut self, referrer: impl Into<String>) -> Self {
        self.referrer = referrer.into();
        self
    }

    /// Parses and executes `src`, returning the effect report.
    ///
    /// Script errors (including parse errors) are captured in
    /// [`SandboxReport::errors`]; this method itself never fails.
    pub fn run(&mut self, src: &str) -> SandboxReport {
        let mut state = BrowserState {
            effects: Vec::new(),
            written_html: String::new(),
            errors: Vec::new(),
            eval_depth: 0,
            max_eval_depth: 0,
            user_agent: self.user_agent.clone(),
            location: self.location.clone(),
            referrer: self.referrer.clone(),
        };
        match self.engine {
            JsEngine::TreeWalk => {
                let mut interp = Interp::new(self.budget);
                let program = match parse_program(src) {
                    Ok(p) => p,
                    Err(e) => {
                        state.errors.push(e.to_string());
                        return finish(state, interp.steps_used, 0, 0);
                    }
                };
                let env = global_env(&state);
                let mut host = BrowserHost { state: &mut state };
                if let Err(e) = interp.run(&program, &env, &mut host) {
                    state.errors.push(e.to_string());
                }
                finish(state, interp.steps_used, 0, 0)
            }
            JsEngine::Vm => {
                // The VM parses lazily: a warm module-cache hit skips
                // the parse outright (an erroring source never enters
                // the cache, so parse errors still surface each run).
                let mut vm = Vm::new(self.budget, self.module_store.clone());
                let env = global_env(&state);
                let mut host = BrowserHost { state: &mut state };
                if let Err(e) = vm.run_source(src, &env, &mut host) {
                    state.errors.push(e.to_string());
                }
                finish(state, vm.steps_used, vm.instructions, vm.module_lookups)
            }
        }
    }
}

fn finish(
    state: BrowserState,
    steps_used: u64,
    vm_instructions: u64,
    vm_module_lookups: u64,
) -> SandboxReport {
    SandboxReport {
        effects: state.effects,
        written_html: state.written_html,
        errors: state.errors,
        steps_used,
        max_eval_depth: state.max_eval_depth,
        vm_instructions,
        vm_module_lookups,
    }
}

/// Builds the global scope with the browser object graph.
fn global_env(state: &BrowserState) -> EnvRef {
    let env = Env::global();
    let mut g = env.borrow_mut();

    // document
    let document = ObjectData::object();
    {
        let mut d = document.borrow_mut();
        d.class = "HTMLDocument".into();
        d.props.insert("write".into(), Value::Native("document.write"));
        d.props.insert("writeln".into(), Value::Native("document.writeln"));
        d.props.insert("createElement".into(), Value::Native("document.createElement"));
        d.props.insert("getElementById".into(), Value::Native("document.getElementById"));
        d.props
            .insert("getElementsByTagName".into(), Value::Native("document.getElementsByTagName"));
        d.props.insert("addEventListener".into(), Value::Native("document.addEventListener"));
        d.props.insert("referrer".into(), Value::Str(state.referrer.clone()));
        d.props.insert("cookie".into(), Value::Str(String::new()));
        let body = ObjectData::object();
        body.borrow_mut().class = "HTMLBodyElement".into();
        body.borrow_mut().props.insert("appendChild".into(), Value::Native("node.appendChild"));
        body.borrow_mut()
            .props
            .insert("insertBefore".into(), Value::Native("node.insertBefore"));
        d.props.insert("body".into(), Value::Object(body.clone()));
        d.props.insert("head".into(), Value::Object(body));
        let location = location_object(&state.location);
        d.props.insert("location".into(), Value::Object(location));
    }
    g.declare("document", Value::Object(document));

    // window — also the global `this`; location shared shape.
    let window = ObjectData::object();
    {
        let mut w = window.borrow_mut();
        w.class = "Window".into();
        w.props.insert("open".into(), Value::Native("window.open"));
        w.props.insert("addEventListener".into(), Value::Native("window.addEventListener"));
        w.props.insert("setTimeout".into(), Value::Native("setTimeout"));
        w.props.insert("setInterval".into(), Value::Native("setInterval"));
        w.props.insert("location".into(), Value::Object(location_object(&state.location)));
        w.props.insert("innerWidth".into(), Value::Num(1366.0));
        w.props.insert("innerHeight".into(), Value::Num(768.0));
    }
    g.declare("window", Value::Object(window.clone()));

    // navigator
    let navigator = ObjectData::object();
    {
        let mut n = navigator.borrow_mut();
        n.class = "Navigator".into();
        n.props.insert("userAgent".into(), Value::Str(state.user_agent.clone()));
        n.props.insert("language".into(), Value::Str("en-US".into()));
        n.props.insert("platform".into(), Value::Str("Linux x86_64".into()));
    }
    g.declare("navigator", Value::Object(navigator));

    // location as a bare global too.
    g.declare("location", Value::Object(location_object(&state.location)));

    // screen
    let screen = ObjectData::object();
    screen.borrow_mut().props.insert("width".into(), Value::Num(1366.0));
    screen.borrow_mut().props.insert("height".into(), Value::Num(768.0));
    g.declare("screen", Value::Object(screen));

    // Math (deterministic: random() is seeded constant-progression).
    let math = ObjectData::object();
    {
        let mut m = math.borrow_mut();
        m.props.insert("floor".into(), Value::Native("Math.floor"));
        m.props.insert("ceil".into(), Value::Native("Math.ceil"));
        m.props.insert("round".into(), Value::Native("Math.round"));
        m.props.insert("abs".into(), Value::Native("Math.abs"));
        m.props.insert("random".into(), Value::Native("Math.random"));
        m.props.insert("max".into(), Value::Native("Math.max"));
        m.props.insert("min".into(), Value::Native("Math.min"));
        m.props.insert("pow".into(), Value::Native("Math.pow"));
    }
    g.declare("Math", Value::Object(math));

    // String constructor object with fromCharCode.
    let string_ctor = ObjectData::object();
    string_ctor
        .borrow_mut()
        .props
        .insert("fromCharCode".into(), Value::Native("String.fromCharCode"));
    g.declare("String", Value::Object(string_ctor));

    // ExternalInterface (Flash glue).
    let ext = ObjectData::object();
    ext.borrow_mut().props.insert("call".into(), Value::Native("ExternalInterface.call"));
    g.declare("ExternalInterface", Value::Object(ext));

    // Free functions.
    for native in [
        "eval",
        "unescape",
        "escape",
        "decodeURIComponent",
        "encodeURIComponent",
        "atob",
        "btoa",
        "alert",
        "confirm",
        "setTimeout",
        "setInterval",
        "parseInt",
        "parseFloat",
        "isNaN",
        "Number",
        "Date",
        "Array",
        "Object",
    ] {
        g.declare(native, Value::Native(native_name(native)));
    }
    drop(g);
    env
}

fn location_object(url: &str) -> crate::value::ObjRef {
    let loc = ObjectData::object();
    let mut l = loc.borrow_mut();
    l.class = "Location".into();
    l.props.insert("href".into(), Value::Str(url.to_string()));
    l.props.insert("replace".into(), Value::Native("location.replace"));
    l.props.insert("assign".into(), Value::Native("location.assign"));
    let host = url.split("//").nth(1).map(|r| r.split('/').next().unwrap_or("")).unwrap_or("");
    l.props.insert("host".into(), Value::Str(host.to_string()));
    l.props.insert("hostname".into(), Value::Str(host.to_string()));
    drop(l);
    loc
}

/// Interns native-name strings so `Value::Native` can stay `&'static`.
fn native_name(name: &str) -> &'static str {
    match name {
        "eval" => "eval",
        "unescape" => "unescape",
        "escape" => "escape",
        "decodeURIComponent" => "decodeURIComponent",
        "encodeURIComponent" => "encodeURIComponent",
        "atob" => "atob",
        "btoa" => "btoa",
        "alert" => "alert",
        "confirm" => "confirm",
        "setTimeout" => "setTimeout",
        "setInterval" => "setInterval",
        "parseInt" => "parseInt",
        "parseFloat" => "parseFloat",
        "isNaN" => "isNaN",
        "Number" => "Number",
        "Date" => "Date",
        "Array" => "Array",
        "Object" => "Object",
        other => unreachable!("unregistered native {other}"),
    }
}

struct BrowserHost<'a> {
    state: &'a mut BrowserState,
}

impl BrowserHost<'_> {
    /// After a property write to a `location` object, scripts expect
    /// navigation; the interpreter cannot intercept plain property sets,
    /// so `location.href = url` is detected by the caller re-reading the
    /// object. Instead we expose explicit natives *and* scan for href
    /// mutation — see `Sandbox::run` effect extraction below.
    fn navigate(&mut self, url: String) {
        self.state.effects.push(Effect::Navigate { url });
    }
}

impl Host for BrowserHost<'_> {
    fn on_property_set(&mut self, class: &str, name: &str, value: &Value) {
        match (class, name) {
            ("Location", "href") | ("Window", "location") | ("HTMLDocument", "location") => {
                self.navigate(value.to_js_string());
            }
            ("HTMLDocument", "cookie") => {
                self.state.effects.push(Effect::CookieSet(value.to_js_string()));
            }
            _ => {}
        }
    }

    fn call_native(
        &mut self,
        cx: &mut dyn EngineCtx,
        env: &EnvRef,
        name: &str,
        this_val: Value,
        args: Vec<Value>,
    ) -> Result<Value, JsError> {
        if let Some(r) = call_prototype_method(name, &this_val, &args) {
            return r;
        }
        let arg_str = |i: usize| args.get(i).map(display_value).unwrap_or_default();
        match name {
            "document.write" | "document.writeln" => {
                let html = arg_str(0);
                self.state.written_html.push_str(&html);
                if name.ends_with("ln") {
                    self.state.written_html.push('\n');
                }
                self.state.effects.push(Effect::DocumentWrite(html));
                Ok(Value::Undefined)
            }
            "document.createElement" => {
                let tag = arg_str(0).to_ascii_lowercase();
                let el = ObjectData::object();
                {
                    let mut e = el.borrow_mut();
                    e.class = "Element".into();
                    e.props.insert("tagName".into(), Value::Str(tag.to_ascii_uppercase()));
                    e.props.insert("__tag".into(), Value::Str(tag));
                    e.props.insert("setAttribute".into(), Value::Native("node.setAttribute"));
                    e.props.insert("appendChild".into(), Value::Native("node.appendChild"));
                    e.props
                        .insert("addEventListener".into(), Value::Native("node.addEventListener"));
                    let style = ObjectData::object();
                    style.borrow_mut().class = "CSSStyleDeclaration".into();
                    e.props.insert("style".into(), Value::Object(style));
                }
                Ok(Value::Object(el))
            }
            "node.setAttribute" => {
                if let Value::Object(o) = &this_val {
                    let key = arg_str(0).to_ascii_lowercase();
                    o.borrow_mut().props.insert(key, Value::Str(arg_str(1)));
                }
                Ok(Value::Undefined)
            }
            "node.appendChild" | "node.insertBefore" => {
                // Inserting a created element makes it "real": log it with
                // its collected attributes.
                if let Some(Value::Object(child)) = args.first() {
                    let data = child.borrow();
                    let tag = data
                        .props
                        .get("__tag")
                        .map(Value::to_js_string)
                        .unwrap_or_else(|| "div".into());
                    let mut attrs: Vec<(String, String)> = Vec::new();
                    for (k, v) in &data.props {
                        if matches!(
                            k.as_str(),
                            "src" | "href" | "width" | "height" | "style" | "id" | "name"
                                | "frameborder" | "scrolling" | "allowtransparency"
                        ) {
                            let sv = match v {
                                Value::Object(style) => {
                                    // Serialize style object props.
                                    style
                                        .borrow()
                                        .props
                                        .iter()
                                        .filter_map(|(p, pv)| {
                                            pv.as_str().map(|s| format!("{p}:{s}"))
                                        })
                                        .collect::<Vec<_>>()
                                        .join(";")
                                }
                                other => other.to_js_string(),
                            };
                            if !sv.is_empty() {
                                attrs.push((k.clone(), sv));
                            }
                        }
                    }
                    self.state.effects.push(Effect::ElementInserted { tag, attrs });
                }
                Ok(args.into_iter().next().unwrap_or(Value::Undefined))
            }
            "document.getElementById" | "document.getElementsByTagName" => {
                // Return a permissive stub element so scripts keep going.
                let el = ObjectData::object();
                {
                    let mut e = el.borrow_mut();
                    e.class = "Element".into();
                    e.props.insert("appendChild".into(), Value::Native("node.appendChild"));
                    e.props.insert("setAttribute".into(), Value::Native("node.setAttribute"));
                    e.props
                        .insert("addEventListener".into(), Value::Native("node.addEventListener"));
                    e.props.insert("parentNode".into(), Value::Native("node.appendChild"));
                    let style = ObjectData::object();
                    e.props.insert("style".into(), Value::Object(style));
                    e.props.insert("length".into(), Value::Num(1.0));
                }
                Ok(Value::Object(el))
            }
            "document.addEventListener" | "window.addEventListener" | "node.addEventListener" => {
                let target = match name {
                    "document.addEventListener" => "document",
                    "window.addEventListener" => "window",
                    _ => "element",
                };
                self.state.effects.push(Effect::ListenerRegistered {
                    target: target.into(),
                    event: arg_str(0),
                });
                // Immediately invoke the handler once with a stub event so
                // behavioural analysis sees into it (Rozzle-style forced
                // execution, cheap variant).
                if let Some(Value::Function(def)) = args.get(1) {
                    let event = ObjectData::object();
                    event.borrow_mut().props.insert("type".into(), Value::Str(arg_str(0)));
                    let _ = cx.call_function_value(
                        self,
                        def,
                        Value::Undefined,
                        vec![Value::Object(event)],
                    );
                }
                Ok(Value::Undefined)
            }
            "window.open" => {
                let url = arg_str(0);
                self.state.effects.push(Effect::Popup { url });
                // Return a window-ish stub.
                let w = ObjectData::object();
                w.borrow_mut().class = "Window".into();
                Ok(Value::Object(w))
            }
            "location.replace" | "location.assign" => {
                self.navigate(arg_str(0));
                Ok(Value::Undefined)
            }
            "ExternalInterface.call" => {
                let fname = arg_str(0);
                let rest: Vec<String> = args.iter().skip(1).map(display_value).collect();
                self.state.effects.push(Effect::ExternalCall { name: fname, args: rest });
                Ok(Value::Undefined)
            }
            "eval" => {
                let code = arg_str(0);
                self.state.eval_depth += 1;
                self.state.max_eval_depth = self.state.max_eval_depth.max(self.state.eval_depth);
                self.state
                    .effects
                    .push(Effect::EvalLayer { depth: self.state.eval_depth, code_len: code.len() });
                // Evaluated code runs in the *caller's* scope so that
                // definitions unpacked out of obfuscation layers (e.g.
                // the Flash glue's `AdFlash` object) persist into the
                // surrounding script. The engine owns parsing so the VM
                // can content-hash the layer into its module cache.
                let result = match cx.run_program(self, &code, env) {
                    Ok(()) => Ok(Value::Undefined),
                    Err(JsError::BudgetExhausted) => Err(JsError::BudgetExhausted),
                    Err(e @ (JsError::Parse(_) | JsError::Lex(_))) => {
                        self.state.errors.push(format!("eval parse: {e}"));
                        Ok(Value::Undefined)
                    }
                    Err(e) => {
                        self.state.errors.push(format!("eval: {e}"));
                        Ok(Value::Undefined)
                    }
                };
                self.state.eval_depth -= 1;
                result
            }
            "unescape" | "decodeURIComponent" => {
                Ok(Value::Str(percent_decode(&arg_str(0))))
            }
            "escape" | "encodeURIComponent" => Ok(Value::Str(percent_encode(&arg_str(0)))),
            "atob" => Ok(Value::Str(base64_decode(&arg_str(0)))),
            "btoa" => Ok(Value::Str(base64_encode(&arg_str(0)))),
            "String.fromCharCode" => {
                let s: String = args
                    .iter()
                    .filter_map(|v| char::from_u32(v.to_number() as u32))
                    .collect();
                Ok(Value::Str(s))
            }
            "alert" | "confirm" => {
                self.state.effects.push(Effect::Dialog(arg_str(0)));
                Ok(Value::Bool(true))
            }
            "setTimeout" | "setInterval" => {
                self.state.effects.push(Effect::TimerScheduled);
                // Run the callback once, immediately — time is virtual.
                if let Some(Value::Function(def)) = args.first() {
                    let _ = cx.call_function_value(self, def, Value::Undefined, Vec::new());
                } else if let Some(Value::Str(code)) = args.first() {
                    let code = code.clone();
                    return self.call_native(
                        cx,
                        env,
                        "eval",
                        Value::Undefined,
                        vec![Value::Str(code)],
                    );
                }
                Ok(Value::Num(1.0))
            }
            "Math.floor" => Ok(Value::Num(args.first().map(|v| v.to_number()).unwrap_or(f64::NAN).floor())),
            "Math.ceil" => Ok(Value::Num(args.first().map(|v| v.to_number()).unwrap_or(f64::NAN).ceil())),
            "Math.round" => Ok(Value::Num(args.first().map(|v| v.to_number()).unwrap_or(f64::NAN).round())),
            "Math.abs" => Ok(Value::Num(args.first().map(|v| v.to_number()).unwrap_or(f64::NAN).abs())),
            "Math.random" => Ok(Value::Num(0.42)),
            "Math.max" => Ok(Value::Num(
                args.iter().map(|v| v.to_number()).fold(f64::NEG_INFINITY, f64::max),
            )),
            "Math.min" => Ok(Value::Num(
                args.iter().map(|v| v.to_number()).fold(f64::INFINITY, f64::min),
            )),
            "Math.pow" => {
                let a = args.first().map(|v| v.to_number()).unwrap_or(f64::NAN);
                let b = args.get(1).map(|v| v.to_number()).unwrap_or(f64::NAN);
                Ok(Value::Num(a.powf(b)))
            }
            "Date" => {
                // `new Date()` / `Date()` — virtual epoch constant; `1*new
                // Date()` in the Google Analytics snippet coerces via NaN
                // otherwise.
                let d = ObjectData::object();
                d.borrow_mut().class = "Date".into();
                d.borrow_mut().props.insert("getTime".into(), Value::Native("Math.random"));
                Ok(Value::Object(d))
            }
            "Array" => Ok(Value::Object(ObjectData::array(args))),
            "Object" => Ok(Value::Object(ObjectData::object())),
            other => {
                // Unknown host function: benign no-op, recorded as error
                // for visibility.
                self.state.errors.push(format!("call to unknown native {other}"));
                Ok(Value::Undefined)
            }
        }
    }
}

/// Percent-decodes `%XX` and `%uXXXX` sequences, JS `unescape` style.
/// `%uXXXX` units are UTF-16 code units: surrogate pairs are recombined,
/// lone surrogates pass through verbatim.
pub fn percent_decode(s: &str) -> String {
    let chars: Vec<char> = s.chars().collect();
    // First pass: decode into UTF-16 code units.
    let mut units: Vec<u16> = Vec::with_capacity(s.len());
    let mut i = 0;
    while i < chars.len() {
        if chars[i] == '%' {
            if i + 5 < chars.len() && (chars[i + 1] == 'u' || chars[i + 1] == 'U') {
                let hex: String = chars[i + 2..i + 6].iter().collect();
                if let Ok(code) = u16::from_str_radix(&hex, 16) {
                    units.push(code);
                    i += 6;
                    continue;
                }
            }
            if i + 2 < chars.len() {
                let hex: String = chars[i + 1..i + 3].iter().collect();
                if let Ok(code) = u16::from_str_radix(&hex, 16) {
                    units.push(code);
                    i += 3;
                    continue;
                }
            }
        }
        let mut buf = [0u16; 2];
        units.extend_from_slice(chars[i].encode_utf16(&mut buf));
        i += 1;
    }
    // Second pass: UTF-16 → string, replacing lone surrogates.
    String::from_utf16_lossy(&units)
}

/// Percent-encodes every non-alphanumeric UTF-16 code unit, JS `escape`
/// style: Latin-1 units as `%XX`, the rest (including each half of a
/// surrogate pair) as `%uXXXX`.
pub fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len() * 3);
    for c in s.chars() {
        if c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-' | '*' | '@' | '/' | '+') {
            out.push(c);
            continue;
        }
        let mut buf = [0u16; 2];
        for unit in c.encode_utf16(&mut buf) {
            if *unit < 256 {
                out.push_str(&format!("%{:02X}", unit));
            } else {
                out.push_str(&format!("%u{:04X}", unit));
            }
        }
    }
    out
}

const B64: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Base64-encodes a string's bytes (`btoa`).
pub fn base64_encode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = String::with_capacity(bytes.len().div_ceil(3) * 4);
    for chunk in bytes.chunks(3) {
        let b = [chunk[0], *chunk.get(1).unwrap_or(&0), *chunk.get(2).unwrap_or(&0)];
        let n = ((b[0] as u32) << 16) | ((b[1] as u32) << 8) | b[2] as u32;
        out.push(B64[(n >> 18) as usize & 63] as char);
        out.push(B64[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 { B64[(n >> 6) as usize & 63] as char } else { '=' });
        out.push(if chunk.len() > 2 { B64[n as usize & 63] as char } else { '=' });
    }
    out
}

/// Base64-decodes into a string (`atob`); invalid input decodes to the
/// valid prefix, matching lenient browser behaviour.
pub fn base64_decode(s: &str) -> String {
    let mut table = BTreeMap::new();
    for (i, b) in B64.iter().enumerate() {
        table.insert(*b, i as u32);
    }
    let clean: Vec<u32> =
        s.bytes().filter(|b| *b != b'=').filter_map(|b| table.get(&b).copied()).collect();
    let mut bytes = Vec::with_capacity(clean.len() * 3 / 4);
    for chunk in clean.chunks(4) {
        if chunk.len() < 2 {
            break;
        }
        let n = chunk.iter().enumerate().fold(0u32, |acc, (i, v)| acc | (v << (18 - 6 * i)));
        bytes.push((n >> 16) as u8);
        if chunk.len() > 2 {
            bytes.push((n >> 8) as u8);
        }
        if chunk.len() > 3 {
            bytes.push(n as u8);
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_write_logged() {
        let mut sb = Sandbox::new();
        let r = sb.run("document.write('<b>x</b>');");
        assert!(r.errors.is_empty(), "{:?}", r.errors);
        assert_eq!(r.written_html, "<b>x</b>");
        assert_eq!(r.effects.len(), 1);
    }

    #[test]
    fn dynamic_iframe_injection_via_create_element() {
        let mut sb = Sandbox::new();
        let r = sb.run(
            r#"
            var f = document.createElement('iframe');
            f.src = 'http://malicious.example/x';
            f.width = 1;
            f.height = 1;
            document.body.appendChild(f);
            "#,
        );
        assert!(r.errors.is_empty(), "{:?}", r.errors);
        let inserted = r.effects.iter().find_map(|e| match e {
            Effect::ElementInserted { tag, attrs } => Some((tag.clone(), attrs.clone())),
            _ => None,
        });
        let (tag, attrs) = inserted.expect("iframe inserted");
        assert_eq!(tag, "iframe");
        assert!(attrs.iter().any(|(k, v)| k == "src" && v.contains("malicious.example")));
        assert!(attrs.iter().any(|(k, v)| k == "width" && v == "1"));
    }

    #[test]
    fn window_open_is_popup() {
        let mut sb = Sandbox::new();
        let r = sb.run("window.open('http://ads.example/pop');");
        assert!(r.navigates_to("ads.example"));
        assert!(matches!(&r.effects[0], Effect::Popup { url } if url.contains("pop")));
    }

    #[test]
    fn location_replace_navigates() {
        let mut sb = Sandbox::new();
        let r = sb.run("window.location.replace('http://next.example/');");
        assert!(r.navigates_to("next.example"));
    }

    #[test]
    fn location_href_assignment_navigates() {
        // The deceptive-download payload in the paper's §V-B uses
        // `window.location.href = "http://...downloadAs=Flash-Player.exe"`.
        let mut sb = Sandbox::new();
        let r = sb.run("window.location.href = 'http://dl.example/c?downloadAs=Flash-Player.exe';");
        assert!(r.navigates_to("Flash-Player.exe"));
    }

    #[test]
    fn window_location_whole_object_assignment_navigates() {
        let mut sb = Sandbox::new();
        let r = sb.run("window.location = 'http://redirect.example/';");
        assert!(r.navigates_to("redirect.example"));
    }

    #[test]
    fn cookie_write_recorded() {
        let mut sb = Sandbox::new();
        let r = sb.run("document.cookie = 'dmCookieBar=1';");
        assert!(r.effects.iter().any(|e| matches!(e, Effect::CookieSet(c) if c.contains("dmCookieBar"))));
    }

    #[test]
    fn eval_unescape_layer_unpacks() {
        // eval(unescape('%61%6C%65%72%74%28%31%29')) == alert(1)
        let mut sb = Sandbox::new();
        let r = sb.run(r#"eval(unescape('%61%6C%65%72%74%28%31%29'));"#);
        assert!(r.effects.iter().any(|e| matches!(e, Effect::EvalLayer { depth: 1, .. })));
        assert!(r.effects.iter().any(|e| matches!(e, Effect::Dialog(d) if d == "1")));
        assert_eq!(r.max_eval_depth, 1);
    }

    #[test]
    fn from_char_code_decoding() {
        let mut sb = Sandbox::new();
        // "alert('x')"
        let r = sb.run(
            "eval(String.fromCharCode(97,108,101,114,116,40,39,120,39,41));",
        );
        assert!(r.effects.iter().any(|e| matches!(e, Effect::Dialog(d) if d == "x")));
    }

    #[test]
    fn external_interface_calls_recorded() {
        let mut sb = Sandbox::new();
        let r = sb.run("ExternalInterface.call('AdFlash.onClick'); ExternalInterface.call('window.NqPnfu');");
        let calls: Vec<&str> = r
            .effects
            .iter()
            .filter_map(|e| match e {
                Effect::ExternalCall { name, .. } => Some(name.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(calls, vec!["AdFlash.onClick", "window.NqPnfu"]);
    }

    #[test]
    fn fingerprinting_listener_registration() {
        let mut sb = Sandbox::new();
        let r = sb.run("document.addEventListener('mousemove', function(e) { });");
        assert!(r
            .effects
            .iter()
            .any(|e| matches!(e, Effect::ListenerRegistered { event, .. } if event == "mousemove")));
    }

    #[test]
    fn listener_body_is_forced() {
        // Behaviour hidden in an event handler must still surface.
        let mut sb = Sandbox::new();
        let r = sb.run(
            "document.addEventListener('click', function(e) { window.open('http://pop.example/'); });",
        );
        assert!(r.navigates_to("pop.example"));
    }

    #[test]
    fn set_timeout_callback_runs() {
        let mut sb = Sandbox::new();
        let r = sb.run("setTimeout(function() { alert('later'); }, 5000);");
        assert!(r.effects.iter().any(|e| matches!(e, Effect::Dialog(d) if d == "later")));
        assert!(r.effects.contains(&Effect::TimerScheduled));
    }

    #[test]
    fn set_timeout_string_evals() {
        let mut sb = Sandbox::new();
        let r = sb.run("setTimeout(\"alert('s')\", 0);");
        assert!(r.effects.iter().any(|e| matches!(e, Effect::Dialog(d) if d == "s")));
    }

    #[test]
    fn parse_error_is_captured_not_panicking() {
        let mut sb = Sandbox::new();
        let r = sb.run("this is not (valid");
        assert!(!r.errors.is_empty());
    }

    #[test]
    fn infinite_loop_bounded() {
        let mut sb = Sandbox::new().with_budget(20_000);
        let r = sb.run("while (true) { var x = 1; }");
        assert!(r.errors.iter().any(|e| e.contains("budget")));
    }

    #[test]
    fn navigator_user_agent_visible() {
        let mut sb = Sandbox::new().with_user_agent("TestUA/1.0");
        let r = sb.run("alert(navigator.userAgent);");
        assert!(r.effects.iter().any(|e| matches!(e, Effect::Dialog(d) if d == "TestUA/1.0")));
    }

    #[test]
    fn percent_codec_round_trip() {
        let original = "var x = 'héllo <b>';";
        assert_eq!(percent_decode(&percent_encode(original)), original);
    }

    #[test]
    fn base64_round_trip() {
        for s in ["", "a", "ab", "abc", "hello world!", "p@ss%w0rd"] {
            assert_eq!(base64_decode(&base64_encode(s)), s, "round-trip failed for {s:?}");
        }
    }

    #[test]
    fn atob_in_script() {
        let mut sb = Sandbox::new();
        let r = sb.run(&format!("alert(atob('{}'));", base64_encode("secret")));
        assert!(r.effects.iter().any(|e| matches!(e, Effect::Dialog(d) if d == "secret")));
    }

    #[test]
    fn nested_eval_depth_tracked() {
        let inner = "alert('deep')";
        let layer1 = format!("eval({:?});", inner);
        let layer2 = format!("eval({:?});", layer1);
        let mut sb = Sandbox::new();
        let r = sb.run(&layer2);
        assert_eq!(r.max_eval_depth, 2);
        assert!(r.effects.iter().any(|e| matches!(e, Effect::Dialog(d) if d == "deep")));
    }

    #[test]
    fn google_analytics_pattern_runs_clean() {
        // The paper's §V-E false positive: the GA bootstrap must execute
        // without malicious effects.
        let mut sb = Sandbox::new();
        let r = sb.run(
            r#"
            (function(i, s, o, g, r) {
                i['GoogleAnalyticsObject'] = r;
                i[r] = i[r] || function() {};
                i[r].l = 1;
            })(window, document, 'script', '//www.google-analytics.com/analytics.js', 'ga');
            "#,
        );
        assert!(r.errors.is_empty(), "{:?}", r.errors);
        assert!(r.outbound_urls().is_empty());
        assert!(r.written_html.is_empty());
    }
}
