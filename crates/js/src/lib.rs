//! # slum-js
//!
//! A sandboxed mini-JavaScript engine built for the `malware-slums`
//! reproduction of *Malware Slums* (DSN 2016).
//!
//! The paper's behavioural malware analysis requires *executing* scripts
//! found on traffic-exchange pages: obfuscated payloads must be unpacked
//! (`eval(unescape(...))` layers), dynamically injected `iframe`s must be
//! observed (`document.write`), deceptive downloads fire through
//! `window.location`, and malicious Flash files call back into JavaScript
//! via `ExternalInterface`. This crate implements exactly that slice of
//! JavaScript semantics, with:
//!
//! - a total lexer/parser for a practical JS subset ([`lexer`], [`parser`]),
//! - a tree-walking interpreter with a hard step budget ([`interp`]),
//! - a bytecode compiler and stack VM with the same observable
//!   semantics, which carry the scan hot path while the interpreter
//!   serves as the differential-testing oracle ([`compile`], [`vm`]),
//! - a browser-shaped sandbox that records every externally visible
//!   side effect ([`sandbox::Sandbox`], [`sandbox::Effect`]),
//! - obfuscation tooling used by the synthetic web *and* the
//!   deobfuscation passes used by scanners ([`obfuscate`]),
//! - a model of Flash `ExternalInterface` behaviour ([`flash`]).
//!
//! The engine is deliberately hermetic: no I/O, no real time, no
//! randomness. Anything a script "does" shows up only in the effect log.
//!
//! ## Example
//!
//! ```
//! use slum_js::sandbox::{Effect, Sandbox};
//!
//! let mut sandbox = Sandbox::new();
//! let report = sandbox.run(r#"document.write('<iframe src="http://evil.example/" width=1></iframe>');"#);
//! assert!(report.errors.is_empty());
//! assert!(matches!(&report.effects[0], Effect::DocumentWrite(html) if html.contains("iframe")));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod compile;
pub mod env;
pub mod flash;
pub mod interp;
pub mod lexer;
pub mod obfuscate;
pub mod parser;
pub mod sandbox;
pub mod value;
pub mod vm;

pub use compile::{source_hash, Module, ModuleStore};
pub use parser::parse_program;
pub use sandbox::{Effect, JsEngine, Sandbox, SandboxReport};
pub use value::Value;

/// Errors produced while lexing, parsing or executing JavaScript.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsError {
    /// The source could not be tokenized.
    Lex(String),
    /// The token stream could not be parsed.
    Parse(String),
    /// A runtime error (type error, unknown identifier, ...).
    Runtime(String),
    /// The interpreter exhausted its step budget — scripts on hostile
    /// pages must never hang the analysis pipeline.
    BudgetExhausted,
}

impl std::fmt::Display for JsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JsError::Lex(m) => write!(f, "lex error: {m}"),
            JsError::Parse(m) => write!(f, "parse error: {m}"),
            JsError::Runtime(m) => write!(f, "runtime error: {m}"),
            JsError::BudgetExhausted => write!(f, "step budget exhausted"),
        }
    }
}

impl std::error::Error for JsError {}
