//! AST → bytecode compiler.
//!
//! Compiles the parsed statement list into a flat [`Module`]: one
//! [`Chunk`] of instructions per function (chunk 0 is the top-level
//! program), a shared string constant pool, and pre-resolved local
//! slots for function scopes. The instruction stream is executed by
//! [`crate::vm::Vm`]; the tree-walking interpreter in
//! [`crate::interp`] remains the semantic oracle, and the compiler's
//! contract is *bit-identical observable behaviour* — same values,
//! same thrown [`crate::JsError`]s, same host-call order, and the same
//! step-budget exhaustion point.
//!
//! To pin the exhaustion point, a [`Insn::Tick`] is emitted exactly
//! where the interpreter ticks: once at the head of every compiled
//! statement (`Interp::exec` ticks before matching) and once at the
//! head of every compiled expression (`Interp::eval` likewise).
//! Hoisting emits no ticks, mirroring `Interp::hoist`.
//!
//! Compilation itself is infallible: the only per-node failure in the
//! interpreter (`invalid assignment target`) is compiled to a
//! [`Insn::ThrowConst`] carrying the pre-formatted message, so it
//! still surfaces at runtime in exactly the interpreter's order
//! (after the right-hand side has been evaluated).
//!
//! Modules are immutable and `Send + Sync` (the pool holds plain
//! strings; numbers are inlined into [`Insn::PushNum`]), so one
//! compiled payload can be shared across scan worker threads through
//! the module cache — campaign pages that embed the same packed
//! payload compile once and execute many times.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use crate::ast::{BinOp, Expr, Stmt, UnOp};

/// FNV-1a 64-bit hash of a script source, used as the module-cache key
/// (local copy: `slum-js` sits below `slum-detect` in the crate DAG).
pub fn source_hash(src: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in src.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Shared store of compiled modules keyed by source hash.
///
/// `slum-js` defines only the interface; the concrete implementation
/// (`slum_detect::JsModuleCache`, a `ShardedCache`) lives higher in
/// the crate DAG and is injected through the browser into the sandbox.
pub trait ModuleStore: Send + Sync + std::fmt::Debug {
    /// The cached module for `key`, if present.
    fn get(&self, key: u64) -> Option<Arc<Module>>;

    /// Returns the module for `key`, compiling and caching it on a
    /// miss (first insert wins under races).
    fn get_or_compile(
        &self,
        key: u64,
        compile: &mut dyn FnMut() -> Arc<Module>,
    ) -> Arc<Module>;
}

/// Which errors a [`Insn::PushHandler`] intercepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandlerKind {
    /// `try`/`catch`: everything except budget exhaustion.
    Catch,
    /// `typeof`: everything, including budget exhaustion (the next
    /// tick re-raises it).
    TypeOf,
}

/// One bytecode instruction. Jump targets are absolute instruction
/// indices within the owning chunk; `u32` operands index the module's
/// constant pool or chunk table unless noted otherwise.
#[derive(Debug, Clone, PartialEq)]
pub enum Insn {
    /// Consume one step of the budget (interpreter tick parity).
    Tick,
    /// Push a number literal.
    PushNum(f64),
    /// Push a string literal from the constant pool.
    PushStr(u32),
    /// Push a boolean literal.
    PushBool(bool),
    /// Push `null`.
    PushNull,
    /// Push `undefined`.
    PushUndefined,
    /// Discard the top of the stack.
    Pop,
    /// Duplicate the top of the stack.
    Dup,
    /// Push the value bound to a name, walking the scope chain.
    LoadName(u32),
    /// Fast path for a pre-resolved function local: read the slot,
    /// falling back to the named chain walk while undeclared.
    LoadSlot {
        /// Slot index in the activation scope.
        slot: u32,
        /// Constant-pool index of the name (fallback + error message).
        name: u32,
    },
    /// Pop a value and assign it to a name (`Env::assign` semantics:
    /// nearest binding, else create a global).
    StoreName(u32),
    /// Fast path for assigning a pre-resolved function local.
    StoreSlot {
        /// Slot index in the activation scope.
        slot: u32,
        /// Constant-pool index of the name (fallback path).
        name: u32,
    },
    /// Pop a value and declare it in the current scope.
    DeclareName(u32),
    /// Hoist a function declaration: close chunk `0` over the current
    /// scope and declare it under the chunk's name (no tick).
    DeclareFn(u32),
    /// Push a closure over chunk `0` and the current scope.
    MakeClosure(u32),
    /// Pop a base object, push the named property.
    GetMember(u32),
    /// Pop an index then a base object, push the property named by the
    /// index's string coercion.
    GetIndex,
    /// Pop a base object; push the base (as `this`) then the named
    /// property — method-call receiver setup.
    GetMethod(u32),
    /// Pop an index then a base; push the base then the indexed
    /// property.
    GetMethodIndex,
    /// Pop a base object then a value, write the named property.
    SetMember(u32),
    /// Pop an index, a base object, then a value; write the indexed
    /// property.
    SetIndex,
    /// Pop a value and insert it under a literal key into the object
    /// remaining on top of the stack (object-literal construction; no
    /// host notification, matching the interpreter).
    ObjInsert(u32),
    /// Pop `0` values and push them as a new array object.
    MakeArray(u32),
    /// Push a fresh empty object.
    MakeObject,
    /// Pop the right then left operand, push the operator result.
    /// Never `And`/`Or` (compiled to jumps).
    Binary(BinOp),
    /// Pop a value, push the unary result. Never `TypeOf` (compiled to
    /// a handler region).
    Unary(UnOp),
    /// Pop a value, push its `typeof` string.
    TypeOfValue,
    /// Pop a value, push its numeric coercion.
    ToNumber,
    /// Pop a number, push it plus the constant (postfix `++`/`--`).
    AddConst(f64),
    /// Call: stack holds `this`, the callee, then `0` arguments.
    Call(u32),
    /// `new`: stack holds the constructor then `0` arguments.
    New(u32),
    /// Unconditional jump.
    Jump(u32),
    /// Pop a value; jump when falsy.
    JumpIfFalsy(u32),
    /// Pop a value; jump when truthy.
    JumpIfTruthy(u32),
    /// Peek the top value; jump when falsy, keeping it (for `&&`).
    JumpIfFalsyKeep(u32),
    /// Peek the top value; jump when truthy, keeping it (for `||`).
    JumpIfTruthyKeep(u32),
    /// Enter a child scope.
    PushScope,
    /// Leave the innermost scope.
    PopScope,
    /// Register an error handler jumping to `target` with the current
    /// stack/scope/iterator depths.
    PushHandler {
        /// What the handler intercepts.
        kind: HandlerKind,
        /// Jump target on an intercepted error.
        target: u32,
    },
    /// Drop the innermost handler (normal exit from its region).
    PopHandler,
    /// Pop a value and push its `for..in` key snapshot onto the
    /// iterator stack.
    MakeIter,
    /// Advance the innermost iterator: declare the next key under the
    /// named loop variable, or jump to `end` when exhausted.
    IterNext {
        /// Constant-pool index of the loop variable name.
        name: u32,
        /// Jump target once the keys run out.
        end: u32,
    },
    /// Drop the innermost iterator.
    PopIter,
    /// Pop the return value and leave the chunk.
    Return,
    /// Leave the chunk with `undefined` (top-level completion, or a
    /// stray `break`/`continue` halting the program like the
    /// interpreter's run loop does).
    Halt,
    /// Raise `JsError::Runtime` with a pre-formatted pool message
    /// (invalid assignment targets, formatted at compile time).
    ThrowConst(u32),
}

/// One compiled function body (or the top-level program, chunk 0).
#[derive(Debug)]
pub struct Chunk {
    /// Function name, if any (`None` for the program chunk and
    /// anonymous function expressions).
    pub name: Option<String>,
    /// Parameter names in declaration order.
    pub params: Vec<String>,
    /// Pre-resolved name→slot mapping for the activation scope
    /// (`None` for the program chunk, which runs in the caller's
    /// scope).
    pub slot_map: Option<Arc<HashMap<String, u32>>>,
    /// Number of slots an activation of this chunk needs.
    pub n_slots: u32,
    /// The instruction stream.
    pub code: Vec<Insn>,
    /// True for function chunks (affects calling convention only).
    pub is_function: bool,
}

/// A compiled script: chunks, constant pool, and provenance.
#[derive(Debug)]
pub struct Module {
    /// Compiled chunks; index 0 is the top-level program (or the
    /// function itself for [`compile_function`] modules).
    pub chunks: Vec<Chunk>,
    /// String constant pool (names, literals, error messages).
    pub consts: Vec<String>,
    /// FNV-1a hash of the source this module was compiled from.
    pub source_hash: u64,
    /// Wall-clock nanoseconds compilation took (for `js.vm.*`
    /// metrics; excluded from determinism guarantees like every other
    /// timing figure).
    pub compile_nanos: u64,
}

/// Compiles a parsed program into a shareable module.
pub fn compile_program(stmts: &[Stmt], source_hash: u64) -> Arc<Module> {
    let started = Instant::now();
    let mut shared = Shared::default();
    compile_chunk(&mut shared, ChunkKind::Program, stmts);
    Arc::new(Module {
        chunks: shared.chunks,
        consts: shared.consts,
        source_hash,
        compile_nanos: u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
    })
}

/// Compiles a single function body into a module whose chunk 0 is the
/// function itself. Fallback used when the VM is handed a closure the
/// tree-walking interpreter built (no [`crate::value::FnDef::code`]).
pub fn compile_function(name: Option<&str>, params: &[String], body: &[Stmt]) -> Arc<Module> {
    let started = Instant::now();
    let mut shared = Shared::default();
    compile_chunk(&mut shared, ChunkKind::Function { name, params }, body);
    Arc::new(Module {
        chunks: shared.chunks,
        consts: shared.consts,
        source_hash: 0,
        compile_nanos: u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
    })
}

/// Module-wide compiler state: finished chunks plus the interned
/// constant pool.
#[derive(Default)]
struct Shared {
    chunks: Vec<Chunk>,
    consts: Vec<String>,
    const_ids: HashMap<String, u32>,
}

impl Shared {
    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.const_ids.get(s) {
            return id;
        }
        let id = u32::try_from(self.consts.len()).expect("constant pool overflow");
        self.consts.push(s.to_string());
        self.const_ids.insert(s.to_string(), id);
        id
    }
}

/// What kind of chunk is being compiled.
enum ChunkKind<'a> {
    /// Top-level program (also `eval` layers): runs in the caller's
    /// scope, any `break`/`continue`/`return` flow halts it.
    Program,
    /// Function body: fresh slotted activation scope; top-level
    /// `break`/`continue` are swallowed per statement, mirroring
    /// `Interp::call_function`.
    Function {
        name: Option<&'a str>,
        params: &'a [String],
    },
}

/// A `break`/`continue` resolution point, with the scope/iterator/
/// handler depths live at the jump target so the compiler can emit the
/// right unwind sequence.
#[derive(Clone, Copy)]
struct Target {
    label: u32,
    scopes: u32,
    iters: u32,
    handlers: u32,
}

/// One enclosing control context, innermost last.
enum FlowCtx {
    /// A `while`/`for`/`do`/`for..in` loop.
    Loop { break_to: Target, continue_to: Target },
    /// A `switch` arm region: catches `break` (exit the switch).
    Switch { break_to: Target },
    /// A statement boundary that *swallows* flow signals: function
    /// top-level statements (both `break` and `continue`), `switch`
    /// arm statements and `for` initializers (`continue` — and for the
    /// latter two, whatever the matching interpreter loop ignores).
    Swallow { to: Target, catches_break: bool },
}

/// Per-chunk compiler: instruction buffer, label table, and
/// compile-time depth tracking.
struct ChunkCompiler {
    code: Vec<Insn>,
    labels: Vec<u32>,
    flow: Vec<FlowCtx>,
    scope_depth: u32,
    iter_depth: u32,
    handler_depth: u32,
    slot_map: Option<Arc<HashMap<String, u32>>>,
}

/// Collects the pre-resolved slot set of a function scope: parameters,
/// `this`, `arguments`, and the body's *top-level* `var` and function
/// declaration names (nested blocks declare into their own scopes, so
/// only depth-0 names are safe to resolve statically).
fn function_slots(params: &[String], body: &[Stmt]) -> (Arc<HashMap<String, u32>>, u32) {
    let mut map: HashMap<String, u32> = HashMap::new();
    let add = |map: &mut HashMap<String, u32>, name: &str| {
        if !map.contains_key(name) {
            let id = u32::try_from(map.len()).expect("slot overflow");
            map.insert(name.to_string(), id);
        }
    };
    for p in params {
        add(&mut map, p);
    }
    add(&mut map, "this");
    add(&mut map, "arguments");
    for stmt in body {
        match stmt {
            Stmt::Var(decls) => {
                for (name, _) in decls {
                    add(&mut map, name);
                }
            }
            Stmt::Function { name, .. } => add(&mut map, name),
            _ => {}
        }
    }
    let n = u32::try_from(map.len()).expect("slot overflow");
    (Arc::new(map), n)
}

/// Compiles one chunk, appending it (and any nested function chunks)
/// to `shared`; returns its index.
fn compile_chunk(shared: &mut Shared, kind: ChunkKind<'_>, stmts: &[Stmt]) -> u32 {
    let idx = u32::try_from(shared.chunks.len()).expect("chunk overflow");
    // Reserve the slot so nested chunks index past it.
    shared.chunks.push(Chunk {
        name: None,
        params: Vec::new(),
        slot_map: None,
        n_slots: 0,
        code: Vec::new(),
        is_function: false,
    });
    let (name, params, slot_map, n_slots, is_function) = match kind {
        ChunkKind::Program => (None, Vec::new(), None, 0, false),
        ChunkKind::Function { name, params } => {
            let (map, n) = function_slots(params, stmts);
            (name.map(str::to_string), params.to_vec(), Some(map), n, true)
        }
    };
    let mut c = ChunkCompiler {
        code: Vec::new(),
        labels: Vec::new(),
        flow: Vec::new(),
        scope_depth: 0,
        iter_depth: 0,
        handler_depth: 0,
        slot_map: slot_map.clone(),
    };
    c.hoist(shared, stmts);
    if is_function {
        // Each top-level statement is a swallow boundary: the
        // interpreter's call loop ignores Break/Continue between
        // statements and keeps going.
        for stmt in stmts {
            let next = c.label();
            c.flow.push(FlowCtx::Swallow {
                to: Target { label: next, scopes: 0, iters: 0, handlers: 0 },
                catches_break: true,
            });
            c.stmt(shared, stmt);
            c.flow.pop();
            c.bind(next);
        }
        c.emit(Insn::PushUndefined);
        c.emit(Insn::Return);
    } else {
        // Program chunk: any flow signal halts the run loop, so
        // Break/Continue compile to Halt and Return pops its value.
        for stmt in stmts {
            c.stmt(shared, stmt);
        }
        c.emit(Insn::Halt);
    }
    let code = c.finalize();
    shared.chunks[idx as usize] =
        Chunk { name, params, slot_map, n_slots, code, is_function };
    idx
}

impl ChunkCompiler {
    fn emit(&mut self, insn: Insn) {
        self.code.push(insn);
    }

    fn label(&mut self) -> u32 {
        let id = u32::try_from(self.labels.len()).expect("label overflow");
        self.labels.push(u32::MAX);
        id
    }

    fn bind(&mut self, label: u32) {
        self.labels[label as usize] =
            u32::try_from(self.code.len()).expect("chunk too long");
    }

    fn here(&self) -> Target {
        Target {
            label: 0, // overwritten by callers
            scopes: self.scope_depth,
            iters: self.iter_depth,
            handlers: self.handler_depth,
        }
    }

    /// Emits the handler/iterator/scope pops needed to reach `t` from
    /// the current depths, then the jump itself.
    fn unwind_jump(&mut self, t: Target) {
        for _ in t.handlers..self.handler_depth {
            self.emit(Insn::PopHandler);
        }
        for _ in t.iters..self.iter_depth {
            self.emit(Insn::PopIter);
        }
        for _ in t.scopes..self.scope_depth {
            self.emit(Insn::PopScope);
        }
        self.emit(Insn::Jump(t.label));
    }

    /// Resolves a `break`: nearest loop, switch, or break-swallowing
    /// boundary; none in a program chunk means "halt the program".
    fn compile_break(&mut self) {
        for i in (0..self.flow.len()).rev() {
            let t = match &self.flow[i] {
                FlowCtx::Loop { break_to, .. } => Some(*break_to),
                FlowCtx::Switch { break_to } => Some(*break_to),
                FlowCtx::Swallow { to, catches_break: true } => Some(*to),
                FlowCtx::Swallow { .. } => None,
            };
            if let Some(t) = t {
                self.unwind_jump(t);
                return;
            }
        }
        self.emit(Insn::Halt);
    }

    /// Resolves a `continue`: nearest loop or swallow boundary (switch
    /// arms swallow `continue` — the interpreter's arm loop treats it
    /// as `Normal` and moves to the next statement).
    fn compile_continue(&mut self) {
        for i in (0..self.flow.len()).rev() {
            let t = match &self.flow[i] {
                FlowCtx::Loop { continue_to, .. } => Some(*continue_to),
                FlowCtx::Swallow { to, .. } => Some(*to),
                FlowCtx::Switch { .. } => None,
            };
            if let Some(t) = t {
                self.unwind_jump(t);
                return;
            }
        }
        self.emit(Insn::Halt);
    }

    /// Emits `DeclareFn` for every function declaration in `body`
    /// (interpreter hoisting; no ticks).
    fn hoist(&mut self, shared: &mut Shared, body: &[Stmt]) {
        for stmt in body {
            if let Stmt::Function { name, params, body } = stmt {
                let chunk =
                    compile_chunk(shared, ChunkKind::Function { name: Some(name), params }, body);
                self.emit(Insn::DeclareFn(chunk));
            }
        }
    }

    /// Compiles a braced block: child scope, hoist, statements.
    fn block(&mut self, shared: &mut Shared, body: &[Stmt]) {
        self.emit(Insn::PushScope);
        self.scope_depth += 1;
        self.hoist(shared, body);
        for stmt in body {
            self.stmt(shared, stmt);
        }
        self.emit(Insn::PopScope);
        self.scope_depth -= 1;
    }

    fn stmt(&mut self, shared: &mut Shared, stmt: &Stmt) {
        self.emit(Insn::Tick);
        match stmt {
            Stmt::Empty | Stmt::Function { .. } => {}
            Stmt::Expr(e) => {
                self.expr(shared, e);
                self.emit(Insn::Pop);
            }
            Stmt::Var(decls) => {
                for (name, init) in decls {
                    match init {
                        Some(e) => self.expr(shared, e),
                        None => self.emit(Insn::PushUndefined),
                    }
                    let c = shared.intern(name);
                    self.emit(Insn::DeclareName(c));
                }
            }
            Stmt::If(cond, then, els) => {
                self.expr(shared, cond);
                let l_else = self.label();
                self.emit(Insn::JumpIfFalsy(l_else));
                self.block(shared, then);
                match els {
                    Some(e) => {
                        let l_end = self.label();
                        self.emit(Insn::Jump(l_end));
                        self.bind(l_else);
                        self.block(shared, e);
                        self.bind(l_end);
                    }
                    None => self.bind(l_else),
                }
            }
            Stmt::While(cond, body) => {
                let l_cond = self.label();
                let l_end = self.label();
                self.bind(l_cond);
                self.expr(shared, cond);
                self.emit(Insn::JumpIfFalsy(l_end));
                self.flow.push(FlowCtx::Loop {
                    break_to: Target { label: l_end, ..self.here() },
                    continue_to: Target { label: l_cond, ..self.here() },
                });
                self.block(shared, body);
                self.flow.pop();
                self.emit(Insn::Jump(l_cond));
                self.bind(l_end);
            }
            Stmt::For { init, cond, update, body } => {
                self.emit(Insn::PushScope);
                self.scope_depth += 1;
                if let Some(i) = init {
                    // The interpreter discards the initializer's flow
                    // signal entirely: swallow both break and continue
                    // to the post-initializer point.
                    let after = self.label();
                    self.flow.push(FlowCtx::Swallow {
                        to: Target { label: after, ..self.here() },
                        catches_break: true,
                    });
                    self.stmt(shared, i);
                    self.flow.pop();
                    self.bind(after);
                }
                let l_cond = self.label();
                let l_cont = self.label();
                let l_end = self.label();
                self.bind(l_cond);
                if let Some(c) = cond {
                    self.expr(shared, c);
                    self.emit(Insn::JumpIfFalsy(l_end));
                }
                self.flow.push(FlowCtx::Loop {
                    break_to: Target { label: l_end, ..self.here() },
                    continue_to: Target { label: l_cont, ..self.here() },
                });
                self.block(shared, body);
                self.flow.pop();
                self.bind(l_cont);
                if let Some(u) = update {
                    self.expr(shared, u);
                    self.emit(Insn::Pop);
                }
                self.emit(Insn::Jump(l_cond));
                self.bind(l_end);
                self.emit(Insn::PopScope);
                self.scope_depth -= 1;
            }
            Stmt::DoWhile(body, cond) => {
                let l_top = self.label();
                let l_cont = self.label();
                let l_end = self.label();
                self.bind(l_top);
                self.flow.push(FlowCtx::Loop {
                    break_to: Target { label: l_end, ..self.here() },
                    continue_to: Target { label: l_cont, ..self.here() },
                });
                self.block(shared, body);
                self.flow.pop();
                self.bind(l_cont);
                self.expr(shared, cond);
                self.emit(Insn::JumpIfTruthy(l_top));
                self.bind(l_end);
            }
            Stmt::ForIn { var, object, body } => {
                self.expr(shared, object);
                self.emit(Insn::MakeIter);
                self.iter_depth += 1;
                self.emit(Insn::PushScope);
                self.scope_depth += 1;
                let l_next = self.label();
                let l_end = self.label();
                self.bind(l_next);
                let name = shared.intern(var);
                self.emit(Insn::IterNext { name, end: l_end });
                self.flow.push(FlowCtx::Loop {
                    break_to: Target { label: l_end, ..self.here() },
                    continue_to: Target { label: l_next, ..self.here() },
                });
                self.block(shared, body);
                self.flow.pop();
                self.emit(Insn::Jump(l_next));
                self.bind(l_end);
                self.emit(Insn::PopScope);
                self.scope_depth -= 1;
                self.emit(Insn::PopIter);
                self.iter_depth -= 1;
            }
            Stmt::Return(e) => {
                match e {
                    Some(e) => self.expr(shared, e),
                    None => self.emit(Insn::PushUndefined),
                }
                self.emit(Insn::Return);
            }
            Stmt::Block(body) => self.block(shared, body),
            Stmt::Break => self.compile_break(),
            Stmt::Continue => self.compile_continue(),
            Stmt::TryCatch(body, param, handler) => {
                let l_catch = self.label();
                let l_end = self.label();
                self.emit(Insn::PushHandler { kind: HandlerKind::Catch, target: l_catch });
                self.handler_depth += 1;
                // Interpreter nests two scopes around the try body: an
                // outer child plus exec_block's own.
                self.emit(Insn::PushScope);
                self.scope_depth += 1;
                self.block(shared, body);
                self.emit(Insn::PopScope);
                self.scope_depth -= 1;
                self.emit(Insn::PopHandler);
                self.handler_depth -= 1;
                self.emit(Insn::Jump(l_end));
                // Handler entry: the dispatcher restored depths to the
                // PushHandler point and pushed Str(err).
                self.bind(l_catch);
                self.emit(Insn::PushScope);
                self.scope_depth += 1;
                let c = shared.intern(param);
                self.emit(Insn::DeclareName(c));
                self.block(shared, handler);
                self.emit(Insn::PopScope);
                self.scope_depth -= 1;
                self.bind(l_end);
            }
            Stmt::Switch { disc, cases, default } => {
                self.expr(shared, disc);
                // Tests run lazily in the *outer* scope against a
                // dup of the discriminant; the shared arm scope is
                // entered only on the way into a body.
                let found: Vec<u32> = cases.iter().map(|_| self.label()).collect();
                let no_match = self.label();
                for (i, (test, _)) in cases.iter().enumerate() {
                    self.emit(Insn::Dup);
                    self.expr(shared, test);
                    self.emit(Insn::Binary(BinOp::StrictEq));
                    self.emit(Insn::JumpIfTruthy(found[i]));
                }
                self.emit(Insn::Jump(no_match));
                let bodies: Vec<u32> = cases.iter().map(|_| self.label()).collect();
                let l_default = self.label();
                let l_exit = self.label();
                for (i, entry) in found.iter().enumerate() {
                    self.bind(*entry);
                    self.emit(Insn::Pop);
                    self.emit(Insn::PushScope);
                    self.emit(Insn::Jump(bodies[i]));
                }
                self.bind(no_match);
                self.emit(Insn::Pop);
                self.emit(Insn::PushScope);
                self.emit(Insn::Jump(if default.is_some() { l_default } else { l_exit }));
                // Arm bodies share one scope and fall through.
                self.scope_depth += 1;
                self.flow.push(FlowCtx::Switch {
                    break_to: Target { label: l_exit, ..self.here() },
                });
                for (i, (_, body)) in cases.iter().enumerate() {
                    self.bind(bodies[i]);
                    self.switch_arm(shared, body);
                }
                if let Some(body) = default {
                    self.bind(l_default);
                    self.switch_arm(shared, body);
                }
                self.flow.pop();
                self.bind(l_exit);
                self.emit(Insn::PopScope);
                self.scope_depth -= 1;
            }
        }
    }

    /// Compiles one switch arm: statements run directly in the shared
    /// arm scope (no block scope, no hoisting), and each statement is a
    /// `continue`-swallowing boundary — the interpreter's arm loop
    /// treats `Continue` like `Normal` and proceeds to the next
    /// statement.
    fn switch_arm(&mut self, shared: &mut Shared, body: &[Stmt]) {
        for stmt in body {
            let next = self.label();
            self.flow.push(FlowCtx::Swallow {
                to: Target { label: next, ..self.here() },
                catches_break: false,
            });
            self.stmt(shared, stmt);
            self.flow.pop();
            self.bind(next);
        }
    }

    /// True when `name` resolves to an activation slot from the
    /// current position (only at function scope depth 0 — inside any
    /// nested scope a dynamic declaration could shadow it).
    fn slot_for(&self, name: &str) -> Option<u32> {
        if self.scope_depth != 0 {
            return None;
        }
        self.slot_map.as_ref().and_then(|m| m.get(name)).copied()
    }

    /// Emits a name load (slot fast path when statically safe).
    fn load_ident(&mut self, shared: &mut Shared, name: &str) {
        let c = shared.intern(name);
        match self.slot_for(name) {
            Some(slot) => self.emit(Insn::LoadSlot { slot, name: c }),
            None => self.emit(Insn::LoadName(c)),
        }
    }

    /// Emits a name store with `Env::assign` semantics.
    fn store_ident(&mut self, shared: &mut Shared, name: &str) {
        let c = shared.intern(name);
        match self.slot_for(name) {
            Some(slot) => self.emit(Insn::StoreSlot { slot, name: c }),
            None => self.emit(Insn::StoreName(c)),
        }
    }

    /// Emits the assignment tail for `target`, consuming the value on
    /// top of the stack (interpreter `assign_to`: member/index bases
    /// are re-evaluated *after* the value exists).
    fn assign_to(&mut self, shared: &mut Shared, target: &Expr) {
        match target {
            Expr::Ident(name) => self.store_ident(shared, name),
            Expr::Member(obj, name) => {
                self.expr(shared, obj);
                let c = shared.intern(name);
                self.emit(Insn::SetMember(c));
            }
            Expr::Index(obj, idx) => {
                self.expr(shared, obj);
                self.expr(shared, idx);
                self.emit(Insn::SetIndex);
            }
            other => {
                let msg = shared.intern(&format!("invalid assignment target {other:?}"));
                self.emit(Insn::ThrowConst(msg));
            }
        }
    }

    fn expr(&mut self, shared: &mut Shared, expr: &Expr) {
        self.emit(Insn::Tick);
        match expr {
            Expr::Num(n) => self.emit(Insn::PushNum(*n)),
            Expr::Str(s) => {
                let c = shared.intern(s);
                self.emit(Insn::PushStr(c));
            }
            Expr::Bool(b) => self.emit(Insn::PushBool(*b)),
            Expr::Null => self.emit(Insn::PushNull),
            Expr::Undefined => self.emit(Insn::PushUndefined),
            Expr::Ident(name) => self.load_ident(shared, name),
            Expr::Member(obj, name) => {
                self.expr(shared, obj);
                let c = shared.intern(name);
                self.emit(Insn::GetMember(c));
            }
            Expr::Index(obj, idx) => {
                self.expr(shared, obj);
                self.expr(shared, idx);
                self.emit(Insn::GetIndex);
            }
            Expr::Call(callee, args) => {
                match &**callee {
                    Expr::Member(obj, name) => {
                        self.expr(shared, obj);
                        let c = shared.intern(name);
                        self.emit(Insn::GetMethod(c));
                    }
                    Expr::Index(obj, idx) => {
                        self.expr(shared, obj);
                        self.expr(shared, idx);
                        self.emit(Insn::GetMethodIndex);
                    }
                    other => {
                        self.emit(Insn::PushUndefined);
                        self.expr(shared, other);
                    }
                }
                for a in args {
                    self.expr(shared, a);
                }
                self.emit(Insn::Call(args.len() as u32));
            }
            Expr::New(ctor, args) => {
                self.expr(shared, ctor);
                for a in args {
                    self.expr(shared, a);
                }
                self.emit(Insn::New(args.len() as u32));
            }
            Expr::Assign(lhs, rhs) => {
                self.expr(shared, rhs);
                self.emit(Insn::Dup);
                self.assign_to(shared, lhs);
            }
            Expr::AssignOp(op, lhs, rhs) => {
                self.expr(shared, lhs);
                self.expr(shared, rhs);
                self.emit(Insn::Binary(*op));
                self.emit(Insn::Dup);
                self.assign_to(shared, lhs);
            }
            Expr::Binary(op, lhs, rhs) => match op {
                BinOp::And => {
                    self.expr(shared, lhs);
                    let l_end = self.label();
                    self.emit(Insn::JumpIfFalsyKeep(l_end));
                    self.emit(Insn::Pop);
                    self.expr(shared, rhs);
                    self.bind(l_end);
                }
                BinOp::Or => {
                    self.expr(shared, lhs);
                    let l_end = self.label();
                    self.emit(Insn::JumpIfTruthyKeep(l_end));
                    self.emit(Insn::Pop);
                    self.expr(shared, rhs);
                    self.bind(l_end);
                }
                _ => {
                    self.expr(shared, lhs);
                    self.expr(shared, rhs);
                    self.emit(Insn::Binary(*op));
                }
            },
            Expr::Unary(op, operand) => match op {
                UnOp::TypeOf => {
                    let l_err = self.label();
                    let l_done = self.label();
                    self.emit(Insn::PushHandler { kind: HandlerKind::TypeOf, target: l_err });
                    self.handler_depth += 1;
                    self.expr(shared, operand);
                    self.emit(Insn::PopHandler);
                    self.handler_depth -= 1;
                    self.emit(Insn::TypeOfValue);
                    self.emit(Insn::Jump(l_done));
                    // Error path: the dispatcher pushed "undefined".
                    self.bind(l_err);
                    self.bind(l_done);
                }
                _ => {
                    self.expr(shared, operand);
                    self.emit(Insn::Unary(*op));
                }
            },
            Expr::Ternary(c, t, f) => {
                self.expr(shared, c);
                let l_else = self.label();
                let l_end = self.label();
                self.emit(Insn::JumpIfFalsy(l_else));
                self.expr(shared, t);
                self.emit(Insn::Jump(l_end));
                self.bind(l_else);
                self.expr(shared, f);
                self.bind(l_end);
            }
            Expr::Function { name, params, body } => {
                let chunk = compile_chunk(
                    shared,
                    ChunkKind::Function { name: name.as_deref(), params },
                    body,
                );
                self.emit(Insn::MakeClosure(chunk));
            }
            Expr::Array(items) => {
                for item in items {
                    self.expr(shared, item);
                }
                self.emit(Insn::MakeArray(items.len() as u32));
            }
            Expr::Object(props) => {
                self.emit(Insn::MakeObject);
                for (k, v) in props {
                    self.expr(shared, v);
                    let c = shared.intern(k);
                    self.emit(Insn::ObjInsert(c));
                }
            }
            Expr::PostIncr(target) | Expr::PostDecr(target) => {
                let delta = if matches!(expr, Expr::PostIncr(_)) { 1.0 } else { -1.0 };
                self.expr(shared, target);
                self.emit(Insn::ToNumber);
                self.emit(Insn::Dup);
                self.emit(Insn::AddConst(delta));
                self.assign_to(shared, target);
            }
        }
    }

    /// Rewrites label ids into absolute instruction indices.
    fn finalize(self) -> Vec<Insn> {
        let ChunkCompiler { mut code, labels, .. } = self;
        for insn in &mut code {
            match insn {
                Insn::Jump(t)
                | Insn::JumpIfFalsy(t)
                | Insn::JumpIfTruthy(t)
                | Insn::JumpIfFalsyKeep(t)
                | Insn::JumpIfTruthyKeep(t)
                | Insn::PushHandler { target: t, .. }
                | Insn::IterNext { end: t, .. } => {
                    let resolved = labels[*t as usize];
                    debug_assert_ne!(resolved, u32::MAX, "unbound label");
                    *t = resolved;
                }
                _ => {}
            }
        }
        code
    }
}

// The module cache shares compiled payloads across scan workers.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Module>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn compile(src: &str) -> Arc<Module> {
        let prog = parse_program(src).expect("parse");
        compile_program(&prog, source_hash(src))
    }

    #[test]
    fn program_chunk_is_first_and_halts() {
        let m = compile("var x = 1;");
        assert!(!m.chunks[0].is_function);
        assert_eq!(m.chunks[0].code.last(), Some(&Insn::Halt));
    }

    #[test]
    fn function_chunks_carry_slot_maps() {
        let m = compile("function f(a, b) { var c = 1; return a + b + c; }");
        assert_eq!(m.chunks.len(), 2);
        let f = &m.chunks[1];
        assert!(f.is_function);
        assert_eq!(f.name.as_deref(), Some("f"));
        let map = f.slot_map.as_ref().expect("slot map");
        for name in ["a", "b", "c", "this", "arguments"] {
            assert!(map.contains_key(name), "missing slot for {name}");
        }
        assert_eq!(f.n_slots as usize, map.len());
    }

    #[test]
    fn ticks_match_statement_and_expression_counts() {
        // `var x = 1;` — one stmt tick + one expr tick.
        let m = compile("var x = 1;");
        let ticks = m.chunks[0].code.iter().filter(|i| matches!(i, Insn::Tick)).count();
        assert_eq!(ticks, 2);
    }

    #[test]
    fn jumps_resolve_to_real_targets() {
        let m = compile(
            "for (var i = 0; i < 3; i++) { if (i == 1) continue; if (i == 2) break; } \
             switch (1) { case 1: break; default: } \
             try { x(); } catch (e) {} \
             var t = typeof missing;",
        );
        for chunk in &m.chunks {
            let len = chunk.code.len() as u32;
            for insn in &chunk.code {
                let target = match insn {
                    Insn::Jump(t)
                    | Insn::JumpIfFalsy(t)
                    | Insn::JumpIfTruthy(t)
                    | Insn::JumpIfFalsyKeep(t)
                    | Insn::JumpIfTruthyKeep(t)
                    | Insn::PushHandler { target: t, .. }
                    | Insn::IterNext { end: t, .. } => Some(*t),
                    _ => None,
                };
                if let Some(t) = target {
                    assert!(t <= len, "jump target {t} out of range {len}");
                }
            }
        }
    }

    #[test]
    fn string_constants_are_interned_once() {
        let m = compile("var a = 'dup'; var b = 'dup'; var c = 'dup';");
        assert_eq!(m.consts.iter().filter(|s| s.as_str() == "dup").count(), 1);
    }

    #[test]
    fn source_hash_is_stable_and_discriminating() {
        assert_eq!(source_hash("abc"), source_hash("abc"));
        assert_ne!(source_hash("abc"), source_hash("abd"));
        // Known FNV-1a 64 vector.
        assert_eq!(source_hash(""), 0xcbf2_9ce4_8422_2325);
    }
}
